//! Constant-rate paced browsing: closing the timing side channel.
//!
//! ZLTP hides *which* pages you read; §3.2 admits visit *timing* still
//! says something ("a user fetching a page every five minutes in the
//! morning might be … reading the news"). This example runs two very
//! different users behind the constant-rate pacer and prints what the
//! network sees: identical schedules, identical bytes.
//!
//! Run with: `cargo run --example paced_browsing`

use lightweb::browser::{LightwebBrowser, Pacer};
use lightweb::universe::json::Value;
use lightweb::universe::{Universe, UniverseConfig};

fn main() {
    let universe = Universe::new(UniverseConfig::small_test("paced")).unwrap();
    universe.register_domain("news.com", "News").unwrap();
    universe
        .publish_code(
            "News",
            "news.com",
            "route \"/story/:id\" {\n fetch \"news.com/story/{id}\"\n render \"{data.0.body}\"\n }\nroute \"/\" {\n fetch \"news.com/story/0\"\n render \"{data.0.body}\"\n }",
        )
        .unwrap();
    for i in 0..6 {
        universe
            .publish_json(
                "News",
                &format!("news.com/story/{i}"),
                &Value::object([("body", format!("story {i}").into())]),
            )
            .unwrap();
    }

    // Slot every "5 minutes" over a simulated 50-minute window (the
    // example compresses time; the schedule math is what matters).
    let pacer = Pacer::new(300.0);
    let horizon = 3000.0;

    // User A: a burst of morning reading. User B: nothing at all.
    let reader_visits = [0.0, 250.0, 550.0, 600.0, 900.0, 1500.0];
    let idle_visits: [f64; 0] = [];

    let run = |name: &str, visits: &[f64]| {
        let mut browser = LightwebBrowser::connect(
            universe.connect_code(),
            universe.connect_data(),
            universe.config().fetches_per_page,
            universe.config().max_chain_parts,
        )
        .unwrap();
        browser.browse("news.com/").unwrap(); // cache warmup
        let schedule = pacer.schedule(visits, horizon);
        for slot in &schedule {
            match slot.real {
                Some(i) => {
                    browser
                        .browse(&format!("news.com/story/{}", i % 6))
                        .unwrap();
                }
                None => browser.browse_cover().unwrap(),
            }
        }
        let stats = browser.data_stats();
        println!(
            "{name:>12}: {} slots fired, {} GETs, {} B up, {} B down | mean nav delay {:.0}s, utilization {:.0}%",
            schedule.len(),
            stats.requests,
            stats.bytes_sent,
            stats.bytes_received,
            Pacer::mean_delay(&schedule),
            Pacer::utilization(&schedule) * 100.0,
        );
        (stats.requests, stats.bytes_sent, stats.bytes_received)
    };

    println!("slot interval 300 s, horizon {horizon} s:\n");
    let a = run("news reader", &reader_visits);
    let b = run("idle user", &idle_visits);
    println!(
        "\nnetwork observables identical: {}",
        if a == b {
            "YES — timing carries no information"
        } else {
            "NO (bug!)"
        }
    );
    println!("cost of the defense: idle slots still burn a page-load of bandwidth, and real navigations wait up to one slot interval.");
}
