//! The three ZLTP modes of operation, side by side (paper §2.2).
//!
//! The same content is served by three servers configured for different
//! modes; the same logical private-GET runs through two-server PIR
//! (non-collusion + PRG), single-server LWE PIR (cryptographic only), and
//! a simulated enclave with Path ORAM (hardware) — and the enclave's
//! untrusted-memory trace is audited for obliviousness on the spot.
//!
//! Run with: `cargo run --example zltp_modes`

use lightweb::oram::{audit_trace, SimulatedEnclave};
use lightweb::zltp::{
    EnclaveClient, InProcServer, LweClientSession, Mode, ModeSet, ServerConfig, TwoServerZltp,
    ZltpServer,
};

fn main() {
    const BLOB: usize = 64;
    let pages: Vec<(String, Vec<u8>)> = (0..24)
        .map(|i| {
            (
                format!("site.com/page/{i}"),
                format!("content of page {i:02} {}", "x".repeat(30)).into_bytes()[..BLOB.min(44)]
                    .to_vec(),
            )
        })
        .map(|(k, mut v)| {
            v.resize(BLOB, b' ');
            (k, v)
        })
        .collect();

    let make_server = |modes: &[Mode], party: u8| {
        let mut cfg = ServerConfig::small("modes-demo", party);
        cfg.blob_len = BLOB;
        cfg.modes = ModeSet::new(modes.iter().copied());
        let server = ZltpServer::new(cfg).unwrap();
        for (k, v) in &pages {
            server.publish(k, v).unwrap();
        }
        InProcServer::new(server)
    };

    // --- Mode 1: two-server PIR (the paper's prototype) ----------------
    let s0 = make_server(&[Mode::TwoServerPir], 0);
    let s1 = make_server(&[Mode::TwoServerPir], 1);
    let mut two = TwoServerZltp::connect(s0.connect(), s1.connect()).unwrap();
    let blob = two.private_get("site.com/page/7").unwrap();
    let stats = two.stats();
    println!(
        "two-server PIR : {:?}…  [{} B up, {} B down, assumptions: {}]",
        String::from_utf8_lossy(&blob[..20]),
        stats.bytes_sent,
        stats.bytes_received,
        Mode::TwoServerPir.assumptions()
    );

    // --- Mode 2: single-server LWE PIR ---------------------------------
    let lwe_server = make_server(&[Mode::SingleServerLwe], 0);
    let mut lwe = LweClientSession::connect(lwe_server.connect()).unwrap();
    let blob = lwe.private_get("site.com/page/7").unwrap().unwrap();
    println!(
        "single-srv LWE : {:?}…  [offline download {} B, assumptions: {}]",
        String::from_utf8_lossy(&blob[..20]),
        lwe.offline_bytes(),
        Mode::SingleServerLwe.assumptions()
    );

    // --- Mode 3: enclave + Path ORAM ------------------------------------
    let enc_server = make_server(&[Mode::Enclave], 0);
    let mut enc = EnclaveClient::connect(enc_server.connect()).unwrap();
    let blob = enc.private_get("site.com/page/7").unwrap().unwrap();
    println!(
        "enclave + ORAM : {:?}…  [assumptions: {}]",
        String::from_utf8_lossy(&blob[..20]),
        Mode::Enclave.assumptions()
    );

    // Audit a raw simulated enclave's memory trace (the property the mode
    // rests on): every GET is one uniform ORAM path, hit or miss.
    let mut raw = SimulatedEnclave::new(256, BLOB).unwrap();
    raw.load(pages.iter().map(|(k, v)| (k.as_bytes(), v.as_slice())))
        .unwrap();
    raw.enable_trace();
    for i in 0..128 {
        let _ = raw
            .get(format!("site.com/page/{}", i % 24).as_bytes())
            .unwrap();
    }
    let trace = raw.take_trace().unwrap();
    let report = audit_trace(&trace, raw.tree_height());
    println!(
        "enclave audit  : {} ops, uniform shape: {}, paths well-formed: {}, leaf chi2 = {:.1} -> {}",
        report.ops,
        report.uniform_shape,
        report.paths_well_formed,
        report.leaf_chi2,
        if report.passed() { "OBLIVIOUS" } else { "LEAKY" }
    );
}
