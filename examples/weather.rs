//! Dynamic, personalized content (paper §3.3): the weather.com example.
//!
//! "The weather.com lightweb page could prompt the user for their postal
//! code and cache it in local storage. Later on, when the user visits
//! weather.com, the page could use the user's cached postal code to
//! automatically fetch a per-postal-code data blob containing up-to-date
//! weather information for their location."
//!
//! The CDN serves one blob per postal code; which one a user fetches is
//! hidden by the private-GET, so the CDN never learns anyone's location.
//!
//! Run with: `cargo run --example weather`

use lightweb::browser::LightwebBrowser;
use lightweb::universe::json::Value;
use lightweb::universe::{Universe, UniverseConfig};

fn main() {
    let universe = Universe::new(UniverseConfig::small_test("weather-demo")).unwrap();
    universe
        .register_domain("weather.com", "WeatherCo")
        .unwrap();
    universe
        .publish_code(
            "WeatherCo",
            "weather.com",
            r#"
            route "/" {
                prompt postal "Enter your postal code:"
                fetch "weather.com/by-postal/{store.postal}"
                title "Weather for {store.postal}"
                render "{data.0.forecast}, high {data.0.high}F low {data.0.low}F"
            }
            route "/reset" {
                render "Visit / after clearing site data to change location."
            }
            "#,
        )
        .unwrap();

    // The publisher pushes a blob per postal code (per-postal-code data is
    // exactly the "not too much server state" dynamic content §3.3 allows).
    for (postal, forecast, high, low) in [
        ("94110", "Fog", 63, 52),
        ("10001", "Humid sun", 88, 71),
        ("60601", "Lake-effect snow", 28, 15),
    ] {
        universe
            .publish_json(
                "WeatherCo",
                &format!("weather.com/by-postal/{postal}"),
                &Value::object([
                    ("forecast", forecast.into()),
                    ("high", i64::from(high).into()),
                    ("low", i64::from(low).into()),
                ]),
            )
            .unwrap();
    }

    let mut browser = LightwebBrowser::connect(
        universe.connect_code(),
        universe.connect_data(),
        universe.config().fetches_per_page,
        universe.config().max_chain_parts,
    )
    .unwrap();

    // First visit: the page prompts; the answer lands in domain-separated
    // local storage. (A real browser pops a dialog; we simulate the user.)
    browser.set_prompt_handler(|question| {
        println!("page asks: {question} (user types 94110)");
        "94110".to_string()
    });
    let page = browser.browse("weather.com/").unwrap();
    println!("[{}] {}", page.title, page.body);

    // Second visit: no prompt — the stored postal code drives the fetch.
    browser.set_prompt_handler(|_| panic!("no second prompt expected"));
    let page = browser.browse("weather.com/").unwrap();
    println!("[{}] {} (no prompt this time)", page.title, page.body);

    println!(
        "\nlocal storage for weather.com: postal={:?} — invisible to every server; \
the per-postal fetch was a private-GET, so the CDN cannot locate the user",
        browser.storage().get("weather.com", "postal")
    );
}
