//! Quickstart: the Figure 1 walkthrough in ~60 lines.
//!
//! 0. A CDN stands up a lightweb universe (two non-colluding ZLTP server
//!    pairs: code + data).
//! 1. A publisher registers its domain, uploads a code blob and data blobs.
//! 2. A client connects, asks for a path…
//! 3. …the browser privately fetches the domain's code blob,
//! 4. …the code names the data blobs, which are fetched via private-GET
//!    (padded to the universe's fixed per-page count),
//! 5. …and the page renders. Neither the network nor the CDN learned which
//!    page was read.
//!
//! Run with: `cargo run --example quickstart`

use lightweb::browser::LightwebBrowser;
use lightweb::universe::json::Value;
use lightweb::universe::{Universe, UniverseConfig};

fn main() {
    // 0. The CDN stands up a universe.
    let universe = Universe::new(UniverseConfig::small_test("quickstart")).unwrap();

    // 1. The publisher uploads content.
    universe.register_domain("nytimes.com", "NYTimes").unwrap();
    universe
        .publish_code(
            "NYTimes",
            "nytimes.com",
            r#"
            route "/" {
                fetch "nytimes.com/frontpage"
                title "The Lightweb Times"
                render "{data.0.headline} -- {data.0.teaser}"
            }
            route "/africa/:slug" {
                fetch "nytimes.com/africa/{slug}"
                title "{slug}"
                render "{data.0.body}"
            }
            default {
                render "404: no such page"
            }
            "#,
        )
        .unwrap();
    universe
        .publish_json(
            "NYTimes",
            "nytimes.com/frontpage",
            &Value::object([
                ("headline", "Lightweb launches".into()),
                ("teaser", "Private browsing without all the baggage.".into()),
            ]),
        )
        .unwrap();
    universe
        .publish_json(
            "NYTimes",
            "nytimes.com/africa/uganda",
            &Value::object([("body", "Reporting from Kampala, privately.".into())]),
        )
        .unwrap();

    // 2. A user connects the browser to the universe.
    let mut browser = LightwebBrowser::connect(
        universe.connect_code(),
        universe.connect_data(),
        universe.config().fetches_per_page,
        universe.config().max_chain_parts,
    )
    .unwrap();

    // 3–5. Browse. Every page view = (maybe) 1 code GET + exactly 5 data GETs.
    for path in [
        "nytimes.com/",
        "nytimes.com/africa/uganda",
        "nytimes.com/nope",
    ] {
        let page = browser.browse(path).unwrap();
        println!("=== {path}");
        println!("    [{}] {}", page.title, page.body);
        println!(
            "    network saw: {} real + {} dummy data GETs (always {})",
            page.real_fetches,
            page.dummy_fetches,
            page.real_fetches + page.dummy_fetches
        );
    }

    let stats = browser.data_stats();
    println!(
        "\ntotal data-session traffic: {} GETs, {} B up, {} B down — identical for ANY three pages",
        stats.requests, stats.bytes_sent, stats.bytes_received
    );
}
