//! A realistic multi-section news site on lightweb (the workload the
//! paper's introduction motivates: reading the news without the NSA, the
//! ISP, the CDN, or the publisher learning which articles you read).
//!
//! Demonstrates:
//! * a code blob with several routes and JSON-driven rendering,
//! * a long article chained across multiple fixed-size data blobs
//!   (§5's "next link" mechanism),
//! * the constant traffic shape across a whole browsing session, and
//! * content updates becoming visible to subsequent private GETs.
//!
//! Run with: `cargo run --example news_site`

use lightweb::browser::LightwebBrowser;
use lightweb::universe::json::Value;
use lightweb::universe::{Universe, UniverseConfig};

fn main() {
    let universe = Universe::new(UniverseConfig::small_test("news-demo")).unwrap();
    universe
        .register_domain("lightweb-times.com", "LWT")
        .unwrap();

    universe
        .publish_code(
            "LWT",
            "lightweb-times.com",
            r#"
            # The Lightweb Times code blob: routing + render templates.
            route "/" {
                fetch "lightweb-times.com/sections"
                fetch "lightweb-times.com/top-story"
                title "The Lightweb Times"
                render "Sections: {data.0.list} | Top: {data.1.headline}"
            }
            route "/section/:name" {
                fetch "lightweb-times.com/section/{name}"
                title "Section: {name}"
                render "Stories in {name}: {data.0.stories}"
            }
            route "/story/:id" {
                fetch "lightweb-times.com/story/{id}"
                title "{data.0.headline}"
                render "{data.0.body}"
            }
            route "/longread/:id" {
                fetch "lightweb-times.com/longread/{id}"
                title "Long read"
                render "{data.0}"
            }
            default {
                render "Story not found."
            }
            "#,
        )
        .unwrap();

    universe
        .publish_json(
            "LWT",
            "lightweb-times.com/sections",
            &Value::object([("list", "world, tech, sport".into())]),
        )
        .unwrap();
    universe
        .publish_json(
            "LWT",
            "lightweb-times.com/top-story",
            &Value::object([("headline", "ZLTP ships".into())]),
        )
        .unwrap();
    universe
        .publish_json(
            "LWT",
            "lightweb-times.com/section/world",
            &Value::object([("stories", "uganda-day-1, uganda-day-2".into())]),
        )
        .unwrap();
    universe
        .publish_json(
            "LWT",
            "lightweb-times.com/story/uganda-day-1",
            &Value::object([
                ("headline", "Day one".into()),
                ("body", "Short dispatch from the field.".into()),
            ]),
        )
        .unwrap();

    // A 2.7 KB long-read is chained across three 1 KiB blobs; the browser
    // spends one fetch of its fixed budget per part.
    let long_read = "All of this text travels in fixed-size blobs. ".repeat(60);
    universe
        .publish_data(
            "LWT",
            "lightweb-times.com/longread/deep-dive",
            long_read.as_bytes(),
        )
        .unwrap();

    let mut browser = LightwebBrowser::connect(
        universe.connect_code(),
        universe.connect_data(),
        universe.config().fetches_per_page,
        universe.config().max_chain_parts,
    )
    .unwrap();

    let session = [
        "lightweb-times.com/",
        "lightweb-times.com/section/world",
        "lightweb-times.com/story/uganda-day-1",
        "lightweb-times.com/longread/deep-dive",
    ];
    for path in session {
        let page = browser.browse(path).unwrap();
        println!("=== {path}\n[{}] {:.100}…", page.title, page.body);
    }

    // The publisher updates the top story; the next private GET sees it.
    universe
        .publish_json(
            "LWT",
            "lightweb-times.com/top-story",
            &Value::object([("headline", "ZLTP v2 ships".into())]),
        )
        .unwrap();
    let page = browser.browse("lightweb-times.com/").unwrap();
    println!("=== after update\n[{}] {}", page.title, page.body);

    println!("\n-- what the network saw --");
    for v in browser.visits() {
        println!(
            "visit: {} code GET(s), {} data GETs   (path known only to the client: {})",
            v.code_fetches, v.data_fetches, v.path
        );
    }
    let all_equal = browser
        .visits()
        .windows(2)
        .all(|w| w[0].data_fetches == w[1].data_fetches);
    println!("data-GET count identical across visits: {all_equal}");
}
