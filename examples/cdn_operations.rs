//! CDN-side operations: multi-universe peering (§3.5), private per-domain
//! billing statistics (§4), and the cost model behind Table 2 (§5.2).
//!
//! Run with: `cargo run --example cdn_operations`

use lightweb::cost::economics::{self, UserCostInputs};
use lightweb::cost::model::{estimate_deployment, paper_measurements, DatasetSpec, InstanceType};
use lightweb::universe::peering::{push_domain, PeerGroup};
use lightweb::universe::stats::{combine_reports, StatsClient, StatsServer};
use lightweb::universe::{Universe, UniverseConfig};
use std::sync::Arc;

fn main() {
    // --- Peering (§3.5): two CDNs share a publisher's content ---------
    let akamai = Arc::new(Universe::new(UniverseConfig::small_test("akamai")).unwrap());
    let fastly = Arc::new(Universe::new(UniverseConfig::small_test("fastly")).unwrap());

    akamai.register_domain("wiki.org", "Wikimedia").unwrap();
    akamai
        .publish_code(
            "Wikimedia",
            "wiki.org",
            "route \"/\" {\n render \"wiki home\"\n }",
        )
        .unwrap();
    akamai
        .publish_data("Wikimedia", "wiki.org/Uganda", b"Uganda article")
        .unwrap();
    akamai
        .publish_data("Wikimedia", "wiki.org/Rust", b"Rust article")
        .unwrap();

    let pushed = push_domain(&akamai, &fastly, "wiki.org").unwrap();
    println!(
        "peering: pushed {pushed} data values of wiki.org from {} to {} (owner: {:?})",
        akamai.id(),
        fastly.id(),
        fastly.owner_of("wiki.org")
    );

    // New publishes can fan out to the whole peer group at once.
    let group = PeerGroup::new(vec![akamai.clone(), fastly.clone()]);
    group
        .publish_data("Wikimedia", "wiki.org/Lightweb", b"Lightweb article")
        .unwrap();
    println!(
        "peer group publish: akamai={} values, fastly={} values",
        akamai.num_data_values(),
        fastly.num_data_values()
    );

    // --- Private billing statistics (§4) ------------------------------
    // The CDN wants per-domain query counts to bill publishers, without
    // learning which user queried which domain: clients secret-share
    // one-hot reports between the two (non-colluding) stats servers.
    let domains = ["wiki.org", "nytimes.com", "weather.com"];
    let client = StatsClient::new(domains.len());
    let mut s0 = StatsServer::new(domains.len());
    let mut s1 = StatsServer::new(domains.len());
    // 100 users' visits, heavily skewed toward wiki.org.
    for i in 0..100usize {
        let visited = if i % 10 < 7 {
            0
        } else if i % 10 < 9 {
            1
        } else {
            2
        };
        let (a, b) = client.report(visited);
        s0.absorb(&a).unwrap();
        s1.absorb(&b).unwrap();
    }
    let histogram = combine_reports(&s0, &s1).unwrap();
    println!("\nprivate per-domain query counts (for publisher billing):");
    for (domain, count) in domains.iter().zip(&histogram) {
        println!("  {domain:<14} {count} queries");
    }
    println!(
        "  (either server alone sees only uniform noise, e.g. server 0's first cell = {:#018x})",
        s0.accumulator()[0]
    );

    // --- Deployment economics (Table 2 / §4) --------------------------
    println!("\nTable 2 estimates from the paper's published 1 GiB shard measurements:");
    for dataset in [DatasetSpec::c4(), DatasetSpec::wikipedia()] {
        let est = estimate_deployment(
            &dataset,
            &paper_measurements(),
            &InstanceType::c5_large(),
            2.6,
        );
        println!(
            "  {:<9}: {} shards, {:>6.1} vCPU-sec/request, ${:.4}/request, {:.1} KiB/request",
            dataset.name,
            est.shards,
            est.vcpu_seconds,
            est.dollars_per_request,
            est.communication_kib
        );
    }
    println!(
        "per-user: ${:.2}/month at 50 pages/day x 5 GETs (the paper's 'Netflix membership' point)",
        economics::monthly_user_cost(&UserCostInputs::paper())
    );
}
