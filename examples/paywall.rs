//! Paywalls and access control (paper §3.3–3.4).
//!
//! The CDN stores only *ciphertext* blobs for premium content. Subscribers
//! obtain epoch keys from the publisher out of band; the publisher rotates
//! keys to revoke lapsed subscriptions and re-encrypts fresh content. The
//! CDN never learns which users can read which domains — and, thanks to
//! private-GETs, not even which (encrypted) articles anyone fetches.
//!
//! Run with: `cargo run --example paywall`

use lightweb::browser::{BrowserError, LightwebBrowser};
use lightweb::universe::access::AccessKeyring;
use lightweb::universe::{Universe, UniverseConfig};

fn main() {
    let universe = Universe::new(UniverseConfig::small_test("paywall-demo")).unwrap();
    universe.register_domain("journal.com", "Journal").unwrap();
    universe
        .publish_code(
            "Journal",
            "journal.com",
            r#"
            route "/free" {
                fetch "journal.com/free-article"
                title "Free article"
                render "{data.0}"
            }
            route "/premium" {
                fetch "journal.com/premium-article"
                title "Premium article"
                render "{data.0}"
            }
            "#,
        )
        .unwrap();

    // Free content is published in the clear; premium is encrypted under
    // the publisher's current epoch key before upload.
    let mut keyring = AccessKeyring::new();
    universe
        .publish_data(
            "Journal",
            "journal.com/free-article",
            b"Anyone can read this.",
        )
        .unwrap();
    universe
        .publish_data(
            "Journal",
            "journal.com/premium-article",
            &keyring.protect("journal.com/premium-article", b"Subscribers-only analysis."),
        )
        .unwrap();

    let connect = |u: &Universe| {
        LightwebBrowser::connect(
            u.connect_code(),
            u.connect_data(),
            u.config().fetches_per_page,
            u.config().max_chain_parts,
        )
        .unwrap()
    };

    // A subscriber: installs the pass the publisher issued at signup.
    let mut subscriber = connect(&universe);
    subscriber.install_pass("journal.com", keyring.issue_pass(0));
    let page = subscriber.browse("journal.com/premium").unwrap();
    println!("subscriber reads premium: {}", page.body);

    // A non-subscriber sees ciphertext (rendered as mojibake here; a real
    // code blob would detect the missing pass and show a signup page).
    let mut visitor = connect(&universe);
    let page = visitor.browse("journal.com/free").unwrap();
    println!("visitor reads free:       {}", page.body);
    let page = visitor.browse("journal.com/premium").unwrap();
    println!(
        "visitor reads premium:    <{} bytes of ciphertext, undecryptable>",
        page.body.len()
    );

    // Revocation: the publisher rotates keys and re-encrypts new content.
    // The old pass no longer opens it; a renewed pass does.
    let old_pass = keyring.issue_pass(0);
    keyring.rotate();
    universe
        .publish_data(
            "Journal",
            "journal.com/premium-article",
            &keyring.protect("journal.com/premium-article", b"Post-rotation scoop."),
        )
        .unwrap();

    let mut lapsed = connect(&universe);
    lapsed.install_pass("journal.com", old_pass);
    match lapsed.browse("journal.com/premium") {
        Err(BrowserError::Access(e)) => println!("lapsed subscriber blocked:  {e}"),
        other => println!("unexpected: {other:?}"),
    }

    let mut renewed = connect(&universe);
    renewed.install_pass("journal.com", keyring.issue_pass(0));
    let page = renewed.browse("journal.com/premium").unwrap();
    println!("renewed subscriber reads:  {}", page.body);
}
