//! Offline shim for the `proptest` API surface used by this workspace.
//!
//! A minimal property-testing harness: strategies generate random values
//! deterministically (seeded per test name, varied per case), the
//! `proptest!` macro runs each property over `ProptestConfig::cases`
//! generated inputs, and `prop_assert!` / `prop_assert_eq!` report
//! failures with the offending values. Unlike upstream proptest there is
//! **no shrinking** and no persisted failure corpus — a failing case
//! prints its case number; rerunning reproduces it because generation is
//! deterministic.
//!
//! Strategy combinators covered: `any`, integer/float ranges, regex-lite
//! string literals (char classes, `{m,n}` repetition, `\PC`), `Just`,
//! `prop_map`, `prop_recursive`, `prop_oneof!`, tuples,
//! `prop::collection::{vec, btree_map}`, and `prop::sample::Index`.

use std::sync::Arc;

/// Deterministic generator driving all strategies (SplitMix64 core).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name and case index: deterministic per (test, case).
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ ((case as u64) << 32 | 0x9e37_79b9),
        }
    }

    /// Next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a property-test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion or explicit failure with a message.
    Fail(String),
    /// Input rejected (unused by this workspace, kept for API parity).
    Reject(String),
}

impl TestCaseError {
    /// An explicit failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` is the leaf; `branch` lifts a
    /// strategy for subtrees into a strategy for the next level. `_size`
    /// and `_branch_hint` are accepted for API parity; recursion depth is
    /// honored exactly.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _size: u32,
        _branch_hint: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each level is leaf-or-branch-over-previous-level, biased
            // toward leaves so generated structures stay small.
            let next = branch(level).boxed();
            level = Union {
                arms: vec![leaf.clone(), leaf.clone(), next],
            }
            .boxed();
        }
        level
    }

    /// Type-erase into a cloneable [`BoxedStrategy`].
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

trait DynStrategy<V> {
    fn gen_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn gen_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.gen_value(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V> {
    inner: Arc<dyn DynStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: self.inner.clone(),
        }
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        self.inner.gen_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// Uniform choice among boxed arms (backs `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the given arms; at least one is required.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn gen_value(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].gen_value(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, string regex-lite literals.
// ---------------------------------------------------------------------

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn gen_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// Tuples of strategies generate tuples of values.
macro_rules! impl_strategy_tuple {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A / 0);
impl_strategy_tuple!(A / 0, B / 1);
impl_strategy_tuple!(A / 0, B / 1, C / 2);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3);
impl_strategy_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);

// --------------------------- regex-lite ------------------------------

#[derive(Clone, Debug)]
enum PatAtom {
    Literal(char),
    Class(Vec<char>),
    AnyPrintable,
}

#[derive(Clone, Debug)]
struct PatPiece {
    atom: PatAtom,
    min: u32,
    max: u32,
}

/// Characters `\PC` may produce: printable ASCII plus a few multi-byte
/// code points so UTF-8 handling gets exercised.
const EXOTIC: &[char] = &['é', 'Ω', 'λ', '中', '🦀', '\u{a0}', 'ß', '→'];

fn parse_pattern(pat: &str) -> Vec<PatPiece> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut pieces: Vec<PatPiece> = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '\\' => {
                i += 1;
                match chars.get(i) {
                    Some('P') | Some('p') => {
                        // `\PC` / `\pC`: any non-control character.
                        i += 2;
                        PatAtom::AnyPrintable
                    }
                    Some('n') => {
                        i += 1;
                        PatAtom::Literal('\n')
                    }
                    Some('t') => {
                        i += 1;
                        PatAtom::Literal('\t')
                    }
                    Some(&c) => {
                        i += 1;
                        PatAtom::Literal(c)
                    }
                    None => panic!("trailing backslash in pattern {pat:?}"),
                }
            }
            '[' => {
                i += 1;
                let mut set: Vec<char> = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        match chars[i] {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        }
                    } else {
                        chars[i]
                    };
                    // Range `a-z` if a dash follows and is not class-final.
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        for cc in c..=hi {
                            set.push(cc);
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated char class in pattern {pat:?}"
                );
                i += 1; // consume ']'
                assert!(!set.is_empty(), "empty char class in pattern {pat:?}");
                PatAtom::Class(set)
            }
            c => {
                i += 1;
                PatAtom::Literal(c)
            }
        };
        // Optional {n} / {m,n} repetition suffix.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .unwrap_or_else(|| panic!("unterminated repetition in pattern {pat:?}"));
            let body: String = chars[i + 1..i + close].iter().collect();
            i += close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad repetition lower bound"),
                    hi.trim().parse().expect("bad repetition upper bound"),
                ),
                None => {
                    let n: u32 = body.trim().parse().expect("bad repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatPiece { atom, min, max });
    }
    pieces
}

fn gen_from_pattern(pieces: &[PatPiece], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in pieces {
        let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as u32;
        for _ in 0..n {
            match &piece.atom {
                PatAtom::Literal(c) => out.push(*c),
                PatAtom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                PatAtom::AnyPrintable => {
                    if rng.below(10) == 0 {
                        out.push(EXOTIC[rng.below(EXOTIC.len() as u64) as usize]);
                    } else {
                        out.push((0x20 + rng.below(0x5f) as u8) as char);
                    }
                }
            }
        }
    }
    out
}

impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(&parse_pattern(self), rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_from_pattern(&parse_pattern(self), rng)
    }
}

// ---------------------------------------------------------------------
// `prop::` namespace: collections and samples.
// ---------------------------------------------------------------------

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Vector of `element` values, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>` with ~`len` entries.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            // Duplicate keys collapse, so maps may come out smaller than n —
            // same as upstream proptest.
            (0..n)
                .map(|_| (self.key.gen_value(rng), self.value.gen_value(rng)))
                .collect()
        }
    }

    /// Map of `key` → `value` entries, entry count drawn from `len`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, len }
    }
}

pub mod sample {
    //! Sampling helpers.

    use super::{Arbitrary, TestRng};

    /// An abstract index: resolve against a concrete length with
    /// [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index {
        raw: u64,
    }

    impl Index {
        /// Map onto `[0, len)`; `len` must be nonzero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.raw % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index {
                raw: rng.next_u64(),
            }
        }
    }
}

/// `proptest::prelude`-style namespace re-exporting the `prop::` modules.
pub mod prop {
    pub use super::collection;
    pub use super::sample;
}

/// Namespace mirror of upstream's `proptest::test_runner`.
pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError};
}

/// The glob-import surface used by workspace tests.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------

/// Uniform choice among strategy arms with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Assert a condition inside a property, failing the case (not panicking
/// the harness) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Assert equality inside a property, reporting both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Define property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg = $crate::Strategy::gen_value(&($strat), &mut rng);
                    )+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_respects_class_and_bounds() {
        let mut rng = crate::TestRng::for_case("pat", 0);
        for case in 0..200 {
            let mut r = crate::TestRng::for_case("pat", case);
            let s = "[a-z0-9./-]{0,40}".gen_value(&mut r);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "./-".contains(c)));
        }
        let fixed = "[a-z]{8}".gen_value(&mut rng);
        assert_eq!(fixed.chars().count(), 8);
        let pc = "\\PC{0,128}".gen_value(&mut rng);
        assert!(pc.chars().all(|c| !c.is_control()));
    }

    #[test]
    fn escaped_class_members_parse() {
        // The literal class used by the universe JSON tests.
        let mut rng = crate::TestRng::for_case("esc", 3);
        let s = "[a-zA-Z0-9 _\\-\\.\"\\\\/\n\t]{0,24}".gen_value(&mut rng);
        for c in s.chars() {
            assert!(
                c.is_ascii_alphanumeric() || " _-.\"\\/\n\t".contains(c),
                "unexpected char {c:?}"
            );
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = "[a-z]{1,8}".gen_value(&mut crate::TestRng::for_case("d", 7));
        let b = "[a-z]{1,8}".gen_value(&mut crate::TestRng::for_case("d", 7));
        assert_eq!(a, b);
    }

    #[test]
    fn ranges_tuples_collections_and_oneof() {
        let mut rng = crate::TestRng::for_case("mix", 1);
        let strat = prop::collection::vec((0u64..32, 0u8..=255, any::<bool>()), 1..200);
        let v = strat.gen_value(&mut rng);
        assert!((1..200).contains(&v.len()));
        assert!(v.iter().all(|(a, _, _)| *a < 32));

        let m = prop::collection::btree_map("[a-z]{1,8}", 0i64..10, 0..6).gen_value(&mut rng);
        assert!(m.len() < 6);

        let choice = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)];
        for _ in 0..50 {
            let c = choice.gen_value(&mut rng);
            assert!(c == 1 || c == 2 || c == 5 || c == 6);
        }

        let idx: prop::sample::Index = any::<prop::sample::Index>().gen_value(&mut rng);
        assert!(idx.index(13) < 13);

        let f = (-1e9f64..1e9).gen_value(&mut rng);
        assert!((-1e9..1e9).contains(&f));
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        let strat = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                prop::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = crate::TestRng::for_case("tree", 2);
        for _ in 0..100 {
            let t = strat.gen_value(&mut rng);
            fn depth(t: &Tree) -> u32 {
                match t {
                    Tree::Leaf(_) => 0,
                    Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
                }
            }
            assert!(depth(&t) <= 3);
        }
    }

    // The macro itself, exercised end to end (including config form).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_checks(
            x in 0u32..100,
            s in "[a-z]{1,4}",
        ) {
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), s.chars().count(), "ascii only: {}", s);
            if s.is_empty() {
                return Err(TestCaseError::fail("impossible: min length 1"));
            }
        }
    }

    proptest! {
        #[test]
        fn macro_default_config(v in prop::collection::vec(any::<u8>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }
    }
}
