//! Offline shim for the `crossbeam` API surface used by this workspace.
//!
//! Provides MPMC channels (`channel::{bounded, unbounded}`) and scoped
//! threads (`thread::scope`) on top of `std::sync` and `std::thread`.
//! Semantics mirror crossbeam where the workspace depends on them:
//!
//! * both [`channel::Sender`] and [`channel::Receiver`] are cloneable;
//! * `recv` returns `Err` once every sender is dropped and the queue has
//!   drained (EOF), `send` returns `Err` once every receiver is dropped;
//! * `recv_deadline` waits until an [`std::time::Instant`];
//! * `thread::scope` joins all spawned threads before returning and
//!   surfaces child panics as an `Err` result.

pub mod channel {
    //! MPMC channels with crossbeam's disconnect semantics.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Instant;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        // Signalled on: item enqueued, item dequeued, endpoint dropped.
        cond: Condvar,
        cap: Option<usize>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by deadline/timeout receives.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with no message available.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Sender<T> {
        /// Enqueue `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.shared.cap {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.shared.cond.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.shared.cond.notify_all();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let last = st.senders == 0;
            drop(st);
            if last {
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.cond.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.cond.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue a message, giving up at `deadline`.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.shared.cond.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .cond
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Dequeue a message, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// Dequeue a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.cond.notify_all();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers += 1;
            drop(st);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            let last = st.receivers == 0;
            drop(st);
            if last {
                self.shared.cond.notify_all();
            }
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cond: Condvar::new(),
            cap,
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Create a channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Create a channel that holds at most `cap` queued messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        // cap = 0 (rendezvous) is approximated by capacity 1; the workspace
        // only uses small positive capacities.
        with_cap(Some(cap.max(1)))
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's closure signature
    //! (`spawn(|scope| ...)`) on top of `std::thread::scope`.

    use std::any::Any;

    /// A scope handle passed to [`scope`] and to every spawned closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish, yielding its result or its panic
        /// payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope. The closure receives the scope
        /// itself (crossbeam's signature), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || f(&Scope { inner: inner_scope })),
            }
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned.
    /// All threads are joined before this returns. Returns `Err` with the
    /// first panic payload if any unjoined child panicked; `Ok` otherwise.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        // std::thread::scope propagates unjoined-child panics by panicking;
        // catch that to reproduce crossbeam's Result-based interface.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvTimeoutError};
    use std::time::{Duration, Instant};

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn recv_eof_after_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(7u8).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1u8).is_err());
    }

    #[test]
    fn recv_deadline_times_out() {
        let (_tx, rx) = bounded::<u8>(1);
        let start = Instant::now();
        let r = rx.recv_deadline(Instant::now() + Duration::from_millis(30));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|d| scope.spawn(move |_| d * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn scope_reports_child_panic() {
        let r = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("child down"));
        });
        assert!(r.is_err());
    }
}
