//! Offline shim for the `parking_lot` API surface used by this workspace.
//!
//! Wraps `std::sync` primitives and strips lock poisoning, matching the
//! `parking_lot` semantics the workspace code relies on: `lock()`, `read()`
//! and `write()` return guards directly (no `Result`). A thread that
//! panicked while holding a lock does not poison it for others.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
