//! Offline shim for the `bytes` crate API surface used by this workspace.
//!
//! All multi-byte integer accessors are big-endian, matching the `bytes`
//! crate defaults this workspace's wire formats rely on. [`Bytes`] shares
//! its backing buffer via `Arc`, so clones are cheap; [`BytesMut`] is a
//! thin growable buffer over `Vec<u8>`.

use std::ops::Deref;
use std::sync::Arc;

/// Read access to a byte cursor. Implemented for `&[u8]`.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes. Panics if fewer remain (as in the real crate).
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Consume a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Consume a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Consume a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Consume `dst.len()` bytes into `dst`. Panics if fewer remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice out of bounds: need {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(
            cnt <= self.len(),
            "advance out of bounds: {} > {}",
            cnt,
            self.len()
        );
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer. Implemented for [`BytesMut`]
/// and `Vec<u8>`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copy `data` into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

/// A growable mutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with `cap` bytes pre-reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes (mut)\"", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip_big_endian() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(0xab);
        buf.put_u16(0x1234);
        buf.put_u32(0xdead_beef);
        buf.put_u64(0x0102_0304_0506_0708);
        buf.put_slice(b"xyz");

        // Wire bytes are big-endian.
        assert_eq!(&buf[1..3], &[0x12, 0x34]);

        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.get_u8(), 0xab);
        assert_eq!(rd.get_u16(), 0x1234);
        assert_eq!(rd.get_u32(), 0xdead_beef);
        assert_eq!(rd.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 3];
        rd.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn advance_moves_cursor() {
        let data = [1u8, 2, 3, 4];
        let mut rd: &[u8] = &data;
        rd.advance(2);
        assert_eq!(rd.remaining(), 2);
        assert_eq!(rd.get_u8(), 3);
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::from(vec![9u8; 1024]);
        let c = b.clone();
        assert_eq!(b.to_vec(), c.to_vec());
        assert_eq!(b.len(), 1024);
    }

    #[test]
    #[should_panic]
    fn overread_panics() {
        let mut rd: &[u8] = &[1u8];
        let _ = rd.get_u32();
    }
}
