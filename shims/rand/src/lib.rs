//! Offline shim for the `rand` 0.8 API surface used by this workspace.
//!
//! Provides the `RngCore` / `Rng` / `SeedableRng` traits, a deterministic
//! [`rngs::StdRng`] (xoshiro256** seeded via SplitMix64), the OS entropy
//! source [`rngs::OsRng`], and [`thread_rng`]. The statistical contract the
//! workspace relies on is: deterministic per seed, uniform enough for
//! tests/benchmarks, and cryptographically seeded where `OsRng` is used.
//! (Key material in `lightweb-crypto` is drawn from `OsRng`, which reads
//! the operating system's entropy pool directly.)

use std::cell::RefCell;

/// Core random-number source: 32/64-bit words and byte fills.
pub trait RngCore {
    /// Next uniform `u32`.
    fn next_u32(&mut self) -> u32;
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable between two bounds (mirrors rand's
/// `SampleUniform`; a single blanket `SampleRange` impl per range shape
/// keeps float-literal inference working, e.g. `gen_range(0.0..600.0)`).
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                Self::sample_exclusive(lo, hi, rng)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Rngs constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed byte-array type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Construct from operating-system entropy.
    fn from_entropy() -> Self {
        let mut seed = Self::Seed::default();
        rngs::OsRng.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    //! Concrete rng implementations.

    use super::{RngCore, SeedableRng, SplitMix64};

    /// Deterministic xoshiro256** generator (the shim's `StdRng`).
    ///
    /// Deterministic per seed; not the same stream as upstream `StdRng`
    /// (ChaCha12) — workspace code only relies on per-seed determinism.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next_raw(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_raw() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.next_raw()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start at the all-zero state.
                let mut sm = SplitMix64 {
                    state: 0x6c62_272e_07bb_0142,
                };
                for w in &mut s {
                    *w = sm.next();
                }
            }
            StdRng { s }
        }
    }

    /// The operating system's entropy source (`/dev/urandom`).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut b = [0u8; 8];
            self.fill_bytes(&mut b);
            u64::from_le_bytes(b)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            use std::io::Read;
            let mut f =
                std::fs::File::open("/dev/urandom").expect("OsRng: /dev/urandom unavailable");
            f.read_exact(dest)
                .expect("OsRng: short read from /dev/urandom");
        }
    }
}

thread_local! {
    static THREAD_RNG: RefCell<rngs::StdRng> = RefCell::new(rngs::StdRng::from_entropy());
}

/// Handle to a per-thread, entropy-seeded generator.
#[derive(Clone, Debug, Default)]
pub struct ThreadRng;

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u32())
    }

    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        THREAD_RNG.with(|r| r.borrow_mut().fill_bytes(dest))
    }
}

/// The per-thread generator.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(0u8..=255);
            let _ = w;
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn from_seed_all_zero_is_escaped() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn os_and_thread_rng_produce_bytes() {
        let mut buf = [0u8; 32];
        super::rngs::OsRng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let x: u64 = super::thread_rng().gen();
        let y: u64 = super::thread_rng().gen();
        // Astronomically unlikely to collide twice in a row.
        assert!(x != y || x != 0);
    }
}
