//! Offline shim for the `criterion` API surface used by this workspace's
//! benches. It is a real (if minimal) timing harness: each benchmark runs
//! a short warm-up, then timed batches until the measurement budget is
//! spent, and prints `name  time: <mean>/iter`.
//!
//! The measurement budget is capped at `LIGHTWEB_BENCH_MS` milliseconds
//! per benchmark (default 300) so full `cargo bench` sweeps stay fast;
//! raise it for more stable numbers. No statistical analysis, HTML
//! reports, or regression detection — numbers are indicative only.

use std::fmt::Write as _;
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub mod measurement {
    //! Measurement marker types.

    /// Wall-clock time measurement (the only kind the shim supports).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct WallTime;
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark identifier.
pub trait IntoBenchmarkId {
    /// Render to the printed identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    mean_ns: Option<f64>,
}

impl Bencher {
    /// Run `f` repeatedly and record the mean wall-clock cost per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also estimates per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up || warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measure {
            for _ in 0..batch {
                black_box(f());
            }
            iters += batch;
        }
        self.mean_ns = Some(start.elapsed().as_nanos() as f64 / iters as f64);
    }
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn budget_ms() -> u64 {
    std::env::var("LIGHTWEB_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

#[derive(Clone, Copy)]
struct RunConfig {
    warm_up: Duration,
    measure: Duration,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            warm_up: Duration::from_millis(50),
            measure: Duration::from_millis(budget_ms()),
        }
    }
}

fn run_one(
    prefix: &str,
    id: &str,
    cfg: RunConfig,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        warm_up: cfg.warm_up,
        measure: cfg.measure,
        mean_ns: None,
    };
    f(&mut b);
    let full = if prefix.is_empty() {
        id.to_string()
    } else {
        format!("{prefix}/{id}")
    };
    match b.mean_ns {
        Some(ns) => {
            let mut line = format!("{full:<48} time: {:>12}/iter", fmt_time(ns));
            if let Some(tp) = throughput {
                let per_sec = match tp {
                    Throughput::Bytes(n) => {
                        format!("{:.1} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
                    }
                    Throughput::Elements(n) => format!("{:.0} elem/s", n as f64 / ns * 1e9),
                };
                let _ = write!(line, "  thrpt: {per_sec}");
            }
            println!("{line}");
        }
        None => println!("{full:<48} (no measurement: bencher.iter never called)"),
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    cfg: RunConfig,
    throughput: Option<Throughput>,
    _parent: PhantomData<&'a mut Criterion>,
    _measurement: PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Accepted for API compatibility; the shim sizes batches by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the warm-up duration.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d.min(Duration::from_millis(budget_ms()));
        self
    }

    /// Set the measurement duration (capped by `LIGHTWEB_BENCH_MS`).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measure = d.min(Duration::from_millis(budget_ms()));
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&self.name, &id.into_id(), self.cfg, self.throughput, f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into_id(), self.cfg, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// End the group (printing-only in the shim).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        BenchmarkGroup {
            name: name.into(),
            cfg: RunConfig::default(),
            throughput: None,
            _parent: PhantomData,
            _measurement: PhantomData,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one("", &id.into_id(), RunConfig::default(), None, f);
        self
    }

    /// Run one stand-alone benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one("", &id.into_id(), RunConfig::default(), None, |b| {
            f(b, input)
        });
        self
    }
}

/// Define a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        g.throughput(Throughput::Bytes(64));
        g.bench_function(BenchmarkId::new("xor", 64), |b| {
            let mut acc = 0u64;
            b.iter(|| {
                acc ^= black_box(0x5aa5_5aa5);
                acc
            });
        });
        g.bench_with_input(BenchmarkId::from_parameter("b=4"), &4u32, |b, &n| {
            b.iter(|| (0..n).sum::<u32>());
        });
        g.finish();
    }

    #[test]
    fn time_formatting() {
        assert!(fmt_time(12.0).contains("ns"));
        assert!(fmt_time(12_000.0).contains("µs"));
        assert!(fmt_time(12_000_000.0).contains("ms"));
        assert!(fmt_time(2.0e9).ends_with('s'));
    }
}
