//! End-to-end exercise of the open-loop load harness: a real two-server
//! TCP deployment, a live sweep, saturation gauges observed over HTTP
//! from the scrape endpoint *while* the fleet is offering load, and a
//! self-compare of the resulting snapshot at tolerance 0.

use lightweb_bench::load::{
    compare_load_snapshots, page_key, run_sweep, LoadConfig, LoadSnapshot, ScheduleKind,
};
use lightweb_bench::perf::{parse_any_snapshot, AnySnapshot};
use lightweb_core::{IoModel, ServerConfig, ZltpServer};
use std::io::{Read, Write};
use std::time::{Duration, Instant};

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape endpoint");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.0 200"), "non-200: {head}");
    body.to_string()
}

/// The value of a rendered gauge line (`<name>_gauge <value>`), if
/// present in a `/metrics` body.
fn gauge_value(metrics: &str, name: &str) -> Option<i64> {
    let needle = format!("{name}_gauge ");
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&needle))
        .and_then(|v| v.trim().parse().ok())
}

#[test]
fn live_sweep_exports_saturation_gauges_and_self_compares_clean() {
    lightweb_telemetry::registry().reset();
    let scrape =
        lightweb_telemetry::scrape::ScrapeServer::bind("127.0.0.1:0").expect("bind scrape");

    // A real two-server pair over TCP in the load-test shape.
    let cfg = LoadConfig {
        rates_rps: vec![40.0, 80.0],
        duration_s: 1.5,
        connections: 4,
        schedule: ScheduleKind::Poisson,
        pages: 8,
        gets_per_page: 2,
        zipf_exponent: 1.0,
        io_timeout: Duration::from_secs(10),
        seed: 7,
        io_model: IoModel::Threads,
    };
    let blob_len = ServerConfig::load_test("load", 0).blob_len;
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for party in 0..2u8 {
        let server = ZltpServer::new(ServerConfig::load_test("load", party)).unwrap();
        for i in 0..cfg.pages {
            server
                .publish(&page_key(i), &vec![(i + 1) as u8; blob_len])
                .unwrap();
        }
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap());
        server.serve_tcp(listener).unwrap();
        servers.push(server);
    }

    // Run the sweep on a worker so this thread can observe it live.
    let sweep = {
        let cfg = cfg.clone();
        let (a0, a1) = (addrs[0], addrs[1]);
        std::thread::spawn(move || run_sweep(a0, a1, &cfg, blob_len))
    };

    // While the fleet offers load, the saturation gauges must be
    // visible to an operator scraping /metrics: the offered rate, the
    // in-flight/request gauges, and the server-side connection gauge
    // that /healthz also reports.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut seen_live_gauges = false;
    while Instant::now() < deadline && !seen_live_gauges {
        let metrics = http_get(scrape.addr(), "/metrics");
        let offered = gauge_value(&metrics, "load.offered.rps");
        let inflight_present = gauge_value(&metrics, "load.inflight.requests").is_some();
        let server_conns = gauge_value(&metrics, "zltp.server.connections.open");
        if offered.is_some_and(|v| v > 0) && inflight_present && server_conns.is_some_and(|v| v > 0)
        {
            seen_live_gauges = true;
            let healthz = http_get(scrape.addr(), "/healthz");
            let conn_line = healthz
                .lines()
                .find(|l| l.starts_with("open_connections "))
                .expect("healthz reports open_connections");
            let n: i64 = conn_line["open_connections ".len()..]
                .trim()
                .parse()
                .unwrap();
            assert!(n > 0, "healthz should see the fleet's sessions: {healthz}");
        } else {
            std::thread::sleep(Duration::from_millis(50));
        }
    }
    assert!(
        seen_live_gauges,
        "never observed live load gauges on /metrics during the sweep:\n{}",
        http_get(scrape.addr(), "/metrics")
    );

    let points = sweep.join().unwrap().expect("sweep completes");
    for server in &servers {
        server.shutdown();
    }

    // The curve covers the requested grid with real completions and
    // coordinated-omission-correct latencies.
    assert_eq!(points.len(), 2);
    for p in &points {
        assert!(p.requests > 0, "no completions at {} rps", p.offered_rps);
        assert!(p.p99_ms >= p.p50_ms && p.p50_ms > 0.0, "{p:?}");
        assert_eq!(p.planned_requests, p.requests + p.errors + p.timeouts);
    }

    // Snapshot round-trips through JSON, dispatches as a load curve,
    // and self-compares clean at tolerance 0 — the CI load-smoke gate.
    let snap = LoadSnapshot::from_sweep("load_two_server", "two_server_pir", &cfg, points);
    let parsed = match parse_any_snapshot(&snap.to_json()) {
        Ok(AnySnapshot::Load(s)) => s,
        other => panic!("expected a load snapshot, got {other:?}"),
    };
    assert_eq!(parsed, snap);
    let diffs = compare_load_snapshots(&snap, &parsed, 0.0).expect("comparable");
    assert!(
        diffs.iter().all(|d| !d.regressed),
        "self-compare regressed: {diffs:?}"
    );

    // After the sweep the fleet is gone: inflight and connection
    // gauges drain back to zero.
    let metrics = http_get(scrape.addr(), "/metrics");
    assert_eq!(gauge_value(&metrics, "load.inflight.requests"), Some(0));
    assert_eq!(gauge_value(&metrics, "load.connections.open"), Some(0));
}
