//! Bake the git identity into the harness at build time so every
//! `BENCH_*.json` snapshot and `reproduce --json` stream is
//! self-identifying. Falls back to "unknown" outside a git checkout
//! (e.g. a source tarball) — the build must never fail over metadata.

use std::process::Command;

fn git(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8(out.stdout).ok()?;
    let s = s.trim();
    if s.is_empty() {
        None
    } else {
        Some(s.to_string())
    }
}

fn main() {
    let describe = git(&["describe", "--always", "--dirty", "--tags"])
        .unwrap_or_else(|| "unknown".to_string());
    let commit = git(&["rev-parse", "HEAD"]).unwrap_or_else(|| "unknown".to_string());
    println!("cargo:rustc-env=LIGHTWEB_GIT_DESCRIBE={describe}");
    println!("cargo:rustc-env=LIGHTWEB_GIT_COMMIT={commit}");
    // Re-stamp when HEAD moves; harmless if the paths do not exist.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
    println!("cargo:rerun-if-changed=../../.git/refs");
}
