//! E1 (paper §5.1): per-request server computation — full-domain DPF
//! evaluation plus the data scan. The paper reports 167 ms/request on a
//! 1 GiB shard (64 ms DPF + 103 ms scan); these benches measure the same
//! two components on CI-sized shards so the per-GiB extrapolation in
//! `reproduce e1` has calibrated inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightweb_bench::build_shard;
use lightweb_dpf::{gen, DpfParams};
use std::time::Duration;

fn bench_dpf_eval_full(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1/dpf_eval_full");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for domain_bits in [14u32, 16, 18] {
        let params = DpfParams::with_default_termination(domain_bits).unwrap();
        let (k0, _) = gen(&params, 7);
        g.throughput(Throughput::Elements(params.domain_size()));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("d={domain_bits}")),
            &k0,
            |b, k| {
                b.iter(|| std::hint::black_box(k.eval_full()));
            },
        );
    }
    g.finish();
}

fn bench_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1/data_scan");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for mib in [4usize, 16] {
        let shard = build_shard(mib, 1024);
        let (k0, _) = gen(&shard.params, 3);
        let bits = k0.eval_full();
        g.throughput(Throughput::Bytes(shard.stored_bytes as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mib}MiB")),
            &shard,
            |b, s| {
                b.iter(|| std::hint::black_box(s.server.scan(&bits)));
            },
        );
    }
    g.finish();
}

fn bench_full_request(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1/full_request");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let shard = build_shard(16, 1024);
    let (k0, _) = gen(&shard.params, 3);
    g.throughput(Throughput::Bytes(shard.stored_bytes as u64));
    g.bench_function("16MiB_shard", |b| {
        b.iter(|| std::hint::black_box(shard.server.answer(&k0).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench_dpf_eval_full, bench_scan, bench_full_request);
criterion_main!(benches);
