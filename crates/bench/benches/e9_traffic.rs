//! E9 (paper §1 motivation): the fingerprinting attack itself is cheap —
//! which is the paper's point about "low-cost traffic-analysis attacks".
//! These benches measure classifier training and per-flow classification.

use criterion::{criterion_group, criterion_main, Criterion};
use lightweb_workload::fingerprint::{
    simulate_proxy_flow, synthetic_site, FlowObservation, NearestCentroid,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench_fingerprinting(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9/fingerprint");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(5);
    let site = synthetic_site(40, &mut rng);
    let samples: Vec<(usize, FlowObservation)> = site
        .iter()
        .enumerate()
        .flat_map(|(label, objs)| {
            (0..8)
                .map(|_| (label, simulate_proxy_flow(objs, &mut rng)))
                .collect::<Vec<_>>()
        })
        .collect();

    g.bench_function("train_320_flows", |b| {
        b.iter(|| std::hint::black_box(NearestCentroid::train(&samples)));
    });

    let clf = NearestCentroid::train(&samples);
    let obs = simulate_proxy_flow(&site[7], &mut rng);
    g.bench_function("classify_one_flow", |b| {
        b.iter(|| std::hint::black_box(clf.classify(&obs)));
    });
    g.finish();
}

criterion_group!(benches, bench_fingerprinting);
criterion_main!(benches);
