//! Ablations on the reproduction's own design choices:
//!
//! * A1 — DPF early-termination width ν: deeper trees (small ν) trade PRG
//!   calls for narrower leaf conversions. ν=7 (128-bit leaves) is the
//!   conventional sweet spot; the sweep shows why.
//! * A2 — branch-free masked-XOR scan vs a naïve branchy scan: the scalar
//!   analogue of the paper's AVX decision.
//! * A3 — ChaCha round count in the DPF PRG: ChaCha8 vs ChaCha20, i.e.
//!   what the conventional reduced-round PRG choice buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightweb_bench::build_shard;
use lightweb_crypto::chacha::chacha_permute;
use lightweb_crypto::util::xor_in_place_masked;
use lightweb_dpf::{gen, DpfParams};
use std::time::Duration;

fn a1_termination_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/a1_term_width");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let d = 16u32;
    for term in [0u32, 3, 5, 7, 9, 11] {
        let params = DpfParams::new(d, term).unwrap();
        let (k0, _) = gen(&params, 101);
        g.throughput(Throughput::Elements(params.domain_size()));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("nu={term}")),
            &k0,
            |b, k| {
                b.iter(|| std::hint::black_box(k.eval_full()));
            },
        );
    }
    g.finish();
}

/// The naïve scan: a branch per record instead of a broadcast mask.
fn branchy_scan(slots: &[(u64, Vec<u8>)], bits: &[u8], record_len: usize) -> Vec<u8> {
    let mut acc = vec![0u8; record_len];
    for (slot, rec) in slots {
        if (bits[(slot / 8) as usize] >> (slot % 8)) & 1 == 1 {
            for (a, r) in acc.iter_mut().zip(rec.iter()) {
                *a ^= *r;
            }
        }
    }
    acc
}

fn a2_scan_strategy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/a2_scan_strategy");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let shard = build_shard(8, 1024);
    let (k0, _) = gen(&shard.params, 55);
    let bits = k0.eval_full();
    g.throughput(Throughput::Bytes(shard.stored_bytes as u64));
    g.bench_function("masked_branch_free", |b| {
        b.iter(|| std::hint::black_box(shard.server.scan(&bits)));
    });

    // Build an equivalent plain representation for the branchy baseline.
    let slots: Vec<(u64, Vec<u8>)> = {
        // Reconstruct entries the same way build_shard does.
        let n_records = shard.server.len();
        let mut seen = std::collections::HashSet::with_capacity(n_records);
        let mut out = Vec::with_capacity(n_records);
        let mut i = 0u64;
        while out.len() < n_records {
            let slot = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % shard.params.domain_size();
            i += 1;
            if !seen.insert(slot) {
                continue;
            }
            let mut rec = vec![0u8; 1024];
            rec[..8].copy_from_slice(&i.to_le_bytes());
            out.push((slot, rec));
        }
        out
    };
    g.bench_function("branchy_baseline", |b| {
        b.iter(|| std::hint::black_box(branchy_scan(&slots, &bits, 1024)));
    });

    // Sanity: both strategies agree.
    assert_eq!(
        shard.server.scan(&bits).unwrap(),
        branchy_scan(&slots, &bits, 1024)
    );
    g.finish();
}

fn a3_prg_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/a3_prg_rounds");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let state = [0x42u32; 16];
    let mut out = [0u8; 64];
    for rounds in [8usize, 12, 20] {
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("chacha{rounds}")),
            &rounds,
            |b, &r| {
                b.iter(|| {
                    chacha_permute(&state, r, &mut out);
                    std::hint::black_box(&out);
                });
            },
        );
    }
    g.finish();
}

fn a4_masked_xor_widths(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/a4_record_width");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for len in [256usize, 1024, 4096, 16384] {
        let src = vec![0x5Au8; len];
        let mut dst = vec![0u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| {
                xor_in_place_masked(&mut dst, &src, 0xFF);
                std::hint::black_box(&dst);
            });
        });
    }
    g.finish();
}

fn a5_extension_engines(c: &mut Criterion) {
    use lightweb_dpf::gen_incremental;
    use lightweb_oram::{PathOram, RecursivePathOram};

    let mut g = c.benchmark_group("ablation/a5_extensions");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Incremental DPF: prefix evaluation cost at one level.
    let betas: Vec<Vec<u8>> = (0..16).map(|_| vec![1u8; 8]).collect();
    let (ik0, _) = gen_incremental(16, 12345, &betas, 8);
    g.bench_function("incremental_dpf_prefix_eval", |b| {
        b.iter(|| std::hint::black_box(ik0.eval_prefix(0b1010, 4)));
    });

    // Flat vs recursive ORAM access cost (recursion pays ~3 path accesses
    // for polylog trusted state).
    let mut flat = PathOram::with_seed(4096, 64, [1; 32]).unwrap();
    let mut rec = RecursivePathOram::with_seed(4096, 64, [1; 32]).unwrap();
    for a in 0..4096u64 {
        flat.write(a, &[a as u8; 64]).unwrap();
        rec.write(a, &[a as u8; 64]).unwrap();
    }
    g.bench_function("path_oram_flat_read", |b| {
        b.iter(|| std::hint::black_box(flat.read(7).unwrap()));
    });
    g.bench_function("path_oram_recursive_read", |b| {
        b.iter(|| std::hint::black_box(rec.read(7).unwrap()));
    });
    g.finish();
}

criterion_group!(
    benches,
    a1_termination_width,
    a2_scan_strategy,
    a3_prg_rounds,
    a4_masked_xor_widths,
    a5_extension_engines
);
criterion_main!(benches);
