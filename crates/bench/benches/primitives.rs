//! Cryptographic-primitive throughput: the calibration layer under every
//! experiment. The paper's absolute numbers come from AVX-accelerated C++;
//! knowing our ChaCha/PRG/scan throughput makes the extrapolations in
//! EXPERIMENTS.md auditable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightweb_crypto::aead::ChaCha20Poly1305;
use lightweb_crypto::chacha::ChaCha;
use lightweb_crypto::poly1305::Poly1305;
use lightweb_crypto::prg::DpfPrg;
use lightweb_crypto::util::xor_in_place_masked;
use lightweb_crypto::SipHash24;
use std::time::Duration;

fn quick(g: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
}

fn bench_chacha(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives/chacha20");
    quick(&mut g);
    let cipher = ChaCha::chacha20(&[7u8; 32], &[1u8; 12]);
    for len in [1024usize, 65536] {
        let mut buf = vec![0u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| {
                cipher.apply_keystream(0, &mut buf);
                std::hint::black_box(&buf);
            });
        });
    }
    g.finish();
}

fn bench_prg_expand(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives/dpf_prg_expand");
    quick(&mut g);
    let prg = DpfPrg::new();
    let seed = [9u8; 16];
    g.bench_function("expand_one_node", |b| {
        b.iter(|| std::hint::black_box(prg.expand(&seed)));
    });
    let mut out = [0u8; 16];
    g.bench_function("convert_leaf_128bit", |b| {
        b.iter(|| {
            prg.convert(&seed, &mut out);
            std::hint::black_box(&out);
        });
    });
    g.finish();
}

fn bench_siphash(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives/siphash24");
    quick(&mut g);
    let sip = SipHash24::from_halves(1, 2);
    let path = b"nytimes.com/world/africa/2023/06/headlines.json";
    g.throughput(Throughput::Bytes(path.len() as u64));
    g.bench_function("hash_typical_path", |b| {
        b.iter(|| std::hint::black_box(sip.hash(path)));
    });
    g.finish();
}

fn bench_poly1305_and_aead(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives/aead");
    quick(&mut g);
    let key = [3u8; 32];
    let blob = vec![0x55u8; 4096];
    g.throughput(Throughput::Bytes(blob.len() as u64));
    g.bench_function("poly1305_mac_4KiB", |b| {
        b.iter(|| std::hint::black_box(Poly1305::mac(&key, &blob)));
    });
    let aead = ChaCha20Poly1305::new(&key);
    let nonce = [1u8; 12];
    g.bench_function("seal_4KiB_blob", |b| {
        b.iter(|| std::hint::black_box(aead.seal(&nonce, b"path", &blob)));
    });
    let ct = aead.seal(&nonce, b"path", &blob);
    g.bench_function("open_4KiB_blob", |b| {
        b.iter(|| std::hint::black_box(aead.open(&nonce, b"path", &ct).unwrap()));
    });
    g.finish();
}

fn bench_masked_xor(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives/scan_inner_loop");
    quick(&mut g);
    let src = vec![0xAAu8; 4096];
    let mut dst = vec![0u8; 4096];
    g.throughput(Throughput::Bytes(4096));
    g.bench_function("xor_in_place_masked_4KiB", |b| {
        b.iter(|| {
            xor_in_place_masked(&mut dst, &src, 0xFF);
            std::hint::black_box(&dst);
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_chacha,
    bench_prg_expand,
    bench_siphash,
    bench_poly1305_and_aead,
    bench_masked_xor
);
criterion_main!(benches);
