//! E3 (paper §5.1): communication. The paper's per-request bytes are
//! dominated by the DPF keys (upload) and the two 4 KiB buckets
//! (download); these benches measure the CPU cost of producing and moving
//! those bytes — key generation, serialization, and framed transport.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightweb_core::wire::Message;
use lightweb_core::{mem_pair, FramedConn};
use lightweb_dpf::{gen, DpfKey, DpfParams};
use std::time::Duration;

fn bench_keygen_and_serialization(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3/dpf_key");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for d in [18u32, 22] {
        let params = DpfParams::with_default_termination(d).unwrap();
        g.bench_with_input(
            BenchmarkId::new("gen", format!("d={d}")),
            &params,
            |b, p| {
                b.iter(|| std::hint::black_box(gen(p, 12345 % p.domain_size())));
            },
        );
        let (k0, _) = gen(&params, 1);
        g.bench_with_input(
            BenchmarkId::new("serialize", format!("d={d}")),
            &k0,
            |b, k| {
                b.iter(|| std::hint::black_box(k.to_bytes()));
            },
        );
        let bytes = k0.to_bytes();
        g.bench_with_input(
            BenchmarkId::new("deserialize", format!("d={d}")),
            &bytes,
            |b, bs| {
                b.iter(|| std::hint::black_box(DpfKey::from_bytes(bs).unwrap()));
            },
        );
    }
    g.finish();
}

fn bench_framed_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3/framed_transport");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for payload_len in [357usize, 4096] {
        let (a, b_end) = mem_pair();
        let mut tx = FramedConn::new(a);
        let mut rx = FramedConn::new(b_end);
        let msg = Message::Get {
            request_id: 1,
            payload: vec![0xAB; payload_len],
        };
        g.throughput(Throughput::Bytes(payload_len as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{payload_len}B")),
            &msg,
            |bench, msg| {
                bench.iter(|| {
                    tx.send(msg).unwrap();
                    std::hint::black_box(rx.recv().unwrap());
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_keygen_and_serialization,
    bench_framed_roundtrip
);
criterion_main!(benches);
