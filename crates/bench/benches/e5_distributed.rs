//! E5 (paper §5.2): front-end/shard split of DPF evaluation. Per-shard
//! work should equal the small-domain evaluation regardless of how many
//! shards the deployment has — the paper's load-flatness argument for the
//! 305-shard C4 architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightweb_core::deployment::ShardedDeployment;
use lightweb_dpf::{gen, DpfParams};
use std::time::Duration;

fn entries(params: &DpfParams, n: usize, record_len: usize) -> Vec<(u64, Vec<u8>)> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    let mut i = 0u64;
    while out.len() < n {
        let slot = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % params.domain_size();
        i += 1;
        if seen.insert(slot) {
            out.push((slot, vec![(i & 0xFF) as u8; record_len]));
        }
    }
    out
}

fn bench_sharded_answer(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5/sharded_answer");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let params = DpfParams::with_default_termination(16).unwrap();
    let es = entries(&params, 1 << 13, 256);
    let (key, _) = gen(&params, 99);
    for prefix in [1u32, 3, 5] {
        let dep = ShardedDeployment::from_entries(params, prefix, 256, es.clone()).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("shards=2^{prefix}")),
            &dep,
            |b, dep| {
                b.iter(|| std::hint::black_box(dep.answer(&key).unwrap()));
            },
        );
    }
    g.finish();
}

fn bench_front_end_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5/front_end");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let params = DpfParams::with_default_termination(22).unwrap();
    let (key, _) = gen(&params, 1);
    for prefix in [4u32, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("prefix={prefix}")),
            &key,
            |b, k| {
                b.iter(|| std::hint::black_box(k.eval_prefix(prefix)));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_sharded_answer, bench_front_end_split);
criterion_main!(benches);
