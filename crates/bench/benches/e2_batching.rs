//! E2 (paper §5.1): request batching. One scan pass answers a whole
//! batch, so amortized per-request cost falls with batch size while the
//! batch's latency grows — the paper's 0.51 s / 2 req/s (b=1) versus
//! 2.6 s / 6 req/s (b=16) trade-off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightweb_bench::build_shard;
use lightweb_pir::TwoServerClient;
use std::time::Duration;

fn bench_batched_answers(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2/answer_batch");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let shard = build_shard(8, 1024);
    let client = TwoServerClient::new(shard.params, 1024);
    for batch in [1usize, 4, 16] {
        let keys: Vec<_> = (0..batch)
            .map(|i| {
                client
                    .query_slot((i as u64 * 131) % shard.params.domain_size())
                    .key0
            })
            .collect();
        // Throughput in requests: criterion reports req/s directly.
        g.throughput(Throughput::Elements(batch as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("b={batch}")),
            &keys,
            |b, keys| {
                b.iter(|| std::hint::black_box(shard.server.answer_batch(keys).unwrap()));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_batched_answers);
criterion_main!(benches);
