//! E8 (paper §2.2): mode-of-operation comparison. The two-server PIR and
//! single-server LWE modes pay a linear scan per request; the enclave's
//! Path ORAM access is polylogarithmic. These benches pin the per-request
//! server cost of each mode at a fixed store size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lightweb_dpf::{gen, DpfParams};
use lightweb_oram::ObliviousKvStore;
use lightweb_pir::lwe::{LweClient, LweParams, LweServer};
use lightweb_pir::PirServer;
use std::time::Duration;

const N: usize = 1 << 12;
const RECORD: usize = 256;

fn bench_two_server_pir(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8/two_server_pir");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n_pow in [10u32, 12, 14] {
        let n = 1usize << n_pow;
        let params = DpfParams::with_default_termination(n_pow + 2).unwrap();
        let entries: Vec<(u64, Vec<u8>)> = (0..n as u64)
            .map(|i| (i * 4 + 1, vec![i as u8; RECORD]))
            .collect();
        let server = PirServer::from_entries(params, RECORD, entries).unwrap();
        let (k0, _) = gen(&params, 5);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("N=2^{n_pow}")),
            &server,
            |b, s| {
                b.iter(|| std::hint::black_box(s.answer(&k0).unwrap()));
            },
        );
    }
    g.finish();
}

fn bench_enclave_oram(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8/enclave_oram");
    g.sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n_pow in [10u32, 12, 14] {
        let n = 1usize << n_pow;
        let mut kv = ObliviousKvStore::new(n as u64, RECORD).unwrap();
        for i in 0..n {
            kv.put(format!("k{i}").as_bytes(), &vec![i as u8; RECORD])
                .unwrap();
        }
        g.bench_function(BenchmarkId::from_parameter(format!("N=2^{n_pow}")), |b| {
            b.iter(|| std::hint::black_box(kv.get(b"k7").unwrap()));
        });
    }
    g.finish();
}

fn bench_lwe(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8/single_server_lwe");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let params = LweParams { n: 256 };
    let records: Vec<Vec<u8>> = (0..N).map(|i| vec![i as u8; RECORD]).collect();
    let server = LweServer::new(params, RECORD, records).unwrap();
    let client = LweClient::new(params, server.public_seed(), server.cols(), RECORD);
    let q = client.query(3);
    g.bench_function(format!("answer/N=2^{}", N.trailing_zeros()), |b| {
        b.iter(|| std::hint::black_box(server.answer(&q.payload).unwrap()));
    });
    g.bench_function("client_query", |b| {
        b.iter(|| std::hint::black_box(client.query(3)));
    });
    g.finish();
}

criterion_group!(benches, bench_two_server_pir, bench_enclave_oram, bench_lwe);
criterion_main!(benches);
