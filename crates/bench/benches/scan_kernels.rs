//! Scan-kernel microbenchmarks: the word-wide XOR kernels sweeping a
//! 16 MiB shard, per backend (scalar reference, autovectorized wide,
//! AVX2 when the host has it) and per batch size. The interesting
//! numbers are bytes/second — the wide kernels should run at a large
//! multiple of the scalar reference and, batched, approach the host's
//! memory bandwidth, since one sweep of the data answers every query in
//! the batch. Answers are asserted bit-identical to the scalar kernel
//! before anything is timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightweb_bench::build_shard;
use lightweb_dpf::gen;
use lightweb_pir::KernelBackend;
use std::time::Duration;

fn bit_vecs(shard: &lightweb_bench::BenchShard, batch: usize) -> Vec<Vec<u8>> {
    (0..batch as u64)
        .map(|i| {
            gen(&shard.params, i * 37 % shard.params.domain_size())
                .0
                .eval_full()
        })
        .collect()
}

fn supported_backends() -> Vec<KernelBackend> {
    KernelBackend::ALL
        .into_iter()
        .filter(|b| b.is_supported())
        .collect()
}

fn bench_single_query(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_kernels/single");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let shard = build_shard(16, 1024);
    let rows = bit_vecs(&shard, 1);
    let n = shard.server.len();
    let reference = shard
        .server
        .scan_batch_range_with(KernelBackend::Scalar, 0..n, &rows);
    g.throughput(Throughput::Bytes(shard.server.padded_bytes() as u64));
    for backend in supported_backends() {
        assert_eq!(
            shard.server.scan_batch_range_with(backend, 0..n, &rows),
            reference,
            "{} kernel must match the scalar reference",
            backend.name()
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(backend.name()),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    std::hint::black_box(shard.server.scan_batch_range_with(backend, 0..n, &rows))
                });
            },
        );
    }
    g.finish();
}

fn bench_batched(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_kernels/batch");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let shard = build_shard(16, 1024);
    let n = shard.server.len();
    // One sweep answers the whole batch, so bytes/sec here is the
    // amortized per-query bandwidth multiplier of §5.1.
    g.throughput(Throughput::Bytes(shard.server.padded_bytes() as u64));
    for batch in [4usize, 16] {
        let rows = bit_vecs(&shard, batch);
        for backend in supported_backends() {
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("{}x{batch}", backend.name())),
                &backend,
                |b, &backend| {
                    b.iter(|| {
                        std::hint::black_box(shard.server.scan_batch_range_with(
                            backend,
                            0..n,
                            &rows,
                        ))
                    });
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_single_query, bench_batched);
criterion_main!(benches);
