//! Parallel scan scaling: the `ScanPool` partitioning the E1 workload
//! (full-domain DPF evaluation + XOR scan) across 1, 2, and 4 workers, and
//! the pooled batched scan. On a multi-core host the 4-thread scan should
//! approach a 4× speedup over 1 thread; answers are bit-identical to the
//! serial path by construction (asserted below).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lightweb_bench::build_shard;
use lightweb_dpf::gen;
use lightweb_engine::ScanPool;
use std::time::Duration;

fn bench_scan_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_parallel/scan");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let shard = build_shard(16, 1024);
    let (k0, _) = gen(&shard.params, 3);
    let bits = k0.eval_full();
    let serial = shard.server.scan(&bits).unwrap();
    g.throughput(Throughput::Bytes(shard.stored_bytes as u64));
    for threads in [1usize, 2, 4] {
        let pool = ScanPool::new(threads);
        assert_eq!(
            pool.scan(&shard.server, &bits).unwrap(),
            serial,
            "parallel scan must equal serial scan at {threads} threads"
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &pool,
            |b, pool| {
                b.iter(|| std::hint::black_box(pool.scan(&shard.server, &bits).unwrap()));
            },
        );
    }
    g.finish();
}

fn bench_eval_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_parallel/eval_full");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let shard = build_shard(16, 1024);
    let (k0, _) = gen(&shard.params, 7);
    let serial = k0.eval_full();
    g.throughput(Throughput::Elements(shard.params.domain_size()));
    for threads in [1usize, 2, 4] {
        let pool = ScanPool::new(threads);
        assert_eq!(
            pool.eval_full(&k0),
            serial,
            "parallel eval must equal serial eval at {threads} threads"
        );
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &pool,
            |b, pool| {
                b.iter(|| std::hint::black_box(pool.eval_full(&k0)));
            },
        );
    }
    g.finish();
}

fn bench_batched_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("scan_parallel/scan_batch16");
    g.sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));
    let shard = build_shard(16, 1024);
    let bit_vecs: Vec<Vec<u8>> = (0..16u64)
        .map(|i| {
            gen(&shard.params, i * 37 % shard.params.domain_size())
                .0
                .eval_full()
        })
        .collect();
    // One scan pass amortized over the whole batch (§5.1).
    g.throughput(Throughput::Bytes(shard.stored_bytes as u64));
    for threads in [1usize, 4] {
        let pool = ScanPool::new(threads);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{threads}t")),
            &pool,
            |b, pool| {
                b.iter(|| std::hint::black_box(pool.scan_batch(&shard.server, &bit_vecs).unwrap()));
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_scan_threads,
    bench_eval_threads,
    bench_batched_scan
);
criterion_main!(benches);
