//! Machine-readable perf-baseline snapshots (`BENCH_<experiment>.json`).
//!
//! `reproduce bench` measures each engine's end-to-end session cost and
//! writes one [`BenchSnapshot`] per experiment; `bench-compare` diffs
//! two snapshot files against a tolerance and exits nonzero on
//! regression, which is what the CI perf gate runs. The schema is
//! versioned ([`BENCH_SCHEMA_VERSION`]) and self-identifying (git
//! describe + commit baked in at build time), so a snapshot can always
//! be traced back to the tree that produced it.
//!
//! Serialization goes through `lightweb_universe::json` — the workspace
//! has no serde_json, and the §3.2 JSON subset is exactly enough.

use lightweb_universe::{parse_json, Value};

/// Version stamp written into every snapshot. Bump when a field is
/// added, removed, or changes meaning; `bench-compare` refuses to diff
/// across versions, and [`BenchSnapshot::from_json`] refuses versions it
/// does not understand. v2 added `kind`, `warmup_requests`, and the
/// exact per-request `latencies_ms` array. v3 added
/// `scan_bytes_per_sec`, the server-side memory-scan rate.
pub const BENCH_SCHEMA_VERSION: u64 = 3;

/// The `kind` discriminator written into scalar bench snapshots. Load
/// snapshots carry [`crate::load::LOAD_SNAPSHOT_KIND`] instead;
/// [`parse_any_snapshot`] dispatches on this field.
pub const BENCH_SNAPSHOT_KIND: &str = "bench";

/// `git describe` of the tree this harness was built from ("unknown"
/// outside a checkout).
pub fn git_describe() -> &'static str {
    option_env!("LIGHTWEB_GIT_DESCRIBE").unwrap_or("unknown")
}

/// Full commit hash this harness was built from ("unknown" outside a
/// checkout).
pub fn git_commit() -> &'static str {
    option_env!("LIGHTWEB_GIT_COMMIT").unwrap_or("unknown")
}

/// The measured cost profile of one bench experiment — the §5.1 cost
/// model's axes (per-request bytes and CPU) plus the latency/throughput
/// and memory-accounting columns.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchMetrics {
    /// Private GETs issued.
    pub requests: u64,
    /// Wall-clock seconds for the whole workload.
    pub wall_seconds: f64,
    /// Requests per wall-clock second.
    pub throughput_rps: f64,
    /// Exact per-request latency percentiles (milliseconds).
    pub p50_ms: f64,
    /// 95th-percentile request latency (milliseconds).
    pub p95_ms: f64,
    /// 99th-percentile request latency (milliseconds).
    pub p99_ms: f64,
    /// Wire bytes (sent + received, frames included) per request.
    pub bytes_per_request: f64,
    /// Process CPU seconds (all threads) per request.
    pub cpu_seconds_per_request: f64,
    /// Heap allocations per request (0 when the counting allocator is
    /// not installed).
    pub allocs_per_request: f64,
    /// Heap bytes allocated per request.
    pub alloc_bytes_per_request: f64,
    /// Peak live heap during the workload, bytes.
    pub peak_heap_bytes: u64,
    /// Database bytes the scan kernels swept per wall-clock second
    /// (from the `pir.scan.bytes` counter) — the memory-bandwidth axis
    /// of the §5.1 cost model. 0 when the workload never scanned.
    pub scan_bytes_per_sec: f64,
    /// Requests issued (and discarded) before the measured window, so a
    /// snapshot records how much cache/JIT-style warmup its percentiles
    /// exclude.
    pub warmup_requests: u64,
    /// Exact per-request latencies from the measured window,
    /// milliseconds, ascending. The percentile fields above are order
    /// statistics over this array; keeping the raw sample makes p99
    /// meaningful at any request count and lets later tooling recompute
    /// arbitrary quantiles.
    pub latencies_ms: Vec<f64>,
}

/// One versioned, self-identifying bench snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSnapshot {
    /// Schema version ([`BENCH_SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// Experiment name (`two_server`, `lwe`, `oram`, ...).
    pub experiment: String,
    /// Engine name as reported by the server.
    pub engine: String,
    /// `git describe` of the producing tree.
    pub git_describe: String,
    /// Commit hash of the producing tree.
    pub git_commit: String,
    /// Shard scale the workload ran at (MiB), for apples-to-apples
    /// comparison.
    pub shard_mib: u64,
    /// The measurements.
    pub metrics: BenchMetrics,
}

/// The metric fields `bench-compare` diffs, with their direction:
/// `true` = lower is better.
pub const COMPARED_METRICS: &[(&str, bool)] = &[
    ("throughput_rps", false),
    ("p50_ms", true),
    ("p95_ms", true),
    ("p99_ms", true),
    ("bytes_per_request", true),
    ("cpu_seconds_per_request", true),
    ("allocs_per_request", true),
    ("alloc_bytes_per_request", true),
    ("peak_heap_bytes", true),
    ("scan_bytes_per_sec", false),
];

impl BenchMetrics {
    /// Look up a compared metric by its [`COMPARED_METRICS`] name.
    pub fn field(&self, name: &str) -> Option<f64> {
        Some(match name {
            "requests" => self.requests as f64,
            "wall_seconds" => self.wall_seconds,
            "throughput_rps" => self.throughput_rps,
            "p50_ms" => self.p50_ms,
            "p95_ms" => self.p95_ms,
            "p99_ms" => self.p99_ms,
            "bytes_per_request" => self.bytes_per_request,
            "cpu_seconds_per_request" => self.cpu_seconds_per_request,
            "allocs_per_request" => self.allocs_per_request,
            "alloc_bytes_per_request" => self.alloc_bytes_per_request,
            "peak_heap_bytes" => self.peak_heap_bytes as f64,
            "scan_bytes_per_sec" => self.scan_bytes_per_sec,
            _ => return None,
        })
    }
}

impl BenchSnapshot {
    /// Serialize to pretty-stable compact JSON (object keys sorted).
    pub fn to_json(&self) -> String {
        let m = &self.metrics;
        Value::object([
            ("schema_version", (self.schema_version as i64).into()),
            ("kind", BENCH_SNAPSHOT_KIND.into()),
            ("experiment", self.experiment.as_str().into()),
            ("engine", self.engine.as_str().into()),
            ("git_describe", self.git_describe.as_str().into()),
            ("git_commit", self.git_commit.as_str().into()),
            ("shard_mib", (self.shard_mib as i64).into()),
            (
                "metrics",
                Value::object([
                    ("requests", (m.requests as i64).into()),
                    ("wall_seconds", m.wall_seconds.into()),
                    ("throughput_rps", m.throughput_rps.into()),
                    ("p50_ms", m.p50_ms.into()),
                    ("p95_ms", m.p95_ms.into()),
                    ("p99_ms", m.p99_ms.into()),
                    ("bytes_per_request", m.bytes_per_request.into()),
                    ("cpu_seconds_per_request", m.cpu_seconds_per_request.into()),
                    ("allocs_per_request", m.allocs_per_request.into()),
                    ("alloc_bytes_per_request", m.alloc_bytes_per_request.into()),
                    ("peak_heap_bytes", (m.peak_heap_bytes as i64).into()),
                    ("scan_bytes_per_sec", m.scan_bytes_per_sec.into()),
                    ("warmup_requests", (m.warmup_requests as i64).into()),
                    (
                        "latencies_ms",
                        Value::Array(m.latencies_ms.iter().map(|&l| l.into()).collect()),
                    ),
                ]),
            ),
        ])
        .to_json()
    }

    /// Parse a snapshot file's contents. Strict about required fields —
    /// a truncated or hand-mangled baseline should fail loudly, not
    /// compare as zeros.
    pub fn from_json(text: &str) -> Result<BenchSnapshot, String> {
        let v = parse_json(text).map_err(|e| e.to_string())?;
        let version = v
            .get("schema_version")
            .and_then(Value::as_f64)
            .ok_or_else(|| "missing numeric field \"schema_version\"".to_string())?
            as u64;
        if version != BENCH_SCHEMA_VERSION {
            return Err(format!(
                "unsupported bench snapshot schema v{version} (this build reads \
                 v{BENCH_SCHEMA_VERSION}); regenerate the snapshot with a matching harness"
            ));
        }
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {name:?}"))
        };
        let num = |obj: &Value, name: &str| -> Result<f64, String> {
            obj.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field {name:?}"))
        };
        let metrics_v = v
            .get("metrics")
            .ok_or_else(|| "missing object field \"metrics\"".to_string())?;
        let metrics = BenchMetrics {
            requests: num(metrics_v, "requests")? as u64,
            wall_seconds: num(metrics_v, "wall_seconds")?,
            throughput_rps: num(metrics_v, "throughput_rps")?,
            p50_ms: num(metrics_v, "p50_ms")?,
            p95_ms: num(metrics_v, "p95_ms")?,
            p99_ms: num(metrics_v, "p99_ms")?,
            bytes_per_request: num(metrics_v, "bytes_per_request")?,
            cpu_seconds_per_request: num(metrics_v, "cpu_seconds_per_request")?,
            allocs_per_request: num(metrics_v, "allocs_per_request")?,
            alloc_bytes_per_request: num(metrics_v, "alloc_bytes_per_request")?,
            peak_heap_bytes: num(metrics_v, "peak_heap_bytes")? as u64,
            scan_bytes_per_sec: num(metrics_v, "scan_bytes_per_sec")?,
            warmup_requests: num(metrics_v, "warmup_requests")? as u64,
            latencies_ms: metrics_v
                .get("latencies_ms")
                .and_then(Value::as_array)
                .ok_or_else(|| "missing array field \"latencies_ms\"".to_string())?
                .iter()
                .map(|l| {
                    l.as_f64()
                        .ok_or_else(|| "non-numeric latency in \"latencies_ms\"".to_string())
                })
                .collect::<Result<Vec<f64>, String>>()?,
        };
        Ok(BenchSnapshot {
            schema_version: version,
            experiment: str_field("experiment")?,
            engine: str_field("engine")?,
            git_describe: str_field("git_describe")?,
            git_commit: str_field("git_commit")?,
            shard_mib: num(&v, "shard_mib")? as u64,
            metrics,
        })
    }
}

/// A snapshot file of either shape: scalar bench metrics or a load
/// curve. `bench-compare` works over this so one directory can hold
/// both kinds side by side.
#[derive(Clone, Debug, PartialEq)]
pub enum AnySnapshot {
    /// A scalar [`BenchSnapshot`] (`kind: "bench"`).
    Bench(BenchSnapshot),
    /// A rate-sweep [`crate::load::LoadSnapshot`] (`kind: "load_curve"`).
    Load(crate::load::LoadSnapshot),
}

/// Parse a snapshot of either kind, refusing anything this build does
/// not understand. Unknown `kind`/`schema_version` combinations are a
/// hard error — silently mis-diffing fields whose meaning changed is
/// exactly what schema versioning exists to prevent — and the
/// `bench-compare` binary surfaces that error as exit status 2.
pub fn parse_any_snapshot(text: &str) -> Result<AnySnapshot, String> {
    let v = parse_json(text).map_err(|e| e.to_string())?;
    let version =
        v.get("schema_version")
            .and_then(Value::as_f64)
            .ok_or_else(|| "missing numeric field \"schema_version\"".to_string())? as u64;
    // Pre-v2 bench snapshots carried no kind discriminator.
    let kind = v
        .get("kind")
        .and_then(Value::as_str)
        .unwrap_or(BENCH_SNAPSHOT_KIND);
    match (kind, version) {
        (BENCH_SNAPSHOT_KIND, BENCH_SCHEMA_VERSION) => {
            Ok(AnySnapshot::Bench(BenchSnapshot::from_json(text)?))
        }
        (crate::load::LOAD_SNAPSHOT_KIND, crate::load::LOAD_SCHEMA_VERSION) => Ok(
            AnySnapshot::Load(crate::load::LoadSnapshot::from_json(text)?),
        ),
        _ => Err(format!(
            "unknown snapshot schema: kind {kind:?} v{version} (this build reads \
             {BENCH_SNAPSHOT_KIND:?} v{BENCH_SCHEMA_VERSION} and {:?} v{})",
            crate::load::LOAD_SNAPSHOT_KIND,
            crate::load::LOAD_SCHEMA_VERSION,
        )),
    }
}

/// Exact percentile over per-request latencies: the nearest-rank value
/// in a sorted sample (unlike the log₂-bucket *estimates* the metric
/// registry serves, bench snapshots keep every observation and report
/// true order statistics).
pub fn percentile_exact(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// One metric's comparison verdict from [`compare_snapshots`].
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDiff {
    /// Metric name (one of [`COMPARED_METRICS`]).
    pub name: &'static str,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change in the *bad* direction: positive means
    /// worse, and > tolerance means regression.
    pub worsening: f64,
    /// Whether this metric regressed beyond tolerance.
    pub regressed: bool,
}

/// Diff two snapshots metric by metric. `tolerance` is the allowed
/// relative worsening (0.25 = 25%): a lower-is-better metric regresses
/// when `current > baseline * (1 + tolerance)`, throughput when
/// `current < baseline / (1 + tolerance)`. Metrics where the baseline
/// recorded 0 (e.g. allocations without the counting allocator) are
/// compared only in the direction that can regress from zero — any
/// nonzero current against a zero lower-is-better baseline counts as
/// 0 worsening, not infinity, so cross-allocator comparisons stay sane.
pub fn compare_snapshots(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
    tolerance: f64,
) -> Result<Vec<MetricDiff>, String> {
    if baseline.schema_version != current.schema_version {
        return Err(format!(
            "schema version mismatch: baseline v{} vs current v{}",
            baseline.schema_version, current.schema_version
        ));
    }
    let mut diffs = Vec::new();
    for &(name, lower_is_better) in COMPARED_METRICS {
        let b = baseline.metrics.field(name).expect("known metric");
        let c = current.metrics.field(name).expect("known metric");
        let worsening = if b <= 0.0 {
            0.0 // no meaningful baseline to regress from
        } else if lower_is_better {
            c / b - 1.0
        } else {
            b / c.max(f64::MIN_POSITIVE) - 1.0
        };
        diffs.push(MetricDiff {
            name,
            baseline: b,
            current: c,
            worsening,
            regressed: worsening > tolerance,
        });
    }
    Ok(diffs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchSnapshot {
        BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "two_server".into(),
            engine: "two_server_pir".into(),
            git_describe: git_describe().into(),
            git_commit: git_commit().into(),
            shard_mib: 64,
            metrics: BenchMetrics {
                requests: 32,
                wall_seconds: 1.5,
                throughput_rps: 21.3,
                p50_ms: 40.0,
                p95_ms: 90.0,
                p99_ms: 120.0,
                bytes_per_request: 4096.0,
                cpu_seconds_per_request: 0.05,
                allocs_per_request: 900.0,
                alloc_bytes_per_request: 1.5e6,
                peak_heap_bytes: 80_000_000,
                scan_bytes_per_sec: 2.5e9,
                warmup_requests: 8,
                latencies_ms: vec![35.0, 40.0, 90.0, 120.0],
            },
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let text = snap.to_json();
        assert!(text.contains("\"schema_version\":3"), "{text}");
        assert!(text.contains("\"kind\":\"bench\""), "{text}");
        assert!(text.contains("\"latencies_ms\":[35,40,90,120]"), "{text}");
        let back = BenchSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn truncated_snapshot_fails_loudly() {
        let mut v = parse_json(&sample().to_json()).unwrap();
        if let Value::Object(m) = &mut v {
            let Some(Value::Object(metrics)) = m.get_mut("metrics") else {
                panic!("metrics object");
            };
            metrics.remove("p99_ms");
        }
        let err = BenchSnapshot::from_json(&v.to_json()).unwrap_err();
        assert!(err.contains("p99_ms"), "err: {err}");
        assert!(BenchSnapshot::from_json("{").is_err());
        assert!(BenchSnapshot::from_json("{}").is_err());
    }

    #[test]
    fn self_compare_is_clean() {
        let snap = sample();
        let diffs = compare_snapshots(&snap, &snap, 0.0).unwrap();
        assert_eq!(diffs.len(), COMPARED_METRICS.len());
        assert!(diffs.iter().all(|d| !d.regressed), "{diffs:?}");
        assert!(diffs.iter().all(|d| d.worsening.abs() < 1e-12));
    }

    #[test]
    fn perturbed_latency_regresses_and_improvement_does_not() {
        let base = sample();
        let mut worse = base.clone();
        worse.metrics.p95_ms *= 2.0; // 100% worse
        let diffs = compare_snapshots(&base, &worse, 0.25).unwrap();
        let p95 = diffs.iter().find(|d| d.name == "p95_ms").unwrap();
        assert!(p95.regressed);
        assert!((p95.worsening - 1.0).abs() < 1e-9);
        // Same perturbation within tolerance passes.
        assert!(!compare_snapshots(&base, &worse, 1.5)
            .unwrap()
            .iter()
            .any(|d| d.regressed));
        // An improvement never regresses.
        let mut better = base.clone();
        better.metrics.p95_ms /= 2.0;
        better.metrics.throughput_rps *= 2.0;
        assert!(!compare_snapshots(&base, &better, 0.0)
            .unwrap()
            .iter()
            .any(|d| d.regressed));
    }

    #[test]
    fn throughput_direction_is_inverted() {
        let base = sample();
        let mut slower = base.clone();
        slower.metrics.throughput_rps /= 3.0;
        let diffs = compare_snapshots(&base, &slower, 0.25).unwrap();
        let tp = diffs.iter().find(|d| d.name == "throughput_rps").unwrap();
        assert!(tp.regressed, "{tp:?}");
        assert!((tp.worsening - 2.0).abs() < 1e-9, "{tp:?}");
    }

    #[test]
    fn zero_baseline_metrics_do_not_explode() {
        let mut base = sample();
        base.metrics.allocs_per_request = 0.0; // baseline ran without CountingAlloc
        let mut cur = base.clone();
        cur.metrics.allocs_per_request = 1e6;
        let diffs = compare_snapshots(&base, &cur, 0.25).unwrap();
        let a = diffs
            .iter()
            .find(|d| d.name == "allocs_per_request")
            .unwrap();
        assert!(!a.regressed);
        assert_eq!(a.worsening, 0.0);
    }

    #[test]
    fn schema_version_mismatch_is_an_error() {
        let base = sample();
        let mut cur = base.clone();
        cur.schema_version = BENCH_SCHEMA_VERSION + 1;
        assert!(compare_snapshots(&base, &cur, 0.25).is_err());
    }

    #[test]
    fn unknown_schema_versions_are_rejected_at_parse_time() {
        // A v1 snapshot (or any future version) must fail loudly instead
        // of being compared field-by-field with shifted meanings — even
        // when *both* files carry the same unknown version.
        let mut v = parse_json(&sample().to_json()).unwrap();
        if let Value::Object(m) = &mut v {
            m.insert("schema_version".into(), Value::Number(1.0));
        }
        let err = BenchSnapshot::from_json(&v.to_json()).unwrap_err();
        assert!(
            err.contains("unsupported bench snapshot schema v1"),
            "{err}"
        );
        let err = parse_any_snapshot(&v.to_json()).unwrap_err();
        assert!(err.contains("unknown snapshot schema"), "{err}");
        assert!(err.contains("v1"), "{err}");

        if let Value::Object(m) = &mut v {
            m.insert("schema_version".into(), Value::Number(99.0));
            m.insert("kind".into(), Value::String("mystery".into()));
        }
        let err = parse_any_snapshot(&v.to_json()).unwrap_err();
        assert!(
            err.contains("\"mystery\"") && err.contains("v99"),
            "error should name the offending kind/version: {err}"
        );
        // A missing schema_version is just as loud.
        assert!(parse_any_snapshot("{}")
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn parse_any_dispatches_on_kind() {
        let bench = sample();
        match parse_any_snapshot(&bench.to_json()).unwrap() {
            AnySnapshot::Bench(b) => assert_eq!(b, bench),
            other => panic!("expected bench snapshot, got {other:?}"),
        }
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_exact(&sorted, 0.50), 50.0);
        assert_eq!(percentile_exact(&sorted, 0.95), 95.0);
        assert_eq!(percentile_exact(&sorted, 0.99), 99.0);
        assert_eq!(percentile_exact(&sorted, 1.0), 100.0);
        assert_eq!(percentile_exact(&[7.5], 0.99), 7.5);
        assert_eq!(percentile_exact(&[], 0.5), 0.0);
    }

    #[test]
    fn git_identity_is_present() {
        // Built inside the repo, these are real; the fallback is the
        // literal "unknown" — either way, non-empty.
        assert!(!git_describe().is_empty());
        assert!(!git_commit().is_empty());
    }
}
