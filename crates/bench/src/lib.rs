#![warn(missing_docs)]

//! # lightweb-bench
//!
//! The reproduction harness: shared machinery for regenerating every table
//! and figure in the lightweb paper's evaluation (§5), used by the
//! `reproduce` binary (one subcommand per experiment) and the Criterion
//! benches under `benches/`.
//!
//! ## Scale
//!
//! The paper benchmarks a 1 GiB shard with a 2^22-slot domain on a
//! c5.large. This harness defaults to a smaller shard sized for a laptop /
//! CI box (64 MiB, domain 2^18) and extrapolates per-GiB — exactly the
//! extrapolation §5.2 itself performs from 1 GiB to 305 GiB. Set
//! `LIGHTWEB_SHARD_MIB` (e.g. to 1024) to run at paper scale.

use lightweb_dpf::DpfParams;
use lightweb_pir::PirServer;
use std::time::{Duration, Instant};

pub mod load;
pub mod perf;

/// A benchmark shard: a PIR server at ~25% slot-domain load, the paper's
/// operating point (2^20 pairs in a 2^22 domain).
pub struct BenchShard {
    /// The PIR server.
    pub server: PirServer,
    /// DPF parameters in use.
    pub params: DpfParams,
    /// Record (bucket) size in bytes.
    pub record_len: usize,
    /// Stored bytes.
    pub stored_bytes: usize,
}

/// Default shard size in MiB when `LIGHTWEB_SHARD_MIB` is unset.
pub const DEFAULT_SHARD_MIB: usize = 64;

/// Read the shard size from the environment (MiB).
pub fn shard_mib_from_env() -> usize {
    std::env::var("LIGHTWEB_SHARD_MIB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SHARD_MIB)
}

/// Build a shard holding `mib` MiB of `record_len`-byte records, with the
/// slot domain sized 4× the record count (the paper's ≤1/4 load factor).
pub fn build_shard(mib: usize, record_len: usize) -> BenchShard {
    let n_records = (mib * 1024 * 1024 / record_len).max(1);
    // domain = 4 × records, rounded up to a power of two, min 2^10.
    let domain_bits = (64 - (n_records as u64 * 4 - 1).leading_zeros()).max(10);
    let params = DpfParams::with_default_termination(domain_bits).expect("valid domain");

    // Spread records over slots with a multiplicative hash; collisions are
    // skipped (the real system renames; the skip rate at 25% load matches
    // the paper's collision analysis).
    let mut entries = Vec::with_capacity(n_records);
    let mut seen = std::collections::HashSet::with_capacity(n_records);
    let mut i = 0u64;
    while entries.len() < n_records {
        let slot = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % params.domain_size();
        i += 1;
        if !seen.insert(slot) {
            continue;
        }
        let mut rec = vec![0u8; record_len];
        rec[..8].copy_from_slice(&i.to_le_bytes());
        entries.push((slot, rec));
    }
    let server = PirServer::from_entries(params, record_len, entries).expect("valid entries");
    let stored_bytes = server.stored_bytes();
    BenchShard {
        server,
        params,
        record_len,
        stored_bytes,
    }
}

/// Time one closure invocation.
pub fn time_once<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Time `iters` invocations and return the mean duration.
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

/// Render an aligned text table (markdown-flavoured) for experiment
/// reports.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], widths: &[usize], out: &mut String| {
        out.push('|');
        for (c, w) in cells.iter().zip(widths) {
            out.push(' ');
            out.push_str(c);
            out.push_str(&" ".repeat(w - c.len() + 1));
            out.push('|');
        }
        out.push('\n');
    };
    line(
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
        &widths,
        &mut out,
    );
    out.push('|');
    for w in &widths {
        out.push_str(&"-".repeat(w + 2));
        out.push('|');
    }
    out.push('\n');
    for row in rows {
        line(row, &widths, &mut out);
    }
    out
}

/// Format a duration as milliseconds with 2 decimals.
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightweb_pir::TwoServerClient;

    #[test]
    fn shard_builder_hits_requested_size() {
        let shard = build_shard(1, 1024); // 1 MiB
        assert_eq!(shard.server.len(), 1024);
        assert_eq!(shard.stored_bytes, 1024 * 1024);
        // Load factor ~25%.
        let load = shard.server.len() as f64 / shard.params.domain_size() as f64;
        assert!(load <= 0.26, "load {load}");
    }

    #[test]
    fn shard_is_queryable() {
        let shard = build_shard(1, 256);
        let client = TwoServerClient::new(shard.params, shard.record_len);
        let q = client.query_slot(0);
        let a = shard.server.answer(&q.key0).unwrap();
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn table_renderer_aligns() {
        let t = render_table(
            &["Dataset", "vCPU sec"],
            &[
                vec!["C4".into(), "204".into()],
                vec!["Wikipedia".into(), "10".into()],
            ],
        );
        assert!(t.contains("| Dataset"));
        assert!(t.lines().count() == 4);
        let lens: std::collections::HashSet<usize> = t.lines().map(|l| l.len()).collect();
        assert_eq!(lens.len(), 1, "misaligned table:\n{t}");
    }

    #[test]
    fn env_override_parses() {
        // Do not mutate the environment (tests run in-process); just check
        // the default path.
        assert!(shard_mib_from_env() >= 1);
    }

    #[test]
    fn timers_return_plausible_values() {
        let (_, d) = time_once(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(d >= Duration::from_millis(4));
        let mean = time_mean(3, || std::thread::sleep(Duration::from_millis(2)));
        assert!(mean >= Duration::from_millis(1));
    }
}
