//! `lightweb-load`: the open-loop load harness.
//!
//! The closed-loop bench (`reproduce bench`) measures *unloaded* cost:
//! a handful of clients, each waiting for its previous answer before
//! sending the next request, can never expose queueing collapse. This
//! module drives a fleet of simulated clients over real TCP at
//! **configured arrival rates** — Poisson or paced-browser schedules
//! from [`lightweb_workload::openloop`] and [`lightweb_browser::Pacer`]
//! — and measures each request's latency from its *intended* start
//! time, so time the server spends drowning is charged to the requests
//! that queued behind it (the coordinated-omission correction).
//!
//! [`run_sweep`] walks a list of arrival rates and produces one
//! [`LoadPoint`] per rate: offered vs achieved throughput, exact
//! latency percentiles, and error/timeout counts. [`detect_knee`] finds
//! the saturation knee in the resulting curve, and [`LoadSnapshot`]
//! serializes the whole sweep as a schema-versioned
//! `BENCH_load_<engine>.json` that `bench-compare` diffs point by
//! point.
//!
//! While a sweep is live, the harness exports saturation telemetry
//! through the global registry (and therefore the `/metrics` scrape
//! endpoint): `load.inflight.requests` and `load.connections.open`
//! gauges, `load.offered.rps` vs `load.achieved.rps`, per-second
//! `load.errors.per_second` / `load.timeouts.per_second` gauges, and
//! the `load.request.ns` / `load.sched.lag.ns` log₂ histograms. Server-
//! side queue waits ride the existing trace phases
//! (`zltp.server.batch.wait`).

use crate::perf::{git_commit, git_describe, percentile_exact};
use lightweb_browser::Pacer;
use lightweb_core::{IoModel, TwoServerZltp, ZltpError};
use lightweb_universe::{parse_json, Value};
use lightweb_workload::openloop::{ArrivalProcess, OpenLoopPlan, PageSource, PlannedView};
use lightweb_workload::Zipf;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version stamp of the load snapshot schema. Bump when a field is
/// added, removed, or changes meaning; parsers refuse unknown versions.
///
/// v2: added `io_model` — which server io model (`threads` or
/// `reactor`) the sweep ran against. Curves from different io models
/// are not comparable and refuse to diff.
pub const LOAD_SCHEMA_VERSION: u64 = 2;

/// The `kind` discriminator written into load snapshots (scalar bench
/// snapshots carry [`crate::perf::BENCH_SNAPSHOT_KIND`]).
pub const LOAD_SNAPSHOT_KIND: &str = "load_curve";

/// How the fleet spreads its arrivals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScheduleKind {
    /// Independent Poisson arrivals per connection (superposed, the
    /// aggregate is Poisson at the configured rate).
    Poisson,
    /// Each connection is a constant-rate paced browser
    /// ([`lightweb_browser::Pacer`]), phases staggered so the fleet
    /// aggregates to a smooth fixed rate.
    Paced,
}

impl ScheduleKind {
    /// Stable name used in snapshots and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            ScheduleKind::Poisson => "poisson",
            ScheduleKind::Paced => "paced",
        }
    }

    /// Parse a stable name back.
    pub fn from_name(s: &str) -> Option<ScheduleKind> {
        match s {
            "poisson" => Some(ScheduleKind::Poisson),
            "paced" => Some(ScheduleKind::Paced),
            _ => None,
        }
    }
}

/// Configuration of one open-loop sweep against a two-server pair.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Offered GET rates to walk, requests/second, ascending.
    pub rates_rps: Vec<f64>,
    /// Seconds each rate step offers load for.
    pub duration_s: f64,
    /// Simulated clients (each one ZLTP session per server).
    pub connections: usize,
    /// Arrival schedule shape.
    pub schedule: ScheduleKind,
    /// Published pages the Zipf page mix draws from (keys
    /// `load/page-<rank>`).
    pub pages: usize,
    /// Data GETs per page view (the paper's §4 model uses 5).
    pub gets_per_page: usize,
    /// Zipf exponent for page popularity.
    pub zipf_exponent: f64,
    /// Socket read timeout; an elapsed timeout counts the request as a
    /// timeout and retires that connection.
    pub io_timeout: Duration,
    /// Seed for arrival times and page choice.
    pub seed: u64,
    /// Which server io model the sweep targets (stamped into the
    /// snapshot; the harness configures the servers it spawns with it).
    pub io_model: IoModel,
}

impl LoadConfig {
    /// CI-sized sweep: a short three-point walk with a small fleet.
    pub fn quick() -> LoadConfig {
        LoadConfig {
            rates_rps: vec![50.0, 100.0, 200.0],
            duration_s: 1.5,
            connections: 16,
            schedule: ScheduleKind::Poisson,
            pages: 64,
            gets_per_page: 5,
            zipf_exponent: 1.0,
            io_timeout: Duration::from_secs(5),
            seed: 0x10ad,
            io_model: IoModel::from_env(),
        }
    }

    /// Full sweep: walks past the expected knee with a big fleet.
    pub fn full() -> LoadConfig {
        LoadConfig {
            rates_rps: vec![100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0],
            duration_s: 5.0,
            connections: 1024,
            schedule: ScheduleKind::Poisson,
            pages: 64,
            gets_per_page: 5,
            zipf_exponent: 1.0,
            io_timeout: Duration::from_secs(10),
            seed: 0x10ad,
            io_model: IoModel::from_env(),
        }
    }
}

/// One point of a throughput-vs-latency curve: everything measured at a
/// single offered rate.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadPoint {
    /// Nominal offered GET rate (requests/second) — the sweep grid key.
    pub offered_rps: f64,
    /// GETs the schedule intended to issue.
    pub planned_requests: u64,
    /// The rate the schedule *realized* (planned requests over the step
    /// duration) — differs from `offered_rps` by Poisson sampling noise
    /// at short durations, and is what achieved throughput is judged
    /// against.
    pub planned_rps: f64,
    /// GETs answered successfully.
    pub requests: u64,
    /// Failed GETs (protocol or transport errors, including the rest of
    /// a retired connection's schedule).
    pub errors: u64,
    /// GETs abandoned after the socket read timeout.
    pub timeouts: u64,
    /// Completed GETs per wall second over the step.
    pub achieved_rps: f64,
    /// Median latency from intended start, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Worst observed latency, milliseconds.
    pub max_ms: f64,
    /// 99th percentile of client-side scheduling lag (intended start to
    /// actual send), milliseconds — how far the generator itself fell
    /// behind the open-loop schedule.
    pub sched_lag_p99_ms: f64,
}

/// Per-point curve metrics `bench-compare` diffs, with direction
/// (`true` = lower is better).
pub const LOAD_COMPARED_METRICS: &[(&str, bool)] = &[
    ("achieved_rps", false),
    ("p50_ms", true),
    ("p95_ms", true),
    ("p99_ms", true),
    ("errors", true),
    ("timeouts", true),
];

impl LoadPoint {
    /// Look up a compared metric by its [`LOAD_COMPARED_METRICS`] name.
    pub fn field(&self, name: &str) -> Option<f64> {
        Some(match name {
            "offered_rps" => self.offered_rps,
            "achieved_rps" => self.achieved_rps,
            "planned_requests" => self.planned_requests as f64,
            "planned_rps" => self.planned_rps,
            "requests" => self.requests as f64,
            "errors" => self.errors as f64,
            "timeouts" => self.timeouts as f64,
            "p50_ms" => self.p50_ms,
            "p95_ms" => self.p95_ms,
            "p99_ms" => self.p99_ms,
            "mean_ms" => self.mean_ms,
            "max_ms" => self.max_ms,
            "sched_lag_p99_ms" => self.sched_lag_p99_ms,
            _ => return None,
        })
    }

    fn to_value(&self) -> Value {
        Value::object([
            ("offered_rps", self.offered_rps.into()),
            ("planned_requests", (self.planned_requests as i64).into()),
            ("planned_rps", self.planned_rps.into()),
            ("requests", (self.requests as i64).into()),
            ("errors", (self.errors as i64).into()),
            ("timeouts", (self.timeouts as i64).into()),
            ("achieved_rps", self.achieved_rps.into()),
            ("p50_ms", self.p50_ms.into()),
            ("p95_ms", self.p95_ms.into()),
            ("p99_ms", self.p99_ms.into()),
            ("mean_ms", self.mean_ms.into()),
            ("max_ms", self.max_ms.into()),
            ("sched_lag_p99_ms", self.sched_lag_p99_ms.into()),
        ])
    }

    fn from_value(v: &Value) -> Result<LoadPoint, String> {
        let num = |name: &str| -> Result<f64, String> {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric point field {name:?}"))
        };
        Ok(LoadPoint {
            offered_rps: num("offered_rps")?,
            planned_requests: num("planned_requests")? as u64,
            planned_rps: num("planned_rps")?,
            requests: num("requests")? as u64,
            errors: num("errors")? as u64,
            timeouts: num("timeouts")? as u64,
            achieved_rps: num("achieved_rps")?,
            p50_ms: num("p50_ms")?,
            p95_ms: num("p95_ms")?,
            p99_ms: num("p99_ms")?,
            mean_ms: num("mean_ms")?,
            max_ms: num("max_ms")?,
            sched_lag_p99_ms: num("sched_lag_p99_ms")?,
        })
    }
}

/// Detect the saturation knee of a rate-sorted curve: the lowest
/// offered rate at which the system stops keeping up — achieved
/// throughput falls >10% short of the rate the schedule actually
/// realized (nominal rate capped by `planned_rps`, so Poisson sampling
/// noise at short durations cannot fake a shortfall), p99 exceeds 5×
/// the p99 at the lowest swept rate, or ≥5% of planned requests
/// error/time out. Returns `0.0` when no swept point saturates.
pub fn detect_knee(points: &[LoadPoint]) -> f64 {
    let Some(first) = points.first() else {
        return 0.0;
    };
    let base_p99 = first.p99_ms;
    for p in points {
        let realized = if p.planned_rps > 0.0 {
            p.offered_rps.min(p.planned_rps)
        } else {
            p.offered_rps
        };
        let shortfall = p.achieved_rps < 0.9 * realized;
        let blowup = base_p99 > 0.0 && p.p99_ms > 5.0 * base_p99;
        let failing = p.planned_requests > 0
            && (p.errors + p.timeouts) as f64 >= 0.05 * p.planned_requests as f64;
        if shortfall || blowup || failing {
            return p.offered_rps;
        }
    }
    0.0
}

/// A schema-versioned rate-sweep snapshot (`BENCH_load_<engine>.json`).
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSnapshot {
    /// Schema version ([`LOAD_SCHEMA_VERSION`] at write time).
    pub schema_version: u64,
    /// Experiment name (`load_two_server`).
    pub experiment: String,
    /// Engine name as reported by the server.
    pub engine: String,
    /// `git describe` of the producing tree.
    pub git_describe: String,
    /// Commit hash of the producing tree.
    pub git_commit: String,
    /// Arrival schedule shape ([`ScheduleKind::name`]).
    pub schedule: String,
    /// Server io model the sweep ran against ([`IoModel::name`]).
    pub io_model: String,
    /// Fleet size the sweep ran with.
    pub connections: u64,
    /// Seconds each rate step offered load for.
    pub duration_seconds: f64,
    /// GETs per page view.
    pub gets_per_page: u64,
    /// Detected saturation knee, requests/second (`0` = none within the
    /// swept range).
    pub knee_rps: f64,
    /// The curve, ascending by offered rate.
    pub points: Vec<LoadPoint>,
}

impl LoadSnapshot {
    /// Assemble a snapshot from sweep output (computes the knee; sorts
    /// the points by offered rate).
    pub fn from_sweep(
        experiment: &str,
        engine: &str,
        cfg: &LoadConfig,
        mut points: Vec<LoadPoint>,
    ) -> LoadSnapshot {
        points.sort_by(|a, b| a.offered_rps.total_cmp(&b.offered_rps));
        LoadSnapshot {
            schema_version: LOAD_SCHEMA_VERSION,
            experiment: experiment.to_string(),
            engine: engine.to_string(),
            git_describe: git_describe().to_string(),
            git_commit: git_commit().to_string(),
            schedule: cfg.schedule.name().to_string(),
            io_model: cfg.io_model.name().to_string(),
            connections: cfg.connections as u64,
            duration_seconds: cfg.duration_s,
            gets_per_page: cfg.gets_per_page as u64,
            knee_rps: detect_knee(&points),
            points,
        }
    }

    /// Serialize to compact JSON (object keys sorted, deterministic).
    pub fn to_json(&self) -> String {
        Value::object([
            ("schema_version", (self.schema_version as i64).into()),
            ("kind", LOAD_SNAPSHOT_KIND.into()),
            ("experiment", self.experiment.as_str().into()),
            ("engine", self.engine.as_str().into()),
            ("git_describe", self.git_describe.as_str().into()),
            ("git_commit", self.git_commit.as_str().into()),
            ("schedule", self.schedule.as_str().into()),
            ("io_model", self.io_model.as_str().into()),
            ("connections", (self.connections as i64).into()),
            ("duration_seconds", self.duration_seconds.into()),
            ("gets_per_page", (self.gets_per_page as i64).into()),
            ("knee_rps", self.knee_rps.into()),
            (
                "points",
                Value::Array(self.points.iter().map(LoadPoint::to_value).collect()),
            ),
        ])
        .to_json()
    }

    /// Parse a load snapshot. Strict: unknown schema versions or kinds
    /// fail loudly instead of misdiffing.
    pub fn from_json(text: &str) -> Result<LoadSnapshot, String> {
        let v = parse_json(text).map_err(|e| e.to_string())?;
        let num = |name: &str| -> Result<f64, String> {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field {name:?}"))
        };
        let str_field = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {name:?}"))
        };
        let version = num("schema_version")? as u64;
        if version != LOAD_SCHEMA_VERSION {
            return Err(format!(
                "unsupported load snapshot schema v{version} (this build reads \
                 v{LOAD_SCHEMA_VERSION}); regenerate the snapshot with a matching harness"
            ));
        }
        let kind = str_field("kind")?;
        if kind != LOAD_SNAPSHOT_KIND {
            return Err(format!(
                "snapshot kind {kind:?} is not {LOAD_SNAPSHOT_KIND:?}"
            ));
        }
        let points = v
            .get("points")
            .and_then(Value::as_array)
            .ok_or_else(|| "missing array field \"points\"".to_string())?
            .iter()
            .map(LoadPoint::from_value)
            .collect::<Result<Vec<_>, String>>()?;
        Ok(LoadSnapshot {
            schema_version: version,
            experiment: str_field("experiment")?,
            engine: str_field("engine")?,
            git_describe: str_field("git_describe")?,
            git_commit: str_field("git_commit")?,
            schedule: str_field("schedule")?,
            io_model: str_field("io_model")?,
            connections: num("connections")? as u64,
            duration_seconds: num("duration_seconds")?,
            gets_per_page: num("gets_per_page")? as u64,
            knee_rps: num("knee_rps")?,
            points,
        })
    }
}

/// One compared curve value from [`compare_load_snapshots`]. Like
/// [`crate::perf::MetricDiff`] but labelled per point
/// (`p99_ms@200rps`).
#[derive(Clone, Debug, PartialEq)]
pub struct CurveDiff {
    /// `metric@raterps` label.
    pub label: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change in the *bad* direction.
    pub worsening: f64,
    /// Whether this value regressed beyond tolerance.
    pub regressed: bool,
}

fn diff_one(label: String, b: f64, c: f64, lower_is_better: bool, tolerance: f64) -> CurveDiff {
    let worsening = if b <= 0.0 {
        0.0 // no meaningful baseline to regress from
    } else if lower_is_better {
        c / b - 1.0
    } else {
        b / c.max(f64::MIN_POSITIVE) - 1.0
    };
    CurveDiff {
        label,
        baseline: b,
        current: c,
        worsening,
        regressed: worsening > tolerance,
    }
}

/// Diff two load curves point by point. Points pair by offered rate;
/// differing rate grids (or schedules, fleets, versions) are an error —
/// such curves are not comparable, and pretending otherwise is the
/// misdiff this schema exists to prevent.
pub fn compare_load_snapshots(
    baseline: &LoadSnapshot,
    current: &LoadSnapshot,
    tolerance: f64,
) -> Result<Vec<CurveDiff>, String> {
    if baseline.schema_version != current.schema_version {
        return Err(format!(
            "schema version mismatch: baseline v{} vs current v{}",
            baseline.schema_version, current.schema_version
        ));
    }
    if baseline.schedule != current.schedule {
        return Err(format!(
            "schedule mismatch: {} vs {}",
            baseline.schedule, current.schedule
        ));
    }
    if baseline.io_model != current.io_model {
        return Err(format!(
            "io model mismatch: {} vs {}",
            baseline.io_model, current.io_model
        ));
    }
    if baseline.points.len() != current.points.len() {
        return Err(format!(
            "rate grid mismatch: {} vs {} points",
            baseline.points.len(),
            current.points.len()
        ));
    }
    let mut out = Vec::new();
    for (b, c) in baseline.points.iter().zip(&current.points) {
        if (b.offered_rps - c.offered_rps).abs() > 1e-9 * b.offered_rps.max(1.0) {
            return Err(format!(
                "rate grid mismatch: baseline swept {} rps where current swept {} rps",
                b.offered_rps, c.offered_rps
            ));
        }
        for &(name, lower_is_better) in LOAD_COMPARED_METRICS {
            let label = format!("{name}@{}rps", b.offered_rps);
            let bv = b.field(name).expect("known metric");
            let cv = c.field(name).expect("known metric");
            out.push(diff_one(label, bv, cv, lower_is_better, tolerance));
        }
    }
    // The knee moving *down* is the canonical capacity regression. A
    // knee of 0 means "no saturation in range" — nothing to regress
    // from (or to), so it only compares when both runs found one.
    if baseline.knee_rps > 0.0 && current.knee_rps > 0.0 {
        out.push(diff_one(
            "knee_rps".to_string(),
            baseline.knee_rps,
            current.knee_rps,
            false,
            tolerance,
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// The fleet driver.
// ---------------------------------------------------------------------

/// Blob key for a page rank, matching what `reproduce load` publishes.
pub fn page_key(rank: usize) -> String {
    format!("load/page-{rank}")
}

/// What one worker brought home from a rate step.
#[derive(Default)]
struct WorkerOut {
    latencies_ms: Vec<f64>,
    lag_ms: Vec<f64>,
    ok: u64,
    errors: u64,
    timeouts: u64,
}

fn is_timeout(e: &ZltpError) -> bool {
    matches!(
        e,
        ZltpError::Io(io) if matches!(
            io.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        )
    )
}

/// Per-connection intended schedule for one rate step.
fn connection_plan(cfg: &LoadConfig, rate_rps: f64, step: usize, conn: usize) -> Vec<PlannedView> {
    let view_rate = rate_rps / cfg.gets_per_page as f64;
    let zipf = Zipf::new(cfg.pages, cfg.zipf_exponent);
    let seed = cfg
        .seed
        .wrapping_add((step as u64) << 32)
        .wrapping_add(conn as u64);
    match cfg.schedule {
        ScheduleKind::Poisson => {
            // Independent thinned streams: superposing `connections`
            // Poisson processes at rate/n yields Poisson at rate.
            let process = ArrivalProcess::Poisson {
                rate_per_s: view_rate / cfg.connections as f64,
            };
            OpenLoopPlan::generate(
                process,
                PageSource::Zipf(&zipf),
                cfg.duration_s,
                cfg.gets_per_page,
                seed,
            )
            .views
        }
        ScheduleKind::Paced => {
            // Each client is a constant-rate paced browser; stagger the
            // phases so the fleet offers a smooth aggregate rate.
            let interval = cfg.connections as f64 / view_rate;
            let phase = conn as f64 * interval / cfg.connections as f64;
            let times = Pacer::new(interval).slot_times(phase, cfg.duration_s);
            let mut rng = StdRng::seed_from_u64(seed);
            times
                .into_iter()
                .map(|t| PlannedView {
                    intended_s: t,
                    page_rank: zipf.sample(&mut rng),
                })
                .collect()
        }
    }
}

/// Execute one connection's schedule against the pair. Latency for
/// every GET of a view is measured from the view's *intended* start —
/// a request that queued behind a slow server is charged its full wait.
#[allow(clippy::too_many_arguments)]
fn run_connection(
    addr0: SocketAddr,
    addr1: SocketAddr,
    views: Vec<PlannedView>,
    gets_per_page: usize,
    blob_len: usize,
    io_timeout: Duration,
    start: Instant,
) -> WorkerOut {
    let registry = lightweb_telemetry::registry();
    let inflight = registry.gauge("load.inflight.requests");
    let open = registry.gauge("load.connections.open");
    let ok_counter = registry.counter("load.requests");
    let err_counter = registry.counter("load.errors");
    let timeout_counter = registry.counter("load.timeouts");
    let lat_hist = registry.histogram("load.request.ns");
    let lag_hist = registry.histogram("load.sched.lag.ns");

    let mut out = WorkerOut::default();
    let planned: u64 = (views.len() * gets_per_page) as u64;
    let connect = || -> Result<TwoServerZltp<TcpStream>, ZltpError> {
        let s0 = TcpStream::connect(addr0).map_err(ZltpError::Io)?;
        let s1 = TcpStream::connect(addr1).map_err(ZltpError::Io)?;
        for s in [&s0, &s1] {
            // Queries are small; Nagle would serialize them behind ACKs.
            s.set_nodelay(true).map_err(ZltpError::Io)?;
            s.set_read_timeout(Some(io_timeout))
                .map_err(ZltpError::Io)?;
        }
        TwoServerZltp::connect(s0, s1)
    };
    let mut client = match connect() {
        Ok(c) => c,
        Err(e) => {
            // A fleet that cannot even connect fails the whole schedule.
            let n = if is_timeout(&e) {
                timeout_counter.add(planned);
                &mut out.timeouts
            } else {
                err_counter.add(planned);
                &mut out.errors
            };
            *n = planned;
            return out;
        }
    };
    open.add(1);
    let mut issued: u64 = 0;
    'schedule: for view in &views {
        let intended = start + Duration::from_secs_f64(view.intended_s);
        for _ in 0..gets_per_page {
            let wait = intended.saturating_duration_since(Instant::now());
            if !wait.is_zero() {
                std::thread::sleep(wait);
            }
            let lag = Instant::now().saturating_duration_since(intended);
            lag_hist.record(lag.as_nanos() as u64);
            out.lag_ms.push(lag.as_secs_f64() * 1e3);
            inflight.add(1);
            let res = client.private_get(&page_key(view.page_rank));
            inflight.add(-1);
            let latency = intended.elapsed();
            issued += 1;
            match res {
                Ok(blob) => {
                    debug_assert_eq!(blob.len(), blob_len);
                    out.ok += 1;
                    ok_counter.inc();
                    lat_hist.record(latency.as_nanos() as u64);
                    out.latencies_ms.push(latency.as_secs_f64() * 1e3);
                }
                Err(e) => {
                    // The session is unusable after a transport error;
                    // the rest of this connection's schedule is lost
                    // offered load and must be accounted, not dropped.
                    let rest = planned - issued;
                    if is_timeout(&e) {
                        out.timeouts += 1 + rest;
                        timeout_counter.add(1 + rest);
                    } else {
                        out.errors += 1 + rest;
                        err_counter.add(1 + rest);
                    }
                    break 'schedule;
                }
            }
        }
    }
    let _ = client.close();
    open.add(-1);
    out
}

/// Run one rate step: spawn the fleet, keep the live saturation gauges
/// fresh while it runs, and fold the workers' observations into a
/// [`LoadPoint`].
fn run_step(
    addr0: SocketAddr,
    addr1: SocketAddr,
    cfg: &LoadConfig,
    rate_rps: f64,
    step: usize,
    blob_len: usize,
) -> LoadPoint {
    let registry = lightweb_telemetry::registry();
    registry
        .gauge("load.offered.rps")
        .set(rate_rps.round() as i64);

    // Connect setup happens inside the workers, so give the fleet a
    // grace window before the schedule epoch.
    let slack = Duration::from_millis(150) + Duration::from_micros(500) * cfg.connections as u32;
    let start = Instant::now() + slack;

    let handles: Vec<_> = (0..cfg.connections)
        .map(|conn| {
            let views = connection_plan(cfg, rate_rps, step, conn);
            let io_timeout = cfg.io_timeout;
            let gets_per_page = cfg.gets_per_page;
            std::thread::Builder::new()
                .name(format!("load-conn-{conn}"))
                .spawn(move || {
                    run_connection(
                        addr0,
                        addr1,
                        views,
                        gets_per_page,
                        blob_len,
                        io_timeout,
                        start,
                    )
                })
                .expect("spawn load worker")
        })
        .collect();

    // Live achieved-rate / error-rate gauges: a sidecar samples the
    // counters while the fleet runs, so `/metrics` shows saturation as
    // it happens.
    let done = Arc::new(AtomicBool::new(false));
    let monitor = {
        let done = done.clone();
        let ok = registry.counter("load.requests");
        let errs = registry.counter("load.errors");
        let tos = registry.counter("load.timeouts");
        let achieved = registry.gauge("load.achieved.rps");
        let err_rate = registry.gauge("load.errors.per_second");
        let to_rate = registry.gauge("load.timeouts.per_second");
        std::thread::spawn(move || {
            let mut prev = (ok.get(), errs.get(), tos.get(), Instant::now());
            while !done.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(250));
                let now = Instant::now();
                let dt = now.duration_since(prev.3).as_secs_f64().max(1e-3);
                let (o, e, t) = (ok.get(), errs.get(), tos.get());
                achieved.set(((o - prev.0) as f64 / dt).round() as i64);
                err_rate.set(((e - prev.1) as f64 / dt).round() as i64);
                to_rate.set(((t - prev.2) as f64 / dt).round() as i64);
                prev = (o, e, t, now);
            }
        })
    };

    let outs: Vec<WorkerOut> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let elapsed = Instant::now()
        .saturating_duration_since(start)
        .as_secs_f64();
    done.store(true, Ordering::Relaxed);
    let _ = monitor.join();

    let mut latencies: Vec<f64> = outs.iter().flat_map(|o| o.latencies_ms.clone()).collect();
    latencies.sort_by(f64::total_cmp);
    let mut lags: Vec<f64> = outs.iter().flat_map(|o| o.lag_ms.clone()).collect();
    lags.sort_by(f64::total_cmp);
    let ok: u64 = outs.iter().map(|o| o.ok).sum();
    let errors: u64 = outs.iter().map(|o| o.errors).sum();
    let timeouts: u64 = outs.iter().map(|o| o.timeouts).sum();
    let mean_ms = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<f64>() / latencies.len() as f64
    };
    let planned = ok + errors + timeouts;
    LoadPoint {
        offered_rps: rate_rps,
        planned_requests: planned,
        planned_rps: planned as f64 / cfg.duration_s,
        requests: ok,
        errors,
        timeouts,
        achieved_rps: ok as f64 / elapsed.max(cfg.duration_s).max(1e-3),
        p50_ms: percentile_exact(&latencies, 0.50),
        p95_ms: percentile_exact(&latencies, 0.95),
        p99_ms: percentile_exact(&latencies, 0.99),
        mean_ms,
        max_ms: latencies.last().copied().unwrap_or(0.0),
        sched_lag_p99_ms: percentile_exact(&lags, 0.99),
    }
}

/// Walk the configured arrival rates against a live two-server pair
/// (`addr0`/`addr1` accept ZLTP over TCP and must already have the
/// [`page_key`] content published at `blob_len` bytes per blob).
/// Returns one [`LoadPoint`] per rate, in sweep order.
pub fn run_sweep(
    addr0: SocketAddr,
    addr1: SocketAddr,
    cfg: &LoadConfig,
    blob_len: usize,
) -> Result<Vec<LoadPoint>, String> {
    if cfg.rates_rps.is_empty() {
        return Err("sweep needs at least one rate".to_string());
    }
    if cfg.connections == 0 || cfg.gets_per_page == 0 || cfg.pages == 0 {
        return Err("connections, gets_per_page, and pages must be positive".to_string());
    }
    if !cfg.duration_s.is_finite() || cfg.duration_s <= 0.0 {
        return Err("duration must be positive".to_string());
    }
    Ok(cfg
        .rates_rps
        .iter()
        .enumerate()
        .map(|(step, &rate)| run_step(addr0, addr1, cfg, rate, step, blob_len))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(rate: f64) -> LoadPoint {
        LoadPoint {
            offered_rps: rate,
            planned_requests: (rate * 2.0) as u64,
            planned_rps: rate,
            requests: (rate * 2.0) as u64,
            errors: 0,
            timeouts: 0,
            achieved_rps: rate,
            p50_ms: 4.0,
            p95_ms: 9.0,
            p99_ms: 12.0,
            mean_ms: 5.0,
            max_ms: 20.0,
            sched_lag_p99_ms: 0.2,
        }
    }

    fn sample() -> LoadSnapshot {
        // Pin the io model: the fixture must not drift with the
        // LIGHTWEB_IO_MODEL the test process happens to run under.
        let cfg = LoadConfig {
            io_model: IoModel::Threads,
            ..LoadConfig::quick()
        };
        LoadSnapshot::from_sweep(
            "load_two_server",
            "two_server_pir",
            &cfg,
            vec![point(50.0), point(100.0), point(200.0)],
        )
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let text = snap.to_json();
        assert!(text.contains("\"kind\":\"load_curve\""), "{text}");
        assert!(text.contains("\"schema_version\":2"), "{text}");
        assert!(text.contains("\"io_model\""), "{text}");
        assert_eq!(LoadSnapshot::from_json(&text).unwrap(), snap);
    }

    #[test]
    fn unknown_versions_and_kinds_fail_loudly() {
        let good = sample().to_json();
        let v99 = good.replace("\"schema_version\":2", "\"schema_version\":99");
        let err = LoadSnapshot::from_json(&v99).unwrap_err();
        assert!(
            err.contains("unsupported load snapshot schema v99"),
            "{err}"
        );
        let wrong_kind = good.replace("\"kind\":\"load_curve\"", "\"kind\":\"bench\"");
        assert!(LoadSnapshot::from_json(&wrong_kind).is_err());
        let truncated = good.replace("\"p99_ms\":12,", "");
        assert!(LoadSnapshot::from_json(&truncated)
            .unwrap_err()
            .contains("p99_ms"));
    }

    #[test]
    fn self_compare_is_clean_at_zero_tolerance() {
        let snap = sample();
        let diffs = compare_load_snapshots(&snap, &snap, 0.0).unwrap();
        assert_eq!(
            diffs.len(),
            snap.points.len() * LOAD_COMPARED_METRICS.len(),
            "healthy curve has no knee entry"
        );
        assert!(diffs.iter().all(|d| !d.regressed), "{diffs:?}");
    }

    #[test]
    fn per_point_regression_is_labelled_with_its_rate() {
        let base = sample();
        let mut cur = base.clone();
        cur.points[2].p99_ms *= 3.0;
        let diffs = compare_load_snapshots(&base, &cur, 0.25).unwrap();
        let bad: Vec<_> = diffs.iter().filter(|d| d.regressed).collect();
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert_eq!(bad[0].label, "p99_ms@200rps");
        assert!((bad[0].worsening - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mismatched_grids_and_schedules_refuse_to_diff() {
        let base = sample();
        let mut fewer = base.clone();
        fewer.points.pop();
        assert!(compare_load_snapshots(&base, &fewer, 0.0)
            .unwrap_err()
            .contains("rate grid"));
        let mut shifted = base.clone();
        shifted.points[0].offered_rps = 51.0;
        assert!(compare_load_snapshots(&base, &shifted, 0.0)
            .unwrap_err()
            .contains("rate grid"));
        let mut paced = base.clone();
        paced.schedule = "paced".into();
        assert!(compare_load_snapshots(&base, &paced, 0.0)
            .unwrap_err()
            .contains("schedule"));
        let mut other_io = base.clone();
        other_io.io_model = "reactor".into();
        assert!(compare_load_snapshots(&base, &other_io, 0.0)
            .unwrap_err()
            .contains("io model"));
    }

    #[test]
    fn knee_regression_is_compared_when_both_runs_saturate() {
        let mut base = sample();
        base.knee_rps = 200.0;
        let mut cur = base.clone();
        cur.knee_rps = 100.0; // capacity halved
        let diffs = compare_load_snapshots(&base, &cur, 0.25).unwrap();
        let knee = diffs.iter().find(|d| d.label == "knee_rps").unwrap();
        assert!(knee.regressed, "{knee:?}");
        assert!((knee.worsening - 1.0).abs() < 1e-9);
        // No knee in the current run = no saturation = nothing regressed.
        cur.knee_rps = 0.0;
        assert!(!compare_load_snapshots(&base, &cur, 0.25)
            .unwrap()
            .iter()
            .any(|d| d.label == "knee_rps"));
    }

    #[test]
    fn knee_detection_fires_on_shortfall_blowup_or_failures() {
        // Healthy curve: no knee.
        assert_eq!(detect_knee(&[point(50.0), point(100.0)]), 0.0);
        assert_eq!(detect_knee(&[]), 0.0);
        // Throughput shortfall.
        let mut p = point(200.0);
        p.achieved_rps = 150.0;
        assert_eq!(detect_knee(&[point(50.0), point(100.0), p]), 200.0);
        // p99 blowup relative to the lowest rate.
        let mut p = point(100.0);
        p.p99_ms = 120.0; // 10x the 12 ms base
        assert_eq!(detect_knee(&[point(50.0), p, point(200.0)]), 100.0);
        // Error budget blown.
        let mut p = point(400.0);
        p.errors = p.planned_requests / 10;
        assert_eq!(detect_knee(&[point(50.0), p]), 400.0);
    }

    #[test]
    fn schedule_kind_names_round_trip() {
        for k in [ScheduleKind::Poisson, ScheduleKind::Paced] {
            assert_eq!(ScheduleKind::from_name(k.name()), Some(k));
        }
        assert_eq!(ScheduleKind::from_name("bursty"), None);
    }

    #[test]
    fn connection_plans_are_deterministic_and_partition_the_rate() {
        let cfg = LoadConfig {
            connections: 4,
            duration_s: 2.0,
            ..LoadConfig::quick()
        };
        for schedule in [ScheduleKind::Poisson, ScheduleKind::Paced] {
            let cfg = LoadConfig {
                schedule,
                ..cfg.clone()
            };
            let total: usize = (0..cfg.connections)
                .map(|c| connection_plan(&cfg, 100.0, 0, c).len())
                .sum();
            // 100 GETs/s at 5 GETs/view over 2 s ≈ 40 views.
            assert!(
                (25..=55).contains(&total),
                "{schedule:?}: {total} views far from 40"
            );
            let again: usize = (0..cfg.connections)
                .map(|c| connection_plan(&cfg, 100.0, 0, c).len())
                .sum();
            assert_eq!(total, again, "{schedule:?} not deterministic");
        }
    }
}
