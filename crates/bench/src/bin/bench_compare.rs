//! `bench-compare`: diff two perf snapshots and gate on regression.
//!
//! ```text
//! bench-compare [--tolerance 0.25] <baseline> <current>
//! ```
//!
//! Each argument is either one `BENCH_*.json` file or a directory; with
//! directories, files sharing a name are paired (a baseline with no
//! current counterpart is reported and skipped — a missing experiment
//! is suspicious but not a perf regression). Both snapshot kinds are
//! understood: scalar `bench` snapshots from `reproduce bench` and
//! `load_curve` snapshots from `reproduce load` (diffed point by point
//! along the rate sweep). Snapshots with an unknown kind or schema
//! version are a hard error — diffing mismatched schemas silently is
//! how regressions hide. Exit status: `0` clean, `1` at least one
//! metric regressed beyond tolerance, `2` usage or schema error. This
//! is the binary the CI perf-baseline and load-smoke jobs run.

use lightweb_bench::load::{compare_load_snapshots, LoadSnapshot};
use lightweb_bench::perf::{compare_snapshots, parse_any_snapshot, AnySnapshot, BenchSnapshot};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench-compare [--tolerance FRACTION] <baseline.json|dir> <current.json|dir>");
    eprintln!("  exit 0: no regression   exit 1: regression   exit 2: bad input");
    ExitCode::from(2)
}

/// Resolve an argument to a sorted list of snapshot files.
fn snapshot_files(arg: &Path) -> Result<Vec<PathBuf>, String> {
    if arg.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(arg)
            .map_err(|e| format!("{}: {e}", arg.display()))?
            .filter_map(|ent| ent.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("{}: no BENCH_*.json files", arg.display()));
        }
        Ok(files)
    } else if arg.is_file() {
        Ok(vec![arg.to_path_buf()])
    } else {
        Err(format!("{}: not a file or directory", arg.display()))
    }
}

fn load(path: &Path) -> Result<AnySnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse_any_snapshot(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Compare one baseline/current pair of scalar bench snapshots; returns
/// whether anything regressed.
fn compare_bench_pair(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
    tolerance: f64,
) -> Result<bool, String> {
    if baseline.experiment != current.experiment {
        return Err(format!(
            "experiment mismatch: {} vs {}",
            baseline.experiment, current.experiment
        ));
    }
    println!(
        "== {} ({}): baseline {} vs current {}, tolerance {:.0}%",
        baseline.experiment,
        baseline.engine,
        baseline.git_describe,
        current.git_describe,
        tolerance * 100.0
    );
    if baseline.shard_mib != current.shard_mib {
        println!(
            "   note: shard scale differs ({} MiB vs {} MiB) — comparison is not apples-to-apples",
            baseline.shard_mib, current.shard_mib
        );
    }
    let diffs = compare_snapshots(baseline, current, tolerance)?;
    let mut regressed = false;
    for d in &diffs {
        let verdict = if d.regressed {
            regressed = true;
            "REGRESSED"
        } else if d.worsening > 0.0 {
            "worse (ok)"
        } else {
            "ok"
        };
        println!(
            "   {:<24} {:>14.4} -> {:>14.4}  {:+7.1}%  {}",
            d.name,
            d.baseline,
            d.current,
            d.worsening * 100.0,
            verdict
        );
    }
    Ok(regressed)
}

/// Compare one baseline/current pair of load-curve snapshots point by
/// point; returns whether anything regressed.
fn compare_load_pair(
    baseline: &LoadSnapshot,
    current: &LoadSnapshot,
    tolerance: f64,
) -> Result<bool, String> {
    if baseline.experiment != current.experiment {
        return Err(format!(
            "experiment mismatch: {} vs {}",
            baseline.experiment, current.experiment
        ));
    }
    println!(
        "== {} ({}, {} schedule, {} conns): baseline {} vs current {}, tolerance {:.0}%",
        baseline.experiment,
        baseline.engine,
        baseline.schedule,
        baseline.connections,
        baseline.git_describe,
        current.git_describe,
        tolerance * 100.0
    );
    match (baseline.knee_rps, current.knee_rps) {
        (b, c) if b > 0.0 || c > 0.0 => {
            let fmt = |k: f64| {
                if k > 0.0 {
                    format!("{k:.0} req/s")
                } else {
                    "none".to_string()
                }
            };
            println!(
                "   saturation knee: {} -> {}",
                fmt(baseline.knee_rps),
                fmt(current.knee_rps)
            );
        }
        _ => {}
    }
    let diffs = compare_load_snapshots(baseline, current, tolerance)?;
    let mut regressed = false;
    for d in &diffs {
        let verdict = if d.regressed {
            regressed = true;
            "REGRESSED"
        } else if d.worsening > 0.0 {
            "worse (ok)"
        } else {
            "ok"
        };
        println!(
            "   {:<24} {:>14.4} -> {:>14.4}  {:+7.1}%  {}",
            d.label,
            d.baseline,
            d.current,
            d.worsening * 100.0,
            verdict
        );
    }
    Ok(regressed)
}

/// Dispatch a pair on snapshot kind. Mixed kinds refuse to diff — a
/// curve is not comparable to a scalar snapshot.
fn compare_pair(
    baseline: &AnySnapshot,
    current: &AnySnapshot,
    tolerance: f64,
) -> Result<bool, String> {
    match (baseline, current) {
        (AnySnapshot::Bench(b), AnySnapshot::Bench(c)) => compare_bench_pair(b, c, tolerance),
        (AnySnapshot::Load(b), AnySnapshot::Load(c)) => compare_load_pair(b, c, tolerance),
        _ => {
            Err("snapshot kind mismatch: cannot diff a bench snapshot against a load curve".into())
        }
    }
}

fn run() -> Result<bool, String> {
    let mut tolerance = 0.25f64;
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                tolerance = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad tolerance {v:?}"))?;
                if !tolerance.is_finite() || tolerance < 0.0 {
                    return Err(format!(
                        "tolerance must be a finite fraction >= 0, got {tolerance}"
                    ));
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => positional.push(PathBuf::from(other)),
        }
    }
    let [baseline_arg, current_arg] = positional.as_slice() else {
        return Err(String::new());
    };

    let baselines = snapshot_files(baseline_arg)?;
    let currents = snapshot_files(current_arg)?;
    let current_by_name =
        |name: &std::ffi::OsStr| currents.iter().find(|p| p.file_name() == Some(name));

    let mut any_regressed = false;
    let mut compared = 0usize;
    for bpath in &baselines {
        let cpath = if baselines.len() == 1 && currents.len() == 1 {
            &currents[0]
        } else {
            let name = bpath.file_name().expect("snapshot file name");
            match current_by_name(name) {
                Some(p) => p,
                None => {
                    println!("== {}: no current counterpart, skipped", bpath.display());
                    continue;
                }
            }
        };
        let baseline = load(bpath)?;
        let current = load(cpath)?;
        any_regressed |= compare_pair(&baseline, &current, tolerance)?;
        compared += 1;
    }
    if compared == 0 {
        return Err("no snapshot pairs to compare".to_string());
    }
    println!(
        "bench-compare: {compared} snapshot(s) compared, {}",
        if any_regressed {
            "REGRESSION detected"
        } else {
            "no regression"
        }
    );
    Ok(any_regressed)
}

/// The process exit code for a `run()` outcome — factored out so the
/// schema-error → exit 2 contract is unit-testable.
fn code_for(result: &Result<bool, String>) -> u8 {
    match result {
        Ok(false) => 0,
        Ok(true) => 1,
        Err(_) => 2,
    }
}

fn main() -> ExitCode {
    let result = run();
    if let Err(msg) = &result {
        if msg.is_empty() {
            return usage();
        }
        eprintln!("bench-compare: {msg}");
    }
    ExitCode::from(code_for(&result))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_errors_map_to_exit_2_not_a_misdiff() {
        // An unknown schema version must parse-fail (which `run()`
        // surfaces as Err → exit 2), never reach the diff.
        let err = parse_any_snapshot(r#"{"schema_version":99,"kind":"mystery"}"#).unwrap_err();
        assert!(err.contains("unknown snapshot schema"), "{err}");
        assert_eq!(code_for(&Err(err)), 2);
        assert_eq!(code_for(&Ok(true)), 1);
        assert_eq!(code_for(&Ok(false)), 0);
    }

    #[test]
    fn mixed_kinds_refuse_to_diff() {
        let bench = BenchSnapshot::from_json(&sample_bench().to_json()).unwrap();
        let load = LoadSnapshot::from_json(&sample_load().to_json()).unwrap();
        let err =
            compare_pair(&AnySnapshot::Bench(bench), &AnySnapshot::Load(load), 0.0).unwrap_err();
        assert!(err.contains("kind mismatch"), "{err}");
    }

    #[test]
    fn matched_kinds_self_compare_clean() {
        let bench = AnySnapshot::Bench(sample_bench());
        assert_eq!(compare_pair(&bench, &bench, 0.0), Ok(false));
        let load = AnySnapshot::Load(sample_load());
        assert_eq!(compare_pair(&load, &load, 0.0), Ok(false));
    }

    fn sample_bench() -> BenchSnapshot {
        use lightweb_bench::perf::{BenchMetrics, BENCH_SCHEMA_VERSION};
        BenchSnapshot {
            schema_version: BENCH_SCHEMA_VERSION,
            experiment: "two_server".into(),
            engine: "two_server_pir".into(),
            git_describe: "test".into(),
            git_commit: "0000".into(),
            shard_mib: 64,
            metrics: BenchMetrics {
                requests: 4,
                wall_seconds: 0.1,
                throughput_rps: 40.0,
                p50_ms: 2.0,
                p95_ms: 3.0,
                p99_ms: 4.0,
                bytes_per_request: 100.0,
                cpu_seconds_per_request: 0.001,
                allocs_per_request: 10.0,
                alloc_bytes_per_request: 1000.0,
                peak_heap_bytes: 4096,
                scan_bytes_per_sec: 1e9,
                warmup_requests: 2,
                latencies_ms: vec![1.0, 2.0, 3.0, 4.0],
            },
        }
    }

    fn sample_load() -> LoadSnapshot {
        use lightweb_bench::load::{LoadConfig, LoadPoint};
        LoadSnapshot::from_sweep(
            "load_two_server",
            "two_server_pir",
            &LoadConfig::quick(),
            vec![LoadPoint {
                offered_rps: 50.0,
                planned_requests: 75,
                planned_rps: 50.0,
                requests: 75,
                errors: 0,
                timeouts: 0,
                achieved_rps: 50.0,
                p50_ms: 4.0,
                p95_ms: 9.0,
                p99_ms: 12.0,
                mean_ms: 5.0,
                max_ms: 20.0,
                sched_lag_p99_ms: 0.2,
            }],
        )
    }
}
