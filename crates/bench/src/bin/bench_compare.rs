//! `bench-compare`: diff two perf-baseline snapshots and gate on
//! regression.
//!
//! ```text
//! bench-compare [--tolerance 0.25] <baseline> <current>
//! ```
//!
//! Each argument is either one `BENCH_*.json` file or a directory; with
//! directories, files sharing a name are paired (a baseline with no
//! current counterpart is reported and skipped — a missing experiment
//! is suspicious but not a perf regression). Exit status: `0` clean,
//! `1` at least one metric regressed beyond tolerance, `2` usage or
//! schema error. This is the binary the CI perf-baseline job runs.

use lightweb_bench::perf::{compare_snapshots, BenchSnapshot};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: bench-compare [--tolerance FRACTION] <baseline.json|dir> <current.json|dir>");
    eprintln!("  exit 0: no regression   exit 1: regression   exit 2: bad input");
    ExitCode::from(2)
}

/// Resolve an argument to a sorted list of snapshot files.
fn snapshot_files(arg: &Path) -> Result<Vec<PathBuf>, String> {
    if arg.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(arg)
            .map_err(|e| format!("{}: {e}", arg.display()))?
            .filter_map(|ent| ent.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            })
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("{}: no BENCH_*.json files", arg.display()));
        }
        Ok(files)
    } else if arg.is_file() {
        Ok(vec![arg.to_path_buf()])
    } else {
        Err(format!("{}: not a file or directory", arg.display()))
    }
}

fn load(path: &Path) -> Result<BenchSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    BenchSnapshot::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Compare one baseline/current snapshot pair; returns whether anything
/// regressed.
fn compare_pair(
    baseline: &BenchSnapshot,
    current: &BenchSnapshot,
    tolerance: f64,
) -> Result<bool, String> {
    if baseline.experiment != current.experiment {
        return Err(format!(
            "experiment mismatch: {} vs {}",
            baseline.experiment, current.experiment
        ));
    }
    println!(
        "== {} ({}): baseline {} vs current {}, tolerance {:.0}%",
        baseline.experiment,
        baseline.engine,
        baseline.git_describe,
        current.git_describe,
        tolerance * 100.0
    );
    if baseline.shard_mib != current.shard_mib {
        println!(
            "   note: shard scale differs ({} MiB vs {} MiB) — comparison is not apples-to-apples",
            baseline.shard_mib, current.shard_mib
        );
    }
    let diffs = compare_snapshots(baseline, current, tolerance)?;
    let mut regressed = false;
    for d in &diffs {
        let verdict = if d.regressed {
            regressed = true;
            "REGRESSED"
        } else if d.worsening > 0.0 {
            "worse (ok)"
        } else {
            "ok"
        };
        println!(
            "   {:<24} {:>14.4} -> {:>14.4}  {:+7.1}%  {}",
            d.name,
            d.baseline,
            d.current,
            d.worsening * 100.0,
            verdict
        );
    }
    Ok(regressed)
}

fn run() -> Result<bool, String> {
    let mut tolerance = 0.25f64;
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = args.next().ok_or("--tolerance needs a value")?;
                tolerance = v
                    .parse::<f64>()
                    .map_err(|_| format!("bad tolerance {v:?}"))?;
                if !tolerance.is_finite() || tolerance < 0.0 {
                    return Err(format!(
                        "tolerance must be a finite fraction >= 0, got {tolerance}"
                    ));
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other => positional.push(PathBuf::from(other)),
        }
    }
    let [baseline_arg, current_arg] = positional.as_slice() else {
        return Err(String::new());
    };

    let baselines = snapshot_files(baseline_arg)?;
    let currents = snapshot_files(current_arg)?;
    let current_by_name =
        |name: &std::ffi::OsStr| currents.iter().find(|p| p.file_name() == Some(name));

    let mut any_regressed = false;
    let mut compared = 0usize;
    for bpath in &baselines {
        let cpath = if baselines.len() == 1 && currents.len() == 1 {
            &currents[0]
        } else {
            let name = bpath.file_name().expect("snapshot file name");
            match current_by_name(name) {
                Some(p) => p,
                None => {
                    println!("== {}: no current counterpart, skipped", bpath.display());
                    continue;
                }
            }
        };
        let baseline = load(bpath)?;
        let current = load(cpath)?;
        any_regressed |= compare_pair(&baseline, &current, tolerance)?;
        compared += 1;
    }
    if compared == 0 {
        return Err("no snapshot pairs to compare".to_string());
    }
    println!(
        "bench-compare: {compared} snapshot(s) compared, {}",
        if any_regressed {
            "REGRESSION detected"
        } else {
            "no regression"
        }
    );
    Ok(any_regressed)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(msg) if msg.is_empty() => usage(),
        Err(msg) => {
            eprintln!("bench-compare: {msg}");
            ExitCode::from(2)
        }
    }
}
