//! `reproduce` — regenerate every table and figure in the lightweb paper.
//!
//! Usage:
//!
//! ```text
//! reproduce [all|e1|e2|e3|e4|table2|e5|e6|e7|e8|e9|e10|e11|e12|ablations|persist|trace|bench|load]
//!           [--telemetry] [--json] [--state-dir DIR] [--kill-after N]
//!           [--metrics-addr ADDR] [--quick] [--out DIR]
//!           [--requests N] [--warmup N]
//! ```
//!
//! Each experiment prints the paper's reported numbers next to the values
//! measured/estimated by this reproduction. `LIGHTWEB_SHARD_MIB` scales
//! the shard (default 64 MiB; set 1024 for the paper's 1 GiB).
//!
//! `persist` is the durability smoke test (not a paper experiment): it
//! opens a durable universe at `--state-dir`, recovers whatever a prior
//! run journaled, publishes any of its fixed content set still missing,
//! and verifies every recovered byte through a live two-server ZLTP
//! session. `--kill-after N` aborts the process (as SIGABRT, simulating
//! a crash) after N new publishes, so CI can run publish → kill →
//! restart → verify against the same state directory.
//!
//! `--telemetry` dumps the process-wide metric registry (counters,
//! gauges, latency-histogram quantiles) after each experiment — plus a
//! per-phase trace summary (mean/p95 from the trace collector) — and
//! resets both, so each dump is that experiment's marginal cost.
//! `--json` routes all output through the telemetry event sink as JSON
//! lines on stdout (one object per line) instead of human-readable
//! tables, and includes the slow-query log (`telemetry.trace.slow`
//! events). `--metrics-addr ADDR` starts the live scrape endpoint
//! (`GET /metrics`, `GET /traces`, `GET /slow`) for the duration of the
//! run, so a long reproduction can be observed from outside.
//!
//! `trace` is the causal-tracing smoke test (not a paper experiment):
//! it drives a batched, front-end-sharded two-server ZLTP session over
//! real TCP, scrapes `/metrics`, `/traces`, `/profile`, and `/healthz`
//! over HTTP, and asserts every request produced a complete trace tree
//! with no orphan spans.
//!
//! `bench` is the perf-baseline harness (not a paper experiment): it
//! runs an end-to-end private-GET workload through each of the three
//! engines and writes one versioned `BENCH_<experiment>.json` snapshot
//! per engine (throughput, exact latency percentiles, bytes/request,
//! CPU-seconds/request, allocations/request, peak heap) into `--out DIR`
//! (default `.`). `--quick` shrinks the workload to CI size;
//! `--requests N` and `--warmup N` override the measured and
//! warmup-discard request counts per engine (warmup GETs prime caches,
//! the batcher, and the allocator, and are excluded from every reported
//! figure). The `bench-compare` binary diffs two snapshot sets and
//! exits nonzero on regression — that pair is what the CI perf gate
//! runs.
//!
//! `load` is the open-loop load harness (not a paper experiment): it
//! stands up a real two-server TCP deployment, drives it with a fleet
//! of open-loop clients at a sweep of arrival rates (Poisson by
//! default), and writes a `BENCH_load_two_server.json` curve snapshot —
//! throughput vs p50/p95/p99 with coordinated-omission-correct
//! latencies and a detected saturation knee — that `bench-compare`
//! diffs point by point. `--quick` runs the CI-sized three-point sweep;
//! `LIGHTWEB_LOAD_RATES` (comma-separated req/s), `LIGHTWEB_LOAD_CONNECTIONS`,
//! `LIGHTWEB_LOAD_DURATION_S`, and `LIGHTWEB_LOAD_SCHEDULE`
//! (`poisson`|`paced`) override the sweep shape. While the sweep runs,
//! `--metrics-addr` exposes the live saturation gauges
//! (`load.inflight.requests`, `load.offered.rps` vs `load.achieved.rps`,
//! per-second error/timeout rates) on `/metrics`.
//!
//! See EXPERIMENTS.md for the recorded outputs and the paper-vs-measured
//! discussion.

use lightweb_bench::perf::{percentile_exact, BenchMetrics, BenchSnapshot, BENCH_SCHEMA_VERSION};
use lightweb_bench::{
    build_shard, fmt_ms, render_table, shard_mib_from_env, time_mean, time_once, BenchShard,
};
use lightweb_core::{
    BatchConfig, EnclaveClient, InProcServer, LweClientSession, Mode, ModeSet, ServerConfig,
    TwoServerZltp, ZltpServer,
};
use lightweb_cost::economics::{self, UserCostInputs};
use lightweb_cost::model::{
    estimate_deployment, paper_measurements, DatasetSpec, InstanceType, ShardMeasurement,
};
use lightweb_cost::trend;
use lightweb_dpf::{gen, paper_key_size_bytes, DpfParams};
use lightweb_engine::ScanPool;
use lightweb_oram::ObliviousKvStore;
use lightweb_pir::cuckoo::{build_assignment, CuckooHasher};
use lightweb_pir::lwe::{LweClient, LweParams, LweServer};
use lightweb_pir::{analytic_collision_probability, KeywordMap, PirServer, TwoServerClient};
use lightweb_telemetry::events::{self, Field};
use lightweb_workload::fingerprint::{
    simulate_lightweb_flow, simulate_proxy_flow, synthetic_site, FlowObservation, NearestCentroid,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Heap accounting for `bench` and `--telemetry`: every allocation in
/// this binary flows through the counting allocator, so snapshots can
/// report allocations/request and peak heap. Attribution to profile
/// phases additionally requires `LIGHTWEB_PROFILE=1` (or the `bench` /
/// `--telemetry` paths, which switch it on).
#[global_allocator]
static ALLOC: lightweb_telemetry::profile::CountingAlloc =
    lightweb_telemetry::profile::CountingAlloc;

/// Output routing for the harness: human-readable tables on stdout, or
/// JSON-lines through the telemetry event sink (`--json`). Experiments
/// never call `println!` directly — everything flows through here so the
/// two modes stay in sync.
struct Reporter {
    json: bool,
}

impl Reporter {
    /// An experiment heading (`== E1: ... ==`).
    fn section(&self, title: &str) {
        if self.json {
            events::emit("reproduce.section", &[("title", Field::Str(title))]);
        } else {
            println!("== {title} ==");
        }
    }

    /// A rendered table. JSON mode emits one event per row with
    /// tab-separated cells (plus one header event).
    fn table(&self, headers: &[&str], rows: &[Vec<String>]) {
        if self.json {
            let cols = headers.join("\t");
            events::emit("reproduce.table.header", &[("columns", Field::Str(&cols))]);
            for row in rows {
                let cells = row.join("\t");
                events::emit("reproduce.table.row", &[("cells", Field::Str(&cells))]);
            }
        } else {
            println!("{}", render_table(headers, rows));
        }
    }

    /// A free-form commentary line. A trailing `\n` in the text produces
    /// a blank separator line in human mode (and is trimmed in JSON).
    fn note(&self, text: &str) {
        if self.json {
            events::emit("reproduce.note", &[("text", Field::Str(text.trim_end()))]);
        } else {
            println!("{text}");
        }
    }
}

/// Print the registry snapshot accumulated by `experiment`, then reset
/// so the next experiment's dump is marginal, not cumulative.
fn dump_telemetry(r: &Reporter, experiment: &str) {
    let snapshot = lightweb_telemetry::registry().snapshot();
    if r.json {
        for (name, v) in &snapshot.counters {
            events::emit(
                "telemetry.counter",
                &[("name", Field::Str(name)), ("value", Field::U64(*v))],
            );
        }
        for (name, g) in &snapshot.gauges {
            events::emit(
                "telemetry.gauge",
                &[
                    ("name", Field::Str(name)),
                    ("value", Field::I64(g.value)),
                    ("max", Field::I64(g.max)),
                ],
            );
        }
        for (name, h) in &snapshot.histograms {
            events::emit(
                "telemetry.histogram",
                &[
                    ("name", Field::Str(name)),
                    ("count", Field::U64(h.count)),
                    ("sum", Field::U64(h.sum)),
                    ("max", Field::U64(h.max)),
                    ("p50", Field::U64(h.p50)),
                    ("p90", Field::U64(h.p90)),
                    ("p95", Field::U64(h.p95)),
                    ("p99", Field::U64(h.p99)),
                ],
            );
        }
    } else {
        println!("-- telemetry after {experiment} --");
        print!("{}", lightweb_telemetry::render_text(&snapshot));
        println!();
    }
    dump_profile(r, experiment);
    dump_traces(r, experiment);
    lightweb_telemetry::registry().reset();
    lightweb_telemetry::trace::collector().reset();
    lightweb_telemetry::profile::reset_phases();
}

/// The profiler half of the `--telemetry` dump: per-phase self-CPU and
/// allocation attribution, plus the collapsed-stack (folded flamegraph)
/// rendering of the recently completed traces.
fn dump_profile(r: &Reporter, experiment: &str) {
    let phases = lightweb_telemetry::profile::phase_profiles();
    let folded = lightweb_telemetry::profile::render_collapsed_recent();
    if phases.is_empty() && folded.is_empty() {
        return;
    }
    if r.json {
        for p in &phases {
            events::emit(
                "telemetry.profile.phase",
                &[
                    ("name", Field::Str(p.name)),
                    ("enters", Field::U64(p.enters)),
                    ("cpu_ns", Field::U64(p.cpu_ns)),
                    ("allocs", Field::U64(p.allocs)),
                    ("alloc_bytes", Field::U64(p.alloc_bytes)),
                ],
            );
        }
        for line in folded.lines() {
            events::emit(
                "telemetry.profile.collapsed",
                &[("stack", Field::Str(line))],
            );
        }
    } else {
        if !phases.is_empty() {
            println!("-- profile phases after {experiment} --");
            let rows: Vec<Vec<String>> = phases
                .iter()
                .map(|p| {
                    vec![
                        p.name.to_string(),
                        p.enters.to_string(),
                        format!("{:.3}", p.cpu_ns as f64 / 1e6),
                        p.allocs.to_string(),
                        format!("{:.1}", p.alloc_bytes as f64 / 1024.0),
                    ]
                })
                .collect();
            println!(
                "{}",
                render_table(
                    &["phase", "enters", "self CPU (ms)", "allocs", "alloc KiB"],
                    &rows
                )
            );
        }
        if !folded.is_empty() {
            println!("-- collapsed stacks (folded, self wall-us) after {experiment} --");
            print!("{folded}");
            println!();
        }
    }
}

/// The trace-collector half of the `--telemetry` dump: per-phase span
/// statistics (mean/p95 per span name across every completed trace) and,
/// in JSON mode, the slow-query log as one event per retained trace.
fn dump_traces(r: &Reporter, experiment: &str) {
    let collector = lightweb_telemetry::trace::collector();
    let phases = collector.phase_stats();
    if phases.is_empty() {
        return;
    }
    if r.json {
        for p in &phases {
            events::emit(
                "telemetry.trace.phase",
                &[
                    ("name", Field::Str(p.name)),
                    ("count", Field::U64(p.count)),
                    ("mean_ns", Field::U64(p.mean_ns)),
                    ("p50_ns", Field::U64(p.p50_ns)),
                    ("p95_ns", Field::U64(p.p95_ns)),
                    ("p99_ns", Field::U64(p.p99_ns)),
                    ("max_ns", Field::U64(p.max_ns)),
                ],
            );
        }
        for t in collector.slowest() {
            events::emit(
                "telemetry.trace.slow",
                &[
                    ("trace_id", Field::Str(&format!("{:032x}", t.trace_id))),
                    ("root", Field::Str(t.root.name)),
                    ("duration_ns", Field::U64(t.duration_ns())),
                    ("spans", Field::U64(t.span_count as u64)),
                    ("orphans", Field::U64(t.orphan_spans as u64)),
                ],
            );
        }
    } else {
        println!("-- trace phases after {experiment} --");
        let rows: Vec<Vec<String>> = phases
            .iter()
            .map(|p| {
                vec![
                    p.name.to_string(),
                    p.count.to_string(),
                    format!("{:.3}", p.mean_ns as f64 / 1e6),
                    format!("{:.3}", p.p50_ns as f64 / 1e6),
                    format!("{:.3}", p.p95_ns as f64 / 1e6),
                    format!("{:.3}", p.p99_ns as f64 / 1e6),
                    format!("{:.3}", p.max_ns as f64 / 1e6),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &[
                    "phase",
                    "count",
                    "mean (ms)",
                    "p50 (ms)",
                    "p95 (ms)",
                    "p99 (ms)",
                    "max (ms)"
                ],
                &rows
            )
        );
        print!("{}", collector.render_slow_text());
        println!();
    }
}

fn main() {
    let mut which = "all".to_string();
    let mut telemetry_dump = false;
    let mut json = false;
    let mut state_dir: Option<std::path::PathBuf> = None;
    let mut kill_after: Option<usize> = None;
    let mut metrics_addr: Option<String> = None;
    let mut quick = false;
    let mut out_dir = std::path::PathBuf::from(".");
    let mut requests: Option<usize> = None;
    let mut warmup: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--telemetry" => telemetry_dump = true,
            "--json" => json = true,
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(dir) => out_dir = dir.into(),
                None => {
                    eprintln!("error: --out requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--metrics-addr" => match args.next() {
                Some(addr) => metrics_addr = Some(addr),
                None => {
                    eprintln!(
                        "error: --metrics-addr requires an ADDR argument (e.g. 127.0.0.1:9464)"
                    );
                    std::process::exit(2);
                }
            },
            "--state-dir" => match args.next() {
                Some(dir) => state_dir = Some(dir.into()),
                None => {
                    eprintln!("error: --state-dir requires a directory argument");
                    std::process::exit(2);
                }
            },
            "--kill-after" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => kill_after = Some(n),
                None => {
                    eprintln!("error: --kill-after requires an integer argument");
                    std::process::exit(2);
                }
            },
            "--requests" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) if n > 0 => requests = Some(n),
                _ => {
                    eprintln!("error: --requests requires a positive integer argument");
                    std::process::exit(2);
                }
            },
            "--warmup" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => warmup = Some(n),
                None => {
                    eprintln!("error: --warmup requires an integer argument");
                    std::process::exit(2);
                }
            },
            other => which = other.to_string(),
        }
    }
    const KNOWN: &[&str] = &[
        "all",
        "e1",
        "e2",
        "e3",
        "e4",
        "table2",
        "e5",
        "e6",
        "e7",
        "e8",
        "e9",
        "e10",
        "e11",
        "e12",
        "ablations",
        "persist",
        "trace",
        "bench",
        "load",
        "churn",
    ];
    if !KNOWN.contains(&which.as_str()) {
        eprintln!(
            "error: unknown experiment '{which}' (expected one of: {})",
            KNOWN.join(", ")
        );
        std::process::exit(2);
    }
    if json {
        events::install(Box::new(std::io::stdout()));
        // First event of every JSON stream: schema + git identity, so a
        // captured stream is self-identifying like a bench snapshot.
        events::emit(
            "reproduce.meta",
            &[
                ("schema_version", Field::U64(BENCH_SCHEMA_VERSION)),
                (
                    "git_describe",
                    Field::Str(lightweb_bench::perf::git_describe()),
                ),
                ("git_commit", Field::Str(lightweb_bench::perf::git_commit())),
            ],
        );
    }
    // Phase attribution (CPU + allocations) rides on trace spans; switch
    // it on whenever this run will report it.
    if telemetry_dump || which == "bench" {
        lightweb_telemetry::profile::set_enabled(true);
    }
    let r = Reporter { json };
    // Bind the live scrape endpoint before any experiment runs; the
    // handle must stay alive until the end of main or the listener dies.
    let _scrape = metrics_addr.as_deref().map(|addr| {
        match lightweb_telemetry::scrape::ScrapeServer::bind(addr) {
            Ok(s) => {
                r.note(&format!(
                    "scrape endpoint live at http://{}/metrics (also /traces, /slow, /profile, /healthz)\n",
                    s.addr()
                ));
                s
            }
            Err(err) => {
                eprintln!("error: cannot bind --metrics-addr {addr}: {err}");
                std::process::exit(2);
            }
        }
    });
    if which == "trace" {
        trace_smoke(&r, _scrape.as_ref());
        if telemetry_dump {
            dump_telemetry(&r, "trace");
        }
        if json {
            events::flush();
            events::uninstall();
        }
        return;
    }
    if which == "bench" {
        bench_experiment(&r, quick, &out_dir, requests, warmup);
        if telemetry_dump {
            dump_telemetry(&r, "bench");
        }
        if json {
            events::flush();
            events::uninstall();
        }
        return;
    }
    if which == "load" {
        load_experiment(&r, quick, &out_dir);
        if telemetry_dump {
            dump_telemetry(&r, "load");
        }
        if json {
            events::flush();
            events::uninstall();
        }
        return;
    }
    if which == "churn" {
        churn_experiment(&r, quick);
        if telemetry_dump {
            dump_telemetry(&r, "churn");
        }
        if json {
            events::flush();
            events::uninstall();
        }
        return;
    }
    if which == "persist" {
        let Some(dir) = state_dir else {
            eprintln!("error: persist requires --state-dir <DIR>");
            std::process::exit(2);
        };
        persist_experiment(&r, &dir, kill_after);
        if telemetry_dump {
            dump_telemetry(&r, "persist");
        }
        if json {
            events::flush();
            events::uninstall();
        }
        return;
    }
    let run = |name: &str| which == "all" || which == name || (name == "e4" && which == "table2");
    r.note(&format!(
        "lightweb reproduction harness (shard = {} MiB; set LIGHTWEB_SHARD_MIB to rescale)\n",
        shard_mib_from_env()
    ));

    type Experiment = fn(&Reporter);
    let experiments: &[(&str, Experiment)] = &[
        ("e1", e1_server_compute),
        ("e2", e2_batching),
        ("e3", e3_communication),
        ("e4", e4_table2),
        ("e5", e5_distributed_dpf),
        ("e6", e6_economics),
        ("e7", e7_collisions),
        ("e8", e8_modes),
        ("e9", e9_traffic_analysis),
        ("e10", e10_trend),
        ("e11", e11_timing),
        ("e12", e12_scan_parallel),
    ];
    for (name, experiment) in experiments {
        if run(name) {
            experiment(&r);
            if telemetry_dump {
                dump_telemetry(&r, name);
            }
        }
    }
    if which == "all" || which == "ablations" {
        ablations(&r);
        if telemetry_dump {
            dump_telemetry(&r, "ablations");
        }
    }
    if json {
        events::flush();
        events::uninstall();
    }
}

// =====================================================================
// trace — causal-tracing smoke (lightweb-telemetry::trace). Not a paper
// experiment: drives a batched, front-end-sharded two-server ZLTP
// session over real TCP sockets, then observes the run the way an
// operator would — over HTTP from the scrape endpoint — and asserts
// every request left a complete trace tree behind.
// =====================================================================

/// Minimal HTTP/1.0 GET against the scrape endpoint; returns the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect scrape endpoint");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: reproduce\r\n\r\n").expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has header/body split");
    assert!(
        head.starts_with("HTTP/1.0 200"),
        "scrape endpoint returned non-200 for {path}: {head}"
    );
    body.to_string()
}

const TRACE_SMOKE_GETS: usize = 6;

fn trace_smoke(r: &Reporter, external: Option<&lightweb_telemetry::scrape::ScrapeServer>) {
    r.section("trace: end-to-end causal tracing smoke (scrape endpoint + trace trees)");
    // Start from a clean slate so the assertions below count only this
    // session's requests.
    lightweb_telemetry::registry().reset();
    lightweb_telemetry::trace::collector().reset();

    // Without --metrics-addr, bind a private endpoint: the point of the
    // smoke is to observe the run over HTTP either way.
    let local;
    let scrape = match external {
        Some(s) => s,
        None => {
            local = lightweb_telemetry::scrape::ScrapeServer::bind("127.0.0.1:0")
                .expect("bind local scrape endpoint");
            &local
        }
    };

    // A batched AND front-end-sharded deployment over real TCP: the two
    // regimes compose, and the trace tree must show both the batch-wait
    // span and the per-shard answer spans under one client request.
    let threads = std::env::var("LIGHTWEB_SCAN_THREADS").unwrap_or_default();
    r.note(&format!(
        "two-server ZLTP over TCP: batch window 5 ms x4, shard_prefix_bits=2, LIGHTWEB_SCAN_THREADS={}",
        if threads.is_empty() { "(default)" } else { &threads }
    ));
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for party in 0..2u8 {
        let mut cfg = ServerConfig::small("trace-smoke", party);
        cfg.blob_len = 1024;
        cfg.shard_prefix_bits = 2;
        cfg.batch = BatchConfig {
            max_batch: 4,
            window: Duration::from_millis(5),
        };
        let server = ZltpServer::new(cfg).unwrap();
        for i in 0..8 {
            server
                .publish(&format!("trace/page-{i}"), &[i as u8 + 1; 1024])
                .unwrap();
        }
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap());
        server.serve_tcp(listener).unwrap();
        handles.push(server);
    }
    let mut client = TwoServerZltp::connect(
        std::net::TcpStream::connect(addrs[0]).unwrap(),
        std::net::TcpStream::connect(addrs[1]).unwrap(),
    )
    .unwrap();
    for i in 0..TRACE_SMOKE_GETS {
        let blob = client
            .private_get(&format!("trace/page-{}", i % 8))
            .unwrap();
        assert_eq!(blob.len(), 1024, "wrong blob length for page {i}");
    }
    client.close().unwrap();
    for server in &handles {
        server.shutdown();
    }

    // Observe the run over HTTP, exactly as an operator would.
    let metrics = http_get(scrape.addr(), "/metrics");
    assert!(
        metrics.contains("zltp.server.requests"),
        "/metrics is missing the server request counter:\n{metrics}"
    );
    let traces = http_get(scrape.addr(), "/traces");
    let request_lines: Vec<&str> = traces
        .lines()
        .filter(|l| l.contains("zltp.client.request"))
        .collect();
    assert_eq!(
        request_lines.len(),
        TRACE_SMOKE_GETS,
        "expected one trace per GET in /traces:\n{traces}"
    );
    for line in &request_lines {
        assert!(
            line.contains("\"orphans\":0"),
            "trace has orphan spans (incomplete tree): {line}"
        );
        for phase in [
            "zltp.client.transport",
            "zltp.server.request",
            "zltp.server.batch.wait",
            "engine.two_server.answer",
            "zltp.shard.front_end",
            "zltp.shard.answer",
        ] {
            assert!(
                line.contains(phase),
                "trace is missing the {phase} span: {line}"
            );
        }
    }
    let collector = lightweb_telemetry::trace::collector();
    assert_eq!(
        collector.orphaned_spans(),
        0,
        "collector saw spans that never joined a trace"
    );

    // The continuous-profiling view: collapsed stacks folded over the
    // same traces, ready for flamegraph.pl / speedscope.
    let profile = http_get(scrape.addr(), "/profile");
    assert!(
        !profile.trim().is_empty(),
        "/profile is empty after a traced session"
    );
    assert!(
        profile
            .lines()
            .any(|l| l.starts_with("zltp.client.request") && l.contains(';')),
        "/profile has no folded stack rooted at the client request:\n{profile}"
    );

    // And the liveness view: uptime, build identity, and which modes
    // this process is serving.
    let healthz = http_get(scrape.addr(), "/healthz");
    assert!(
        healthz.contains("status ok") && healthz.contains("two_server_pir"),
        "/healthz is missing status or the served mode:\n{healthz}"
    );

    r.note(&format!(
        "OK: {} GETs -> {} complete traces (client -> transport -> server -> batch-wait -> engine -> shard), 0 orphan spans; /profile and /healthz live\n",
        TRACE_SMOKE_GETS,
        request_lines.len()
    ));
}

// =====================================================================
// bench — the perf-baseline harness (not a paper experiment). Runs an
// end-to-end private-GET workload through each of the three engines and
// writes one versioned BENCH_<experiment>.json snapshot per engine for
// bench-compare and the CI perf gate. The measured loop excludes
// server construction and session setup (the LWE hint download is the
// paper's *offline* cost) but includes batching waits and transport.
// =====================================================================

/// Per-request observations from one bench workload run.
struct WorkloadResult {
    /// Per-request wall latency, milliseconds (unsorted), measured
    /// window only.
    latencies_ms: Vec<f64>,
    /// Wire bytes (sent + received) during the measured loop.
    bytes: u64,
    /// Requests issued and discarded before the measured window.
    warmup_requests: u64,
}

/// The measured window of one bench workload: wall clock, process CPU,
/// and heap accounting all start when the workload calls [`begin`]
/// (after its warmup requests and a fleet-wide sync) and stop at
/// [`end`] (before teardown), so neither warmup nor server shutdown
/// pollutes the per-request figures.
///
/// [`begin`]: Accounting::begin
/// [`end`]: Accounting::end
struct Accounting {
    begin: std::cell::Cell<Option<AccountingMark>>,
    end: std::cell::Cell<Option<AccountingMark>>,
}

type AccountingMark = (
    u64,
    lightweb_telemetry::profile::HeapStats,
    std::time::Instant,
    u64, // pir.scan.bytes counter — database bytes the kernels swept
);

fn accounting_mark() -> AccountingMark {
    use lightweb_telemetry::profile::{heap_stats, process_cpu_ns};
    (
        process_cpu_ns().unwrap_or(0),
        heap_stats(),
        std::time::Instant::now(),
        lightweb_telemetry::registry()
            .counter("pir.scan.bytes")
            .get(),
    )
}

impl Accounting {
    fn new() -> Self {
        Self {
            begin: std::cell::Cell::new(None),
            end: std::cell::Cell::new(None),
        }
    }

    /// Arm the window. Call exactly once, after warmup, with no
    /// measured work in flight yet.
    fn begin(&self) {
        lightweb_telemetry::profile::reset_peak();
        self.begin.set(Some(accounting_mark()));
    }

    /// Close the window. Call when the measured loop is done, before
    /// closing sessions / shutting servers down.
    fn end(&self) {
        self.end.set(Some(accounting_mark()));
    }
}

/// Deterministic page payload for the bench content set.
fn bench_blob(i: usize, blob_len: usize) -> Vec<u8> {
    vec![(i % 250) as u8 + 1; blob_len]
}

/// An in-process ZLTP server offering `modes`, publishing `pages` blobs.
fn bench_server(modes: &[Mode], party: u8, pages: usize, blob_len: usize) -> InProcServer {
    let mut cfg = ServerConfig::small("bench", party);
    cfg.blob_len = blob_len;
    cfg.modes = ModeSet::new(modes.iter().copied());
    if modes.contains(&Mode::TwoServerPir) {
        // Batched, as deployed: the window is small so a quick CI run is
        // not dominated by batch waits.
        cfg.batch = BatchConfig {
            max_batch: 8,
            window: Duration::from_millis(4),
        };
    }
    let server = ZltpServer::new(cfg).unwrap();
    for i in 0..pages {
        server
            .publish(&format!("bench/page-{i}"), &bench_blob(i, blob_len))
            .unwrap();
    }
    InProcServer::new(server)
}

/// Two-server DPF workload: `threads` concurrent clients sharing the
/// batcher, each issuing `warmup` discarded then `gets` measured
/// private GETs. All threads finish warming up before the accounting
/// window opens (two barrier turns: sync, arm, release), so warmup
/// cost can never leak into the measured figures.
fn bench_two_server(
    pages: usize,
    blob_len: usize,
    threads: usize,
    warmup: usize,
    gets: usize,
    acct: &Accounting,
) -> WorkloadResult {
    let servers: Vec<InProcServer> = (0..2u8)
        .map(|party| bench_server(&[Mode::TwoServerPir], party, pages, blob_len))
        .collect();
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads + 1));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let c0 = servers[0].connect();
            let c1 = servers[1].connect();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let mut client = TwoServerZltp::connect(c0, c1).unwrap();
                for i in 0..warmup {
                    let key = format!("bench/page-{}", (t + i) % pages);
                    assert_eq!(client.private_get(&key).unwrap().len(), blob_len);
                }
                barrier.wait(); // everyone warm
                barrier.wait(); // window armed; go
                let base = client.stats();
                let mut lat = Vec::with_capacity(gets);
                for i in 0..gets {
                    let key = format!("bench/page-{}", (t + i) % pages);
                    let (blob, d) = time_once(|| client.private_get(&key).unwrap());
                    assert_eq!(blob.len(), blob_len);
                    lat.push(d.as_secs_f64() * 1e3);
                }
                let s = client.stats();
                let bytes =
                    (s.bytes_sent - base.bytes_sent) + (s.bytes_received - base.bytes_received);
                client.close().unwrap();
                (lat, bytes)
            })
        })
        .collect();
    barrier.wait();
    acct.begin();
    barrier.wait();
    let mut latencies_ms = Vec::new();
    let mut bytes = 0u64;
    for h in handles {
        let (lat, b) = h.join().unwrap();
        latencies_ms.extend(lat);
        bytes += b;
    }
    acct.end();
    for s in &servers {
        s.server().shutdown();
    }
    WorkloadResult {
        latencies_ms,
        bytes,
        warmup_requests: (warmup * threads) as u64,
    }
}

/// Single-session workload shared by the LWE and enclave-ORAM engines:
/// `warmup` discarded then `gets` measured sequential private GETs,
/// latencies and wire bytes from the measured window of the online
/// phase only.
fn bench_single_session(
    mode: Mode,
    pages: usize,
    blob_len: usize,
    warmup: usize,
    gets: usize,
    acct: &Accounting,
) -> WorkloadResult {
    type StatsFn = Box<dyn FnMut() -> lightweb_core::SessionStats>;
    type GetFn = Box<dyn FnMut(&str) -> Vec<u8>>;
    let srv = bench_server(&[mode], 0, pages, blob_len);
    // Both session types expose the same shape; unify via boxed
    // closures over (stats, one private_get).
    let run = |mut stats: StatsFn, mut get: GetFn| {
        for i in 0..warmup {
            let key = format!("bench/page-{}", i % pages);
            assert_eq!(get(&key).len(), blob_len);
        }
        acct.begin();
        let base = stats();
        let mut lat = Vec::with_capacity(gets);
        for i in 0..gets {
            let key = format!("bench/page-{}", i % pages);
            let (blob, d) = time_once(|| get(&key));
            assert_eq!(blob.len(), blob_len);
            lat.push(d.as_secs_f64() * 1e3);
        }
        let s = stats();
        let bytes = (s.bytes_sent - base.bytes_sent) + (s.bytes_received - base.bytes_received);
        acct.end();
        (lat, bytes)
    };
    let (latencies_ms, bytes) = match mode {
        Mode::SingleServerLwe => {
            let session = std::rc::Rc::new(std::cell::RefCell::new(
                LweClientSession::connect(srv.connect()).unwrap(),
            ));
            let s2 = session.clone();
            let out = run(
                Box::new(move || s2.borrow().stats()),
                Box::new(move |key| session.borrow_mut().private_get(key).unwrap().unwrap()),
            );
            out
        }
        Mode::Enclave => {
            let session = std::rc::Rc::new(std::cell::RefCell::new(
                EnclaveClient::connect(srv.connect()).unwrap(),
            ));
            let s2 = session.clone();
            run(
                Box::new(move || s2.borrow().stats()),
                Box::new(move |key| session.borrow_mut().private_get(key).unwrap().unwrap()),
            )
        }
        Mode::TwoServerPir => unreachable!("two-server uses bench_two_server"),
    };
    srv.server().shutdown();
    WorkloadResult {
        latencies_ms,
        bytes,
        warmup_requests: warmup as u64,
    }
}

/// Run one workload and fold its measured window (wall, process CPU,
/// heap — see [`Accounting`]) into a versioned snapshot.
fn bench_measure(
    experiment: &str,
    engine: &str,
    run: impl FnOnce(&Accounting) -> WorkloadResult,
) -> BenchSnapshot {
    let acct = Accounting::new();
    let wl = run(&acct);
    let (cpu0, heap0, t0, scan0) = acct
        .begin
        .take()
        .expect("workload armed its accounting window");
    let (cpu1, heap1, t1, scan1) = acct.end.take().unwrap_or_else(accounting_mark);

    let mut lat = wl.latencies_ms;
    lat.sort_by(f64::total_cmp);
    let n = lat.len() as f64;
    let wall_seconds = t1.duration_since(t0).as_secs_f64();
    let scan_bytes_per_sec = scan1.saturating_sub(scan0) as f64 / wall_seconds.max(1e-9);
    // Mirror the measured sweep rate onto /metrics next to the raw
    // pir.scan.bytes counter, so a scrape shows the bandwidth too.
    lightweb_telemetry::registry()
        .gauge("pir.scan.bytes_per_sec")
        .set(scan_bytes_per_sec as i64);
    BenchSnapshot {
        schema_version: BENCH_SCHEMA_VERSION,
        experiment: experiment.to_string(),
        engine: engine.to_string(),
        git_describe: lightweb_bench::perf::git_describe().to_string(),
        git_commit: lightweb_bench::perf::git_commit().to_string(),
        shard_mib: shard_mib_from_env() as u64,
        metrics: BenchMetrics {
            requests: lat.len() as u64,
            wall_seconds,
            throughput_rps: n / wall_seconds.max(1e-9),
            p50_ms: percentile_exact(&lat, 0.50),
            p95_ms: percentile_exact(&lat, 0.95),
            p99_ms: percentile_exact(&lat, 0.99),
            bytes_per_request: wl.bytes as f64 / n.max(1.0),
            cpu_seconds_per_request: (cpu1.saturating_sub(cpu0)) as f64 / 1e9 / n.max(1.0),
            allocs_per_request: (heap1.allocs - heap0.allocs) as f64 / n.max(1.0),
            alloc_bytes_per_request: (heap1.allocated_bytes - heap0.allocated_bytes) as f64
                / n.max(1.0),
            peak_heap_bytes: heap1.peak_bytes,
            scan_bytes_per_sec,
            warmup_requests: wl.warmup_requests,
            latencies_ms: lat,
        },
    }
}

fn bench_experiment(
    r: &Reporter,
    quick: bool,
    out_dir: &std::path::Path,
    requests: Option<usize>,
    warmup: Option<usize>,
) {
    r.section(&format!(
        "bench: perf-baseline snapshots across all engines ({})",
        if quick {
            "quick/CI scale"
        } else {
            "full scale"
        }
    ));
    std::fs::create_dir_all(out_dir).expect("create --out directory");

    let pages = 8usize;
    let blob_len = 1024usize;
    // Measured / warmup-discard GETs per engine. Warmup primes the
    // batcher, caches, and allocator so the recorded percentiles are
    // steady-state, not first-request noise.
    let measured = requests.unwrap_or(if quick { 48 } else { 128 });
    let warm = warmup.unwrap_or(measured / 4);
    // Enough concurrent clients to fill the server's batch window
    // (`max_batch` in [`bench_server`]): the two-server number then
    // measures the §5.1 amortized batched sweep, not the linger timer —
    // with fewer clients than the batch size every request just waits
    // out the full window and the scan cost disappears into it.
    let threads = 8;
    let gets = measured.div_ceil(threads);
    let warm_each = warm.div_ceil(threads);
    r.note(&format!(
        "{measured} measured + {warm} warmup GETs per engine (two-server: {threads} threads x {gets})\n"
    ));

    let snapshots = [
        bench_measure("two_server", "two_server_pir", |acct| {
            bench_two_server(pages, blob_len, threads, warm_each, gets, acct)
        }),
        bench_measure("lwe", "single_server_lwe", |acct| {
            bench_single_session(Mode::SingleServerLwe, pages, blob_len, warm, measured, acct)
        }),
        bench_measure("oram", "enclave_oram", |acct| {
            bench_single_session(Mode::Enclave, pages, blob_len, warm, measured, acct)
        }),
    ];

    let mut rows = Vec::new();
    for snap in &snapshots {
        let path = out_dir.join(format!("BENCH_{}.json", snap.experiment));
        std::fs::write(&path, snap.to_json() + "\n").expect("write bench snapshot");
        let m = &snap.metrics;
        rows.push(vec![
            snap.experiment.clone(),
            snap.engine.clone(),
            m.requests.to_string(),
            m.warmup_requests.to_string(),
            format!("{:.1}", m.throughput_rps),
            format!("{:.2}", m.p50_ms),
            format!("{:.2}", m.p95_ms),
            format!("{:.2}", m.p99_ms),
            format!("{:.0}", m.bytes_per_request),
            format!("{:.4}", m.cpu_seconds_per_request),
            format!("{:.0}", m.allocs_per_request),
            format!("{:.2}", m.scan_bytes_per_sec / 1e9),
        ]);
        if r.json {
            events::emit(
                "reproduce.bench.snapshot",
                &[
                    ("experiment", Field::Str(&snap.experiment)),
                    ("engine", Field::Str(&snap.engine)),
                    ("path", Field::Str(&path.display().to_string())),
                    ("requests", Field::U64(m.requests)),
                    ("warmup_requests", Field::U64(m.warmup_requests)),
                    ("throughput_rps", Field::F64(m.throughput_rps)),
                    ("p50_ms", Field::F64(m.p50_ms)),
                    ("p95_ms", Field::F64(m.p95_ms)),
                    ("p99_ms", Field::F64(m.p99_ms)),
                    ("bytes_per_request", Field::F64(m.bytes_per_request)),
                    (
                        "cpu_seconds_per_request",
                        Field::F64(m.cpu_seconds_per_request),
                    ),
                    ("allocs_per_request", Field::F64(m.allocs_per_request)),
                    ("peak_heap_bytes", Field::U64(m.peak_heap_bytes)),
                    ("scan_bytes_per_sec", Field::F64(m.scan_bytes_per_sec)),
                ],
            );
        }
    }
    r.table(
        &[
            "experiment",
            "engine",
            "reqs",
            "warmup",
            "req/s",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "B/req",
            "cpu-s/req",
            "allocs/req",
            "scan GB/s",
        ],
        &rows,
    );
    r.note(&format!(
        "wrote {} snapshots (schema v{}, {}) to {}; diff against a baseline with: bench-compare <baseline-dir> {}\n",
        snapshots.len(),
        BENCH_SCHEMA_VERSION,
        lightweb_bench::perf::git_describe(),
        out_dir.display(),
        out_dir.display(),
    ));
}

// =====================================================================
// load — the open-loop load harness (lightweb_bench::load). Not a paper
// experiment: stands up a real two-server TCP deployment, offers load
// at a sweep of arrival rates with an open-loop client fleet, and
// writes the resulting latency-under-load curve (with its detected
// saturation knee) as a BENCH_load_two_server.json snapshot for
// bench-compare and the CI load gate. Latencies are measured from each
// request's *intended* start time (coordinated-omission correction),
// so server stalls are charged to every request they delayed.
// =====================================================================

/// Comma-separated f64 list from the environment, else the default.
fn load_env_rates(name: &str, default: Vec<f64>) -> Vec<f64> {
    match std::env::var(name) {
        Ok(v) => {
            let rates: Vec<f64> = v
                .split(',')
                .filter_map(|s| s.trim().parse().ok())
                .filter(|r: &f64| *r > 0.0)
                .collect();
            if rates.is_empty() {
                eprintln!("error: {name}={v:?} parses to no positive rates");
                std::process::exit(2);
            }
            rates
        }
        Err(_) => default,
    }
}

fn load_env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load_experiment(r: &Reporter, quick: bool, out_dir: &std::path::Path) {
    use lightweb_bench::load::{
        page_key, run_sweep, LoadConfig, LoadSnapshot, ScheduleKind, LOAD_SCHEMA_VERSION,
    };

    let mut cfg = if quick {
        LoadConfig::quick()
    } else {
        LoadConfig::full()
    };
    cfg.rates_rps = load_env_rates("LIGHTWEB_LOAD_RATES", cfg.rates_rps);
    cfg.connections = load_env_parse("LIGHTWEB_LOAD_CONNECTIONS", cfg.connections);
    cfg.duration_s = load_env_parse("LIGHTWEB_LOAD_DURATION_S", cfg.duration_s);
    if let Ok(v) = std::env::var("LIGHTWEB_LOAD_SCHEDULE") {
        match ScheduleKind::from_name(&v) {
            Some(k) => cfg.schedule = k,
            None => {
                eprintln!("error: LIGHTWEB_LOAD_SCHEDULE={v:?} (expected poisson or paced)");
                std::process::exit(2);
            }
        }
    }

    r.section(&format!(
        "load: open-loop latency-under-load sweep ({} schedule, {} connections, {} s/rate, {} io)",
        cfg.schedule.name(),
        cfg.connections,
        cfg.duration_s,
        cfg.io_model.name()
    ));
    std::fs::create_dir_all(out_dir).expect("create --out directory");
    // Clean registry so the live load gauges and counters on /metrics
    // reflect this sweep alone.
    lightweb_telemetry::registry().reset();

    // A real two-server deployment over TCP, in the load-test shape,
    // served through the io model the sweep targets (threads or the
    // epoll reactor; LIGHTWEB_IO_MODEL selects).
    let blob_len = ServerConfig::load_test("load", 0).blob_len;
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for party in 0..2u8 {
        let mut server_cfg = ServerConfig::load_test("load", party);
        server_cfg.io_model = cfg.io_model;
        let server = ZltpServer::new(server_cfg).unwrap();
        for i in 0..cfg.pages {
            server
                .publish(&page_key(i), &bench_blob(i, blob_len))
                .unwrap();
        }
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap());
        lightweb_reactor::serve(&server, listener).unwrap();
        servers.push(server);
    }
    r.note(&format!(
        "two-server pair live at {} / {} ({} io model); offering {:?} req/s\n",
        addrs[0],
        addrs[1],
        cfg.io_model.name(),
        cfg.rates_rps
    ));

    let points = match run_sweep(addrs[0], addrs[1], &cfg, blob_len) {
        Ok(points) => points,
        Err(err) => {
            eprintln!("error: load sweep failed: {err}");
            std::process::exit(1);
        }
    };
    for server in &servers {
        server.shutdown();
    }

    let snap = LoadSnapshot::from_sweep("load_two_server", "two_server_pir", &cfg, points);
    let path = out_dir.join(format!("BENCH_{}.json", snap.experiment));
    std::fs::write(&path, snap.to_json() + "\n").expect("write load snapshot");

    let mut rows = Vec::new();
    for p in &snap.points {
        rows.push(vec![
            format!("{:.0}", p.offered_rps),
            format!("{:.1}", p.achieved_rps),
            p.requests.to_string(),
            (p.errors + p.timeouts).to_string(),
            format!("{:.2}", p.p50_ms),
            format!("{:.2}", p.p95_ms),
            format!("{:.2}", p.p99_ms),
            format!("{:.2}", p.sched_lag_p99_ms),
        ]);
        if r.json {
            events::emit(
                "reproduce.load.point",
                &[
                    ("offered_rps", Field::F64(p.offered_rps)),
                    ("achieved_rps", Field::F64(p.achieved_rps)),
                    ("requests", Field::U64(p.requests)),
                    ("errors", Field::U64(p.errors)),
                    ("timeouts", Field::U64(p.timeouts)),
                    ("p50_ms", Field::F64(p.p50_ms)),
                    ("p95_ms", Field::F64(p.p95_ms)),
                    ("p99_ms", Field::F64(p.p99_ms)),
                    ("sched_lag_p99_ms", Field::F64(p.sched_lag_p99_ms)),
                ],
            );
        }
    }
    r.table(
        &[
            "offered req/s",
            "achieved req/s",
            "ok",
            "err+timeout",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
            "sched-lag p99 (ms)",
        ],
        &rows,
    );
    let knee = if snap.knee_rps > 0.0 {
        format!("saturation knee at ~{:.0} req/s offered", snap.knee_rps)
    } else {
        "no saturation knee within the swept range".to_string()
    };
    r.note(&format!(
        "{knee}; wrote {} (schema v{LOAD_SCHEMA_VERSION}, {}); diff with: bench-compare <baseline> {}\n",
        path.display(),
        lightweb_bench::perf::git_describe(),
        path.display(),
    ));
}

// =====================================================================
// churn — connection churn and idle-session reaping (lightweb-reactor).
// Not a paper experiment: hammers the server with short-lived sessions
// (connect → one private GET → close) to measure session setup/teardown
// throughput, then — under the reactor io model — parks a fleet of
// silent half-open sessions and measures how long the idle reaper takes
// to evict them (LIGHTWEB_REACTOR_IDLE_TIMEOUT_MS; the slow-loris
// defense a thread-per-connection server cannot mount without a parked
// thread per victim).
// =====================================================================

fn churn_experiment(r: &Reporter, quick: bool) {
    use lightweb_core::{encode_frame, IoModel, Message, PROTOCOL_VERSION};
    use lightweb_reactor::{serve_with, ReactorConfig};
    use std::io::{Read, Write};

    let io_model = IoModel::from_env();
    let (waves, workers, sessions_per_worker, idle_sessions) = if quick {
        (3usize, 8usize, 4usize, 16usize)
    } else {
        (5usize, 32usize, 8usize, 256usize)
    };
    let waves = load_env_parse("LIGHTWEB_CHURN_WAVES", waves);
    let workers = load_env_parse("LIGHTWEB_CHURN_WORKERS", workers);
    let sessions_per_worker = load_env_parse("LIGHTWEB_CHURN_SESSIONS", sessions_per_worker);
    let idle_sessions = load_env_parse("LIGHTWEB_CHURN_IDLE", idle_sessions);

    // The experiment wants reaping observable in seconds, not minutes:
    // honor LIGHTWEB_REACTOR_IDLE_TIMEOUT_MS but default it short here.
    let mut rcfg = ReactorConfig::from_env();
    if std::env::var("LIGHTWEB_REACTOR_IDLE_TIMEOUT_MS").is_err() {
        rcfg.idle_timeout = Duration::from_millis(500);
        rcfg.sweep_interval = Duration::from_millis(100);
        rcfg.idle_mark = Duration::from_millis(50);
    }

    r.section(&format!(
        "churn: session churn & idle reaping ({} io, {waves} waves x {workers} workers x \
         {sessions_per_worker} sessions, {idle_sessions} idle)",
        io_model.name()
    ));
    lightweb_telemetry::registry().reset();

    let blob_len = ServerConfig::load_test("churn", 0).blob_len;
    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for party in 0..2u8 {
        let mut cfg = ServerConfig::load_test("churn", party);
        cfg.io_model = io_model;
        let server = ZltpServer::new(cfg).unwrap();
        for i in 0..8usize {
            server
                .publish(&format!("churn/page-{i}"), &bench_blob(i, blob_len))
                .unwrap();
        }
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        addrs.push(listener.local_addr().unwrap());
        serve_with(&server, listener, rcfg).unwrap();
        servers.push(server);
    }
    let (addr0, addr1) = (addrs[0], addrs[1]);

    // Phase 1: churn waves. Every session is born, does one real private
    // GET, and dies — the worst case for per-session setup cost.
    let mut rows = Vec::new();
    let mut total_sessions = 0u64;
    let mut total_errors = 0u64;
    for wave in 0..waves {
        let start = std::time::Instant::now();
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut ok = 0u64;
                    let mut errors = 0u64;
                    for s in 0..sessions_per_worker {
                        let attempt = || -> Result<(), lightweb_core::ZltpError> {
                            let mut client = TwoServerZltp::connect(
                                std::net::TcpStream::connect(addr0)?,
                                std::net::TcpStream::connect(addr1)?,
                            )?;
                            let page = (w * sessions_per_worker + s) % 8;
                            let blob = client.private_get(&format!("churn/page-{page}"))?;
                            assert_eq!(blob.len(), blob_len);
                            client.close()
                        };
                        match attempt() {
                            Ok(()) => ok += 1,
                            Err(_) => errors += 1,
                        }
                    }
                    (ok, errors)
                })
            })
            .collect();
        let (ok, errors) = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, 0u64), |(a, b), (o, e)| (a + o, b + e));
        let elapsed = start.elapsed().as_secs_f64();
        let rate = ok as f64 / elapsed.max(1e-9);
        total_sessions += ok;
        total_errors += errors;
        rows.push(vec![
            format!("{wave}"),
            ok.to_string(),
            errors.to_string(),
            format!("{:.0}", rate),
            format!("{:.1}", elapsed * 1e3),
        ]);
        if r.json {
            events::emit(
                "reproduce.churn.wave",
                &[
                    ("wave", Field::U64(wave as u64)),
                    ("sessions", Field::U64(ok)),
                    ("errors", Field::U64(errors)),
                    ("sessions_per_s", Field::F64(rate)),
                ],
            );
        }
    }
    r.table(
        &["wave", "sessions", "errors", "sessions/s", "wall (ms)"],
        &rows,
    );

    // Phase 2: slow-loris fleet. Sessions complete the hello and go
    // silent; only the reactor evicts them (the threads model would hold
    // a parked thread per victim forever, which is the point).
    if io_model == IoModel::Reactor {
        let hello = encode_frame(
            &Message::ClientHello {
                version: PROTOCOL_VERSION,
                modes: vec![Mode::TwoServerPir.to_wire()],
            },
            None,
        )
        .unwrap();
        let loris_start = std::time::Instant::now();
        let handles: Vec<_> = (0..idle_sessions)
            .map(|_| {
                let hello = hello.clone();
                std::thread::spawn(move || -> Option<f64> {
                    let mut stream = std::net::TcpStream::connect(addr0).ok()?;
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .ok()?;
                    stream.write_all(&hello).ok()?;
                    // Swallow the ServerHello, then go silent.
                    let mut head = [0u8; 5];
                    stream.read_exact(&mut head).ok()?;
                    let len = u32::from_be_bytes(head[..4].try_into().unwrap()) as usize;
                    let mut body = vec![0u8; len.checked_sub(1)?];
                    stream.read_exact(&mut body).ok()?;
                    let parked = std::time::Instant::now();
                    let mut buf = [0u8; 8];
                    match stream.read(&mut buf) {
                        Ok(0) | Err(_) => Some(parked.elapsed().as_secs_f64() * 1e3),
                        Ok(_) => None,
                    }
                })
            })
            .collect();
        let mut reap_ms: Vec<f64> = handles
            .into_iter()
            .filter_map(|h| h.join().unwrap())
            .collect();
        reap_ms.sort_by(f64::total_cmp);
        let wall_ms = loris_start.elapsed().as_secs_f64() * 1e3;
        let snap = lightweb_telemetry::registry().snapshot();
        let reaped = snap
            .counters
            .get("reactor.sessions.reaped")
            .copied()
            .unwrap_or(0);
        r.table(
            &[
                "idle sessions",
                "reaped (EOF seen)",
                "reaped (counter)",
                "reap p50 (ms)",
                "reap max (ms)",
                "phase wall (ms)",
            ],
            &[vec![
                idle_sessions.to_string(),
                reap_ms.len().to_string(),
                reaped.to_string(),
                format!("{:.0}", percentile_exact(&reap_ms, 0.50)),
                format!("{:.0}", reap_ms.last().copied().unwrap_or(0.0)),
                format!("{:.0}", wall_ms),
            ]],
        );
        if r.json {
            events::emit(
                "reproduce.churn.reap",
                &[
                    ("idle_sessions", Field::U64(idle_sessions as u64)),
                    ("reaped_eof", Field::U64(reap_ms.len() as u64)),
                    ("reaped_counter", Field::U64(reaped)),
                    ("reap_p50_ms", Field::F64(percentile_exact(&reap_ms, 0.50))),
                    (
                        "idle_timeout_ms",
                        Field::U64(rcfg.idle_timeout.as_millis() as u64),
                    ),
                ],
            );
        }
        if reap_ms.len() < idle_sessions {
            r.note(&format!(
                "WARNING: only {}/{} idle sessions were reaped\n",
                reap_ms.len(),
                idle_sessions
            ));
        }
    } else {
        r.note("threads io model has no idle reaper; skipping the slow-loris phase (run with LIGHTWEB_IO_MODEL=reactor)\n");
    }

    for server in &servers {
        server.shutdown();
    }
    let snap = lightweb_telemetry::registry().snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);
    r.note(&format!(
        "{total_sessions} churned sessions ({total_errors} errors); server counters: \
         sessions={} accepted={} reaped={}\n",
        counter("zltp.server.sessions"),
        counter("reactor.sessions.accepted"),
        counter("reactor.sessions.reaped"),
    ));
}

// =====================================================================
// persist — durability & crash recovery smoke (lightweb-store). Not a
// paper experiment: drives the WAL → snapshot → recovery path end to
// end against a real state directory so CI can publish, kill the
// process mid-run, restart, and verify the recovered universe serves
// byte-identical blobs through a two-server ZLTP session.
// =====================================================================

/// The fixed content set the persist smoke converges on across runs.
const PERSIST_DOMAIN: &str = "persist.site";
const PERSIST_PUBLISHER: &str = "Repro";
const PERSIST_PAGES: usize = 8;

/// Deterministic payload for page `i`. Later pages exceed the 1 KiB
/// small-tier blob and chain across continuation parts.
fn persist_payload(i: usize) -> Vec<u8> {
    (0..120 + i * 450)
        .map(|j| ((i * 31 + j * 7) % 251) as u8)
        .collect()
}

fn persist_experiment(r: &Reporter, state_dir: &std::path::Path, kill_after: Option<usize>) {
    use lightweb_store::StoreConfig;
    use lightweb_universe::blob::continuation_path;
    use lightweb_universe::{decode_chain, BlobError, Universe, UniverseConfig};

    r.section("persist: durability & crash recovery smoke (lightweb-store)");
    let store_cfg = StoreConfig {
        snapshot_every_ops: 6,
        ..StoreConfig::default()
    };
    let u = Universe::open_durable(UniverseConfig::small_test("persist"), state_dir, store_cfg)
        .expect("open durable universe");
    let backend = u.backend().expect("durable backend");
    let recovered = u.num_data_values();
    r.note(&format!(
        "recovered {} data value(s), {} code blob(s) from {} (seq {}, snapshot seq {})",
        recovered,
        u.num_code_blobs(),
        state_dir.display(),
        backend.seq(),
        backend.snapshot_seq(),
    ));

    // Converge on the fixed content set, journaling every mutation. With
    // --kill-after N, abort() after N new publishes: no destructors, no
    // graceful shutdown — the next run must recover from WAL + snapshot.
    let published = u.store_state();
    let mut new_publishes = 0usize;
    let kill_check = |count: &mut usize| {
        *count += 1;
        if kill_after == Some(*count) {
            // Flush human output so CI logs show how far we got.
            eprintln!("persist: aborting after {count} publish(es) to simulate a crash");
            std::process::abort();
        }
    };
    if u.owner_of(PERSIST_DOMAIN).is_none() {
        u.register_domain(PERSIST_DOMAIN, PERSIST_PUBLISHER)
            .unwrap();
        kill_check(&mut new_publishes);
    }
    if !published.code.contains_key(PERSIST_DOMAIN) {
        u.publish_code(
            PERSIST_PUBLISHER,
            PERSIST_DOMAIN,
            "route \"/\" {\n fetch \"persist.site/page-0\"\n render \"{data.0}\"\n }",
        )
        .unwrap();
        kill_check(&mut new_publishes);
    }
    for i in 0..PERSIST_PAGES {
        let path = format!("{PERSIST_DOMAIN}/page-{i}");
        if !published.data.contains_key(&path) {
            u.publish_data(PERSIST_PUBLISHER, &path, &persist_payload(i))
                .unwrap();
            kill_check(&mut new_publishes);
        }
    }

    // Verify every page byte-for-byte through a live two-server session —
    // both the values recovered from disk and the ones just published.
    let (c0, c1) = u.connect_data();
    let mut client = TwoServerZltp::connect(c0, c1).unwrap();
    let max_parts = u.config().max_chain_parts;
    let mut rows = Vec::new();
    for i in 0..PERSIST_PAGES {
        let path = format!("{PERSIST_DOMAIN}/page-{i}");
        let got = decode_chain(max_parts, |part| {
            let p = if part == 0 {
                path.clone()
            } else {
                continuation_path(&path, part)
            };
            client
                .private_get(&p)
                .map_err(|e| BlobError::Corrupt(e.to_string()))
        })
        .unwrap();
        let want = persist_payload(i);
        assert_eq!(got, want, "recovered payload mismatch at {path}");
        rows.push(vec![
            path,
            format!("{}", want.len()),
            format!(
                "{}",
                want.len()
                    .div_ceil(u.config().tier.data_blob_len() - 5)
                    .max(1)
            ),
            "ok".into(),
        ]);
    }
    client.close().unwrap();
    r.table(&["path", "bytes", "parts", "private-GET"], &rows);

    // Exercise the sharded-deployment persistence path too: persist the
    // front-end split's inputs beside the universe journal, rebuild it
    // from disk, and check a private answer against the live build.
    let dep_dir = state_dir.join("deployment");
    let params = DpfParams::with_default_termination(12).unwrap();
    let record_len = 128usize;
    let entries: Vec<(u64, Vec<u8>)> = (0..PERSIST_PAGES as u64)
        .map(|i| {
            (
                i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % params.domain_size(),
                persist_payload(i as usize % 3)[..record_len.min(120)]
                    .iter()
                    .copied()
                    .chain(std::iter::repeat(0))
                    .take(record_len)
                    .collect(),
            )
        })
        .collect();
    lightweb_core::deployment::ShardedDeployment::persist_entries(
        &dep_dir, params, 2, record_len, &entries,
    )
    .unwrap();
    let (recovered_dep, recovered_entries) =
        lightweb_core::deployment::ShardedDeployment::from_state_dir(&dep_dir).unwrap();
    assert_eq!(recovered_entries, entries, "deployment entries round-trip");
    let live_dep =
        lightweb_core::deployment::ShardedDeployment::from_entries(params, 2, record_len, entries)
            .unwrap();
    let (key, _) = gen(&params, 99);
    assert_eq!(
        recovered_dep.answer(&key).unwrap().0,
        live_dep.answer(&key).unwrap().0,
        "recovered sharded deployment answers differently"
    );

    u.snapshot_now().unwrap();
    let backend = u.backend().unwrap();
    r.note(&format!(
        "published {} new value(s) this run; all {} pages verified over ZLTP; sharded deployment \
         recovered from disk answers identically; compacted to snapshot seq {}\n",
        new_publishes,
        PERSIST_PAGES,
        backend.snapshot_seq(),
    ));
}

// =====================================================================
// E11 (extension) - timing leakage (SS3.2's admitted residual leak) and
// the constant-rate pacer that closes it.
// =====================================================================
fn e11_timing(r: &Reporter) {
    use lightweb_workload::timing::{
        extract_features, paced_observation, Archetype, TimingClassifier, TimingFeatures,
    };
    r.section("E11 (extension): visit-timing leakage and constant-rate cover");
    let mut rng = StdRng::seed_from_u64(7);
    let mut dataset = |n: usize| -> Vec<(usize, TimingFeatures)> {
        let mut out = Vec::new();
        for (label, arche) in Archetype::all().iter().enumerate() {
            for _ in 0..n {
                out.push((label, extract_features(&arche.day_of_visits(&mut rng))));
            }
        }
        out
    };
    let clf = TimingClassifier::train(&dataset(20));
    let raw_acc = clf.accuracy(&dataset(10));

    let paced = extract_features(&paced_observation(300.0, 15.0));
    let paced_train: Vec<(usize, TimingFeatures)> = (0..3)
        .flat_map(|l| (0..10).map(move |_| (l, paced)))
        .collect();
    let paced_clf = TimingClassifier::train(&paced_train);
    let paced_test: Vec<(usize, TimingFeatures)> = (0..3).map(|l| (l, paced)).collect();
    let paced_acc = paced_clf.accuracy(&paced_test);

    let rows = vec![
        vec![
            "raw lightweb (timing visible)".into(),
            format!("{:.0}%", raw_acc * 100.0),
        ],
        vec![
            "with constant-rate pacer (5-min slots)".into(),
            format!("{:.0}%", paced_acc * 100.0),
        ],
        vec!["random guessing (3 archetypes)".into(), "33%".into()],
    ];
    r.table(
        &["observation channel", "archetype-classification accuracy"],
        &rows,
    );
    r.note("the paper's SS3.2 example ('a page every five minutes in the morning' = news reader) is real but fixable with cover traffic at constant rate\n");
}

// =====================================================================
// E12 (extension) — parallel scan scaling: the ScanPool partitioning the
// E1 workload (DPF full-domain eval + XOR scan) across worker threads.
// Answers are asserted bit-identical to the serial path at every width.
// =====================================================================
fn e12_scan_parallel(r: &Reporter) {
    r.section("E12 (extension): scan-pool thread scaling");
    let mib = shard_mib_from_env().min(64);
    let shard = build_shard(mib, 1024);
    let params = shard.params;
    let (k0, _) = gen(&params, 3);
    let serial_bits = k0.eval_full();
    let serial_answer = shard.server.scan(&serial_bits).unwrap();

    let client = TwoServerClient::new(params, 1024);
    let bit_vecs: Vec<Vec<u8>> = (0..16u64)
        .map(|i| {
            client
                .query_slot((i * 97) % params.domain_size())
                .key0
                .eval_full()
        })
        .collect();

    let reps = 3;
    let mut rows = Vec::new();
    let mut base_total = None;
    for threads in [1usize, 2, 4] {
        let pool = ScanPool::new(threads);
        // Correctness before speed: the pooled paths must be
        // bit-identical to the serial ones.
        assert_eq!(pool.eval_full(&k0), serial_bits, "eval parity @ {threads}t");
        assert_eq!(
            pool.scan(&shard.server, &serial_bits).unwrap(),
            serial_answer,
            "scan parity @ {threads}t"
        );
        let eval = time_mean(reps, || {
            std::hint::black_box(pool.eval_full(&k0));
        });
        let scan = time_mean(reps, || {
            std::hint::black_box(pool.scan(&shard.server, &serial_bits).unwrap());
        });
        let (_, batch16) = time_once(|| pool.scan_batch(&shard.server, &bit_vecs).unwrap());
        let total = eval + scan;
        let speedup = match base_total {
            None => {
                base_total = Some(total);
                1.0
            }
            Some(base) => base.as_secs_f64() / total.as_secs_f64(),
        };
        rows.push(vec![
            threads.to_string(),
            fmt_ms(eval),
            fmt_ms(scan),
            fmt_ms(total),
            format!("{speedup:.2}x"),
            fmt_ms(batch16),
        ]);
    }
    r.table(
        &[
            "threads",
            "DPF eval (ms)",
            "scan (ms)",
            "total (ms)",
            "speedup",
            "batch-16 scan (ms)",
        ],
        &rows,
    );
    r.note(&format!(
        "host parallelism: {} (speedups flatten at the core count; answers verified identical at every width)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
}

// =====================================================================
// Ablations - design choices DESIGN.md calls out (run: `reproduce ablations`).
// =====================================================================
fn ablations(r: &Reporter) {
    r.section("A1: DPF early-termination width (full-domain eval at d=16)");
    let mut rows = Vec::new();
    for term in [0u32, 3, 5, 7, 9, 11] {
        let params = DpfParams::new(16, term).unwrap();
        let (k0, _) = gen(&params, 101);
        let t = time_mean(5, || {
            std::hint::black_box(k0.eval_full());
        });
        rows.push(vec![
            term.to_string(),
            (params.tree_depth()).to_string(),
            params.leaf_block_len().to_string(),
            fmt_ms(t),
        ]);
    }
    r.table(
        &["nu", "tree depth", "leaf block B", "eval_full (ms)"],
        &rows,
    );
    r.note(
        "choice: nu=7 - deeper trees pay a PRG call per node; wider leaves pay conversion bytes\n",
    );

    r.section("A2: universe size tiers (paper SS3.5)");
    // Per-request implications of the small/medium/large fixed blob sizes
    // for a fixed 64 MiB of content.
    let mut rows = Vec::new();
    for (tier, blob) in [
        ("small", 1024usize),
        ("medium (paper)", 4096),
        ("large", 16384),
    ] {
        let shard = build_shard(64, blob);
        let (k0, _) = gen(&shard.params, 9);
        let (_, t) = time_once(|| shard.server.answer(&k0).unwrap());
        rows.push(vec![
            tier.to_string(),
            blob.to_string(),
            shard.server.len().to_string(),
            format!("{}", shard.params.domain_bits()),
            fmt_ms(t),
            format!("{:.1}", (2 * blob) as f64 / 1024.0),
        ]);
    }
    r.table(
        &[
            "tier",
            "blob B",
            "blobs (64 MiB)",
            "domain bits",
            "request (ms)",
            "download KiB",
        ],
        &rows,
    );
    r.note("choice: same stored bytes scan in ~the same time; bigger blobs buy fewer slots and bigger downloads - the SS3.5 cost/coverage trade\n");
}

/// Shared measurement of the benchmark shard: per-request DPF and scan
/// times, plus batched latency at the paper's batch size of 16.
struct MeasuredShard {
    shard: BenchShard,
    dpf: Duration,
    scan: Duration,
    batch16_latency: Duration,
}

fn measure_shard(mib: usize, record_len: usize) -> MeasuredShard {
    let shard = build_shard(mib, record_len);
    let params = shard.params;
    let (k0, _) = gen(&params, 12345 % params.domain_size());

    let reps = 3;
    let dpf = time_mean(reps, || {
        std::hint::black_box(k0.eval_full());
    });
    let bits = k0.eval_full();
    let scan = time_mean(reps, || {
        std::hint::black_box(shard.server.scan(&bits).unwrap());
    });

    let client = TwoServerClient::new(params, record_len);
    let keys: Vec<_> = (0..16)
        .map(|i| client.query_slot((i * 31) % params.domain_size()).key0)
        .collect();
    let (_, batch16_latency) = time_once(|| shard.server.answer_batch(&keys).unwrap());

    MeasuredShard {
        shard,
        dpf,
        scan,
        batch16_latency,
    }
}

/// Drive a real batched two-server ZLTP deployment end to end so the E1
/// telemetry dump covers the whole stack (sessions, batcher, PIR scan,
/// transport) rather than just the kernel microbenchmarks: four client
/// threads issue overlapping GETs against a pair of in-process servers
/// with a 16-request batch window.
fn e1_drive_zltp_session() {
    let servers: Vec<InProcServer> = (0..2u8)
        .map(|party| {
            let mut cfg = ServerConfig::small("e1-zltp", party);
            cfg.blob_len = 1024;
            cfg.batch = BatchConfig {
                max_batch: 16,
                window: Duration::from_millis(10),
            };
            let server = ZltpServer::new(cfg).unwrap();
            for i in 0..8 {
                server
                    .publish(&format!("e1/page-{i}"), &[i as u8; 1024])
                    .unwrap();
            }
            InProcServer::new(server)
        })
        .collect();
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let c0 = servers[0].connect();
            let c1 = servers[1].connect();
            std::thread::spawn(move || {
                let mut client = TwoServerZltp::connect(c0, c1).unwrap();
                for i in 0..4 {
                    let key = format!("e1/page-{}", (t + i) % 8);
                    let blob = client.private_get(&key).unwrap();
                    assert_eq!(blob.len(), 1024);
                }
                client.close().unwrap();
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    for s in &servers {
        s.server().shutdown();
    }
}

// =====================================================================
// E1 — §5.1 server computation: 167 ms/request (64 DPF + 103 scan) on a
// 1 GiB shard with domain 2^22.
// =====================================================================
fn e1_server_compute(r: &Reporter) {
    r.section("E1: per-request server computation (paper §5.1)");
    let mib = shard_mib_from_env();
    let m = measure_shard(mib, 1024);
    let total = m.dpf + m.scan;

    // Extrapolate to the paper's 1 GiB / 2^22 operating point: the scan is
    // linear in stored bytes; DPF full-domain evaluation is linear in the
    // slot-domain size.
    let scale_scan = 1024.0 / mib as f64;
    let scale_dpf = 2f64.powi(22 - m.shard.params.domain_bits() as i32);
    let scan_1gib = m.scan.as_secs_f64() * scale_scan;
    let dpf_1gib = m.dpf.as_secs_f64() * scale_dpf;

    let rows = vec![
        vec![
            format!("ours ({} MiB, d={})", mib, m.shard.params.domain_bits()),
            fmt_ms(m.dpf),
            fmt_ms(m.scan),
            fmt_ms(total),
        ],
        vec![
            "ours, extrapolated to 1 GiB / d=22".into(),
            format!("{:.2}", dpf_1gib * 1000.0),
            format!("{:.2}", scan_1gib * 1000.0),
            format!("{:.2}", (dpf_1gib + scan_1gib) * 1000.0),
        ],
        vec![
            "paper (1 GiB, d=22, c5.large + AVX)".into(),
            "64.00".into(),
            "103.00".into(),
            "167.00".into(),
        ],
    ];
    r.table(
        &[
            "configuration",
            "DPF eval (ms)",
            "data scan (ms)",
            "total (ms)",
        ],
        &rows,
    );
    r.note(&format!(
        "shape check: scan dominates DPF ({}); per-request cost is linear in shard size",
        if m.scan > m.dpf {
            "yes, as in the paper"
        } else {
            "NO — differs from paper"
        }
    ));

    e1_drive_zltp_session();
    r.note("(drove 4 concurrent clients x 4 GETs through a batched two-server ZLTP pair; run with --telemetry for the full-stack metric dump)\n");
}

// =====================================================================
// E2 — §5.1 batching: latency/throughput trade. Paper: b=1 → 0.51 s,
// 2 req/s; b=16 → 2.6 s, 6 req/s.
// =====================================================================
fn e2_batching(r: &Reporter) {
    r.section("E2: request batching (paper §5.1)");
    let mib = shard_mib_from_env().min(64);
    let shard = build_shard(mib, 1024);
    let params = shard.params;
    let client = TwoServerClient::new(params, 1024);

    let mut rows = Vec::new();
    for batch in [1usize, 2, 4, 8, 16, 32] {
        let keys: Vec<_> = (0..batch)
            .map(|i| {
                client
                    .query_slot((i as u64 * 97) % params.domain_size())
                    .key0
            })
            .collect();
        let (_, elapsed) = time_once(|| shard.server.answer_batch(&keys).unwrap());
        let throughput = batch as f64 / elapsed.as_secs_f64();
        rows.push(vec![
            batch.to_string(),
            fmt_ms(elapsed),
            format!(
                "{:.2}",
                fmt_ms(elapsed).parse::<f64>().unwrap() / batch as f64
            ),
            format!("{throughput:.1}"),
        ]);
    }
    r.table(
        &[
            "batch size",
            "latency (ms)",
            "amortized ms/req",
            "throughput (req/s)",
        ],
        &rows,
    );
    r.note("paper (1 GiB shard): b=1 → 510 ms latency, 2 req/s; b=16 → 2600 ms, 6 req/s");
    r.note("shape check: batching trades latency for throughput because the scan is paid once per batch\n");
}

// =====================================================================
// E3 — §5.1 communication: DPF key size (λ+2)·d; 13.6 KiB/request total
// at d=22 with 4 KiB buckets (2 servers).
// =====================================================================
fn e3_communication(r: &Reporter) {
    r.section("E3: communication per request (paper §5.1)");
    let bucket = 4096usize;
    let mut rows = Vec::new();
    for d in [16u32, 18, 20, 22, 24, 26, 28] {
        let params = DpfParams::with_default_termination(d).unwrap();
        let (k0, k1) = gen(&params, 0);
        let ours_up = k0.serialized_len() + k1.serialized_len();
        // The paper's arithmetic prices (λ+2)·d at 130 *bytes* per level
        // (13.6 KiB at d=22 only works out that way); print both readings.
        let paper_bits_up = 2 * paper_key_size_bytes(d);
        let paper_bytes_up = 2 * 130 * d as usize;
        let download = 2 * bucket;
        rows.push(vec![
            d.to_string(),
            ours_up.to_string(),
            paper_bits_up.to_string(),
            paper_bytes_up.to_string(),
            download.to_string(),
            format!("{:.1}", (ours_up + download) as f64 / 1024.0),
            format!("{:.1}", (paper_bytes_up + download) as f64 / 1024.0),
        ]);
    }
    r.table(
        &[
            "d",
            "ours: upload B (2 keys)",
            "paper (λ+2)d bits → B",
            "paper arithmetic (130 B/level)",
            "download B (2 buckets)",
            "ours total KiB",
            "paper total KiB",
        ],
        &rows,
    );
    r.note("paper at d=22: 13.6 KiB per request (incl. 2× two-server overhead)");
    r.note("note: our keys are smaller because early termination shortens the tree\n");
}

// =====================================================================
// E4 — Table 2: estimated deployment costs for C4 and Wikipedia.
// =====================================================================
fn e4_table2(r: &Reporter) {
    r.section("E4: Table 2 — estimated costs of running ZLTP (paper §5.2)");
    let mib = shard_mib_from_env();
    let m = measure_shard(mib, 1024);

    let ours = ShardMeasurement {
        shard_gib: mib as f64 / 1024.0,
        seconds_per_request: (m.dpf + m.scan).as_secs_f64(),
        dpf_seconds: m.dpf.as_secs_f64(),
        scan_seconds: m.scan.as_secs_f64(),
        domain_bits: m.shard.params.domain_bits(),
        bucket_bytes: 4096,
    };
    let paper = paper_measurements();
    let inst = InstanceType::c5_large();
    let batched_latency = m.batch16_latency.as_secs_f64();

    let mut rows = Vec::new();
    for dataset in [DatasetSpec::c4(), DatasetSpec::wikipedia()] {
        for (label, shard, lat) in [("ours", &ours, batched_latency), ("paper", &paper, 2.6)] {
            let est = estimate_deployment(&dataset, shard, &inst, lat);
            rows.push(vec![
                format!("{} ({label})", dataset.name),
                format!("{:.0}", dataset.total_gib),
                format!("{}M", dataset.pages / 1_000_000),
                format!("{:.1}", dataset.avg_page_kib),
                est.shards.to_string(),
                format!("{:.1}", est.vcpu_seconds),
                format!("${:.4}", est.dollars_per_request),
                format!("{:.1}", est.communication_kib),
            ]);
        }
    }
    r.table(
        &[
            "dataset", "GiB", "pages", "avg KiB", "shards", "vCPU sec", "req cost", "comm KiB",
        ],
        &rows,
    );
    r.note("paper Table 2: C4 → 204 vCPU-sec, $0.002, 15.9 KiB; Wikipedia → 10 vCPU-sec, $0.0001, 14.9 KiB");
    r.note(
        "(our 'shards' count uses this machine's shard unit; the estimation method is §5.2's)\n",
    );
}

// =====================================================================
// E5 — §5.2 distributed DPF evaluation across shards.
// =====================================================================
fn e5_distributed_dpf(r: &Reporter) {
    r.section("E5: front-end split of DPF evaluation (paper §5.2)");
    let params = DpfParams::with_default_termination(18).unwrap();
    let record_len = 256usize;
    let n_records = 1 << 14;
    let entries: Vec<(u64, Vec<u8>)> = {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut i = 0u64;
        while out.len() < n_records {
            let slot = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) % params.domain_size();
            i += 1;
            if seen.insert(slot) {
                out.push((slot, vec![(i & 0xFF) as u8; record_len]));
            }
        }
        out
    };
    let mono = PirServer::from_entries(params, record_len, entries.clone()).unwrap();
    let (key, _) = gen(&params, 777);
    let reference = mono.answer(&key).unwrap();

    let mut rows = Vec::new();
    for prefix in [1u32, 2, 3, 4, 6] {
        let dep = lightweb_core::deployment::ShardedDeployment::from_entries(
            params,
            prefix,
            record_len,
            entries.clone(),
        )
        .unwrap();
        let (front_nodes, frontend_time) = time_once(|| key.eval_prefix(prefix));
        let (result, total) = time_once(|| dep.answer(&key).unwrap());
        assert_eq!(result.0, reference, "sharded answer mismatch");
        rows.push(vec![
            format!("2^{prefix} = {}", 1 << prefix),
            fmt_ms(frontend_time),
            fmt_ms(total),
            format!("{:.3}", total.as_secs_f64() * 1000.0 / (1 << prefix) as f64),
            front_nodes.len().to_string(),
        ]);
    }
    r.table(
        &[
            "shards",
            "front-end (ms)",
            "all shards seq. (ms)",
            "per-shard (ms)",
            "sub-trees shipped",
        ],
        &rows,
    );
    r.note("shape check: per-shard work falls ~2x per prefix bit — a shard does exactly the small-domain work, as §5.2 argues\n");
}

// =====================================================================
// E6 — §4 economics: $15/month, Google Fi comparison.
// =====================================================================
fn e6_economics(r: &Reporter) {
    r.section("E6: who pays? (paper §4, §5.2)");
    let paper_inputs = UserCostInputs::paper();
    let monthly = economics::monthly_user_cost(&paper_inputs);
    let nyt = economics::google_fi_cost(economics::NYT_HOMEPAGE_MIB * 1024.0 * 1024.0);
    let four_kib_fi = economics::google_fi_cost(4096.0);
    let rows = vec![
        vec![
            "monthly user cost (50 pg/day × 5 GETs, $0.002/GET)".into(),
            format!("${monthly:.2}"),
            "$15 (≈ Netflix)".into(),
        ],
        vec![
            "22.4 MiB NYT homepage over Google Fi".into(),
            format!("${nyt:.3}"),
            "$0.218".into(),
        ],
        vec![
            "4 KiB over Google Fi".into(),
            format!("${four_kib_fi:.6}"),
            "$0.000038".into(),
        ],
        vec!["4 KiB over ZLTP".into(), "$0.002".into(), "$0.002".into()],
        vec![
            "ZLTP / Fi overhead".into(),
            format!("{:.0}x", economics::zltp_overhead_factor(4096.0, 0.002)),
            "~two orders of magnitude".into(),
        ],
    ];
    r.table(&["quantity", "computed", "paper"], &rows);
    r.note("");
}

// =====================================================================
// E7 — §5.1 collision probability and mitigations.
// =====================================================================
fn e7_collisions(r: &Reporter) {
    r.section("E7: keyword-to-slot collisions (paper §5.1)");
    let mut rows = Vec::new();
    for d in [20u32, 21, 22, 23, 24, 26] {
        let p = analytic_collision_probability(1 << 20, d);
        rows.push(vec![
            format!("2^{d}"),
            "2^20".to_string(),
            format!("{p:.3}"),
            if d == 22 {
                "paper's operating point (≤ 1/4)".into()
            } else {
                String::new()
            },
        ]);
    }
    r.table(
        &["domain", "stored keys", "P(fresh key collides)", "note"],
        &rows,
    );

    // Monte Carlo at a scaled-down but identically-loaded point.
    let map = KeywordMap::new(&[0x11; 16], 14);
    let occupied: std::collections::HashSet<u64> = (0..(1u32 << 12))
        .map(|i| map.slot(format!("stored-{i}").as_bytes()))
        .collect();
    let probes = 4000;
    let hits = (0..probes)
        .filter(|i| occupied.contains(&map.slot(format!("fresh-{i}").as_bytes())))
        .count();
    r.note(&format!(
        "Monte Carlo at the same 1/4 load (2^12 keys in 2^14 slots): measured {:.3}, analytic {:.3}",
        hits as f64 / probes as f64,
        analytic_collision_probability(occupied.len() as u64, 14)
    ));

    // Cuckoo mitigation: survives 45% load where single-hash collides often.
    let hasher = CuckooHasher::new(&[0x22; 16], 13);
    let keys: Vec<Vec<u8>> = (0..3686u32).map(|i| format!("k{i}").into_bytes()).collect();
    let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    match build_assignment(&hasher, &refs) {
        Ok(asg) => r.note(&format!(
            "cuckoo mitigation: {} keys placed at 45% load of 2^13 slots ({} evictions); single-hash P(collision) there would be {:.2}",
            asg.slots.len(),
            asg.evictions,
            analytic_collision_probability(3686, 13)
        )),
        Err(e) => r.note(&format!("cuckoo build failed unexpectedly: {e}")),
    }
    r.note("");
}

// =====================================================================
// E8 — §2.2 mode comparison: PIR linear vs enclave/ORAM polylog.
// =====================================================================
fn e8_modes(r: &Reporter) {
    r.section("E8: modes of operation — server cost scaling (paper §2.2)");
    let record_len = 256usize;
    let mut rows = Vec::new();
    for n_pow in [10u32, 12, 14] {
        let n = 1usize << n_pow;
        // Two-server PIR.
        let params = DpfParams::with_default_termination(n_pow + 2).unwrap();
        let entries: Vec<(u64, Vec<u8>)> = (0..n as u64)
            .map(|i| (i * 4 + 1, vec![i as u8; record_len]))
            .collect();
        let pir = PirServer::from_entries(params, record_len, entries).unwrap();
        let (k0, _) = gen(&params, 5);
        let pir_time = time_mean(3, || {
            std::hint::black_box(pir.answer(&k0).unwrap());
        });

        // Enclave + Path ORAM.
        let mut kv = ObliviousKvStore::new(n as u64, record_len).unwrap();
        for i in 0..n {
            kv.put(format!("k{i}").as_bytes(), &vec![i as u8; record_len])
                .unwrap();
        }
        let oram_time = time_mean(20, || {
            std::hint::black_box(kv.get(b"k7").unwrap());
        });

        // Single-server LWE.
        let lwe_params = LweParams { n: 256 };
        let records: Vec<Vec<u8>> = (0..n).map(|i| vec![i as u8; record_len]).collect();
        let lwe = LweServer::new(lwe_params, record_len, records).unwrap();
        let lwe_client = LweClient::new(lwe_params, lwe.public_seed(), lwe.cols(), record_len);
        let q = lwe_client.query(3);
        let lwe_time = time_mean(3, || {
            std::hint::black_box(lwe.answer(&q.payload).unwrap());
        });

        let us = |d: Duration| format!("{:.1}", d.as_secs_f64() * 1e6);
        rows.push(vec![
            format!("2^{n_pow}"),
            us(pir_time),
            us(lwe_time),
            us(oram_time),
        ]);
    }
    r.table(
        &[
            "pairs",
            "2-server PIR (us)",
            "1-server LWE (us)",
            "enclave ORAM (us)",
        ],
        &rows,
    );
    r.note("shape check: PIR and LWE grow linearly with the store; the enclave's ORAM cost is polylogarithmic (near-flat), as §2.2 claims\n");
}

// =====================================================================
// E9 — §1 motivation: traffic analysis defeats proxies, not lightweb.
// =====================================================================
fn e9_traffic_analysis(r: &Reporter) {
    r.section("E9: website fingerprinting — proxy vs lightweb (paper §1)");
    let mut rng = StdRng::seed_from_u64(99);
    let pages = synthetic_site(40, &mut rng);
    let chance = 1.0 / pages.len() as f64;

    let proxy_train: Vec<(usize, FlowObservation)> = pages
        .iter()
        .enumerate()
        .flat_map(|(label, objs)| {
            (0..8)
                .map(|_| {
                    (
                        label,
                        simulate_proxy_flow(
                            objs,
                            &mut StdRng::seed_from_u64(label as u64 * 31 + 1),
                        ),
                    )
                })
                .collect::<Vec<_>>()
        })
        .collect();
    let proxy_test: Vec<(usize, FlowObservation)> = pages
        .iter()
        .enumerate()
        .map(|(label, objs)| (label, simulate_proxy_flow(objs, &mut rng)))
        .collect();
    let proxy_clf = NearestCentroid::train(&proxy_train);
    let proxy_acc = proxy_clf.accuracy(&proxy_test);

    let lw_train: Vec<(usize, FlowObservation)> = (0..pages.len())
        .flat_map(|label| (0..8).map(move |_| (label, simulate_lightweb_flow(5, 1024))))
        .collect();
    let lw_test: Vec<(usize, FlowObservation)> = (0..pages.len())
        .map(|label| (label, simulate_lightweb_flow(5, 1024)))
        .collect();
    let lw_clf = NearestCentroid::train(&lw_train);
    let lw_acc = lw_clf.accuracy(&lw_test);

    let rows = vec![
        vec![
            "encrypting proxy (per-object sizes visible)".into(),
            format!("{:.0}%", proxy_acc * 100.0),
        ],
        vec![
            "lightweb (fixed 5 × 1 KiB fetches)".into(),
            format!("{:.0}%", lw_acc * 100.0),
        ],
        vec!["random guessing".into(), format!("{:.0}%", chance * 100.0)],
    ];
    r.table(&["channel", "fingerprinting accuracy (40 pages)"], &rows);
    r.note("shape check: the proxy leaks page identity through traffic shape; lightweb's fixed fetch schedule caps the attacker at chance\n");
}

// =====================================================================
// E10 — §5.2 "looking forward": compute-cost trend.
// =====================================================================
fn e10_trend(r: &Reporter) {
    r.section("E10: cost trend (paper §5.2 'looking forward')");
    let now = 0.002f64;
    let mut rows = Vec::new();
    for years in [0.0f64, 5.0, 10.0] {
        rows.push(vec![
            format!("{years:.0}"),
            format!("${:.6}", trend::cost_after_years(now, years)),
        ]);
    }
    r.table(
        &["years from now", "$/request under 16x-per-5y trend"],
        &rows,
    );
    r.note(&format!(
        "order-of-magnitude (10x) reduction reached after {:.1} years — the paper's 'in 5 years … an order of magnitude' claim holds\n",
        trend::years_to_factor(10.0)
    ));
}
