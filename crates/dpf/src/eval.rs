//! DPF evaluation: single-point and full-domain.
//!
//! Full-domain evaluation is the hot path of a ZLTP server: it runs once per
//! private-GET request and its output drives the database scan. The paper's
//! §5.1 microbenchmark attributes 64 ms of the 167 ms per-request cost to
//! this step at `d = 22`.

use crate::key::{mask_seed, CorrectionWord, DpfKey};
use lightweb_crypto::prg::{DpfPrg, Seed, SEED_LEN};

/// Internal node state while walking the seed tree.
#[derive(Clone, Copy)]
pub(crate) struct NodeState {
    pub(crate) seed: Seed,
    pub(crate) bit: bool,
}

#[inline]
pub(crate) fn descend(
    prg: &DpfPrg,
    state: NodeState,
    cw: &CorrectionWord,
    go_right: bool,
) -> NodeState {
    let e = prg.expand(&state.seed);
    let (mut seed, mut bit) = if go_right {
        (e.right_seed, e.right_bit)
    } else {
        (e.left_seed, e.left_bit)
    };
    if state.bit {
        let m = mask_seed(&cw.seed, true);
        for i in 0..SEED_LEN {
            seed[i] ^= m[i];
        }
        bit ^= if go_right { cw.right_bit } else { cw.left_bit };
    }
    NodeState { seed, bit }
}

/// Convert a leaf state into its output block, applying the terminal
/// correction word when the control bit is set.
#[inline]
pub(crate) fn convert_leaf(prg: &DpfPrg, state: NodeState, final_cw: &[u8], out: &mut [u8]) {
    debug_assert_eq!(final_cw.len(), out.len());
    prg.convert(&state.seed, out);
    if state.bit {
        for (o, c) in out.iter_mut().zip(final_cw.iter()) {
            *o ^= *c;
        }
    }
}

impl DpfKey {
    fn root(&self) -> NodeState {
        NodeState {
            seed: self.root_seed,
            bit: self.party == 1,
        }
    }

    /// Evaluate this key's share at a single domain point.
    ///
    /// Cost: one PRG call per tree level plus one leaf conversion —
    /// logarithmic in the domain size. Used by tests and by the client to
    /// sanity-check reconstructed answers; servers use [`DpfKey::eval_full`].
    pub fn eval_point(&self, x: u64) -> bool {
        assert!(x < self.params.domain_size(), "point {x} outside domain");
        let prg = DpfPrg::new();
        let depth = self.params.tree_depth();
        let leaf_index = x >> self.params.term_bits();
        let leaf_offset = x & (self.params.leaf_width() - 1);

        let mut state = self.root();
        for level in 0..depth {
            let go_right = (leaf_index >> (depth - 1 - level)) & 1 == 1;
            state = descend(&prg, state, &self.cws[level as usize], go_right);
        }
        let mut block = vec![0u8; self.params.leaf_block_len()];
        convert_leaf(&prg, state, &self.final_cw, &mut block);
        (block[(leaf_offset / 8) as usize] >> (leaf_offset % 8)) & 1 == 1
    }

    /// Evaluate this key's share over the entire domain.
    ///
    /// Returns a packed bit vector of `params().output_len()` bytes where
    /// bit `x` (byte `x/8`, LSB-first) is the share of `f_alpha(x)`.
    pub fn eval_full(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.params.output_len()];
        self.eval_full_into(&mut out);
        out
    }

    /// [`DpfKey::eval_full`] into a caller-provided buffer — e.g. one row
    /// of a batch's [`BitMatrix`](crate::BitMatrix), so evaluating a whole
    /// batch costs one allocation instead of one per key. Every byte of
    /// `out` is overwritten; `out.len()` must equal
    /// `params().output_len()`.
    pub fn eval_full_into(&self, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            self.params.output_len(),
            "output buffer must be exactly output_len() bytes"
        );
        self.eval_range_into(self.root(), 0, out);
    }

    /// Depth-first traversal from `state` at tree level `level`, writing leaf
    /// blocks into `out` (which must cover exactly the sub-tree's slice of
    /// the output).
    pub(crate) fn eval_range_into(&self, state: NodeState, level: u32, out: &mut [u8]) {
        let prg = DpfPrg::new();
        self.eval_range_rec(&prg, state, level, out);
    }

    fn eval_range_rec(&self, prg: &DpfPrg, state: NodeState, level: u32, out: &mut [u8]) {
        let depth = self.params.tree_depth();
        if level == depth {
            // At a leaf. Sub-byte leaf blocks only occur when the whole
            // output is a single block (enforced by eval_prefix's
            // byte-alignment requirement), so direct copy is safe.
            convert_leaf(prg, state, &self.final_cw, out);
            return;
        }
        let half = out.len() / 2;
        if half == 0 {
            // The remaining sub-tree's output fits in under a byte; fall back
            // to bit-level assembly through a temporary block.
            let mut block = vec![0u8; self.params.leaf_block_len()];
            let mut acc = 0u8;
            let remaining = depth - level;
            let points = self.params.leaf_width() << remaining;
            for i in 0..(1u64 << remaining) {
                let mut st = state;
                for l in 0..remaining {
                    let go_right = (i >> (remaining - 1 - l)) & 1 == 1;
                    st = descend(prg, st, &self.cws[(level + l) as usize], go_right);
                }
                convert_leaf(prg, st, &self.final_cw, &mut block);
                let width = self.params.leaf_width();
                for b in 0..width {
                    let bit = (block[(b / 8) as usize] >> (b % 8)) & 1;
                    acc |= bit << ((i * width + b) % 8);
                }
            }
            debug_assert!(points <= 8);
            out[0] = acc;
            return;
        }
        let left = descend(prg, state, &self.cws[level as usize], false);
        let right = descend(prg, state, &self.cws[level as usize], true);
        let (lo, hi) = out.split_at_mut(half);
        self.eval_range_rec(prg, left, level + 1, lo);
        self.eval_range_rec(prg, right, level + 1, hi);
    }
}

#[cfg(test)]
mod tests {
    use crate::key::{gen_with_seeds, DpfParams};

    fn bit_at(v: &[u8], x: u64) -> bool {
        (v[(x / 8) as usize] >> (x % 8)) & 1 == 1
    }

    #[test]
    fn full_eval_xors_to_unit_vector() {
        let params = DpfParams::new(10, 3).unwrap();
        let alpha = 517;
        let (k0, k1) = gen_with_seeds(&params, alpha, [10; 16], [20; 16]);
        let f0 = k0.eval_full();
        let f1 = k1.eval_full();
        assert_eq!(f0.len(), params.output_len());
        let mut ones = 0;
        for x in 0..params.domain_size() {
            let v = bit_at(&f0, x) ^ bit_at(&f1, x);
            if v {
                ones += 1;
                assert_eq!(x, alpha);
            }
        }
        assert_eq!(ones, 1);
    }

    #[test]
    fn individual_shares_look_balanced() {
        // A single share must not be trivially sparse (that would leak
        // alpha); expect roughly half the bits set.
        let params = DpfParams::new(14, 7).unwrap();
        let (k0, _) = gen_with_seeds(&params, 12345, [1; 16], [2; 16]);
        let f0 = k0.eval_full();
        let ones: u32 = f0.iter().map(|b| b.count_ones()).sum();
        let total = params.domain_size() as u32;
        assert!(
            ones > total / 3 && ones < 2 * total / 3,
            "share is skewed: {ones}/{total} ones"
        );
    }

    #[test]
    fn zero_termination_matches_wide_termination() {
        // The same point function evaluated with different early-termination
        // widths must produce the same reconstructed output.
        let alpha = 99;
        let mut reference: Option<Vec<bool>> = None;
        for term in [0u32, 1, 3, 5, 7] {
            let params = DpfParams::new(9, term).unwrap();
            let (k0, k1) = gen_with_seeds(&params, alpha, [3; 16], [4; 16]);
            let f0 = k0.eval_full();
            let f1 = k1.eval_full();
            let bits: Vec<bool> = (0..params.domain_size())
                .map(|x| bit_at(&f0, x) ^ bit_at(&f1, x))
                .collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(&bits, r, "term={term}"),
            }
        }
    }

    #[test]
    fn tiny_domains_work() {
        // domain_bits = 1 and 2 exercise the sub-byte output path.
        for domain_bits in [1u32, 2, 3] {
            let params = DpfParams::new(domain_bits, 0).unwrap();
            for alpha in 0..params.domain_size() {
                let (k0, k1) = gen_with_seeds(&params, alpha, [5; 16], [6; 16]);
                let f0 = k0.eval_full();
                let f1 = k1.eval_full();
                for x in 0..params.domain_size() {
                    assert_eq!(
                        bit_at(&f0, x) ^ bit_at(&f1, x),
                        x == alpha,
                        "d={domain_bits} alpha={alpha} x={x}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn eval_point_out_of_range_panics() {
        let params = DpfParams::new(4, 1).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [0; 16], [1; 16]);
        k0.eval_point(16);
    }

    #[test]
    fn paper_scale_key_evaluates() {
        // d = 22 as in §5.1 is too slow for a unit test at full domain, but
        // point evaluation at tree depth 15 must work.
        let params = DpfParams::new(22, 7).unwrap();
        let alpha = 3_000_000;
        let (k0, k1) = gen_with_seeds(&params, alpha, [7; 16], [8; 16]);
        assert!(k0.eval_point(alpha) ^ k1.eval_point(alpha));
        assert!(!(k0.eval_point(12345) ^ k1.eval_point(12345)));
    }
}
