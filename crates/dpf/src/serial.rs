//! Wire serialization of DPF keys.
//!
//! The client sends one serialized key to each of the two ZLTP servers per
//! private-GET. §5.1 of the paper reports the key size as `(λ + 2)·d` bits
//! with `λ = 128`, `d = 22` — about 357 bytes. Our layout matches that
//! shape: a fixed header, the root seed, one `(seed, 2 bits)` correction
//! word per tree level, and the terminal correction block.

use crate::key::{CorrectionWord, DpfKey, DpfParams};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lightweb_crypto::prg::SEED_LEN;

/// Magic byte identifying a serialized DPF key (guards against feeding
/// arbitrary query payloads into the evaluator).
const KEY_MAGIC: u8 = 0xD7;

/// Errors decoding a serialized DPF key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDecodeError {
    /// Buffer too short for the declared structure.
    Truncated,
    /// Bad magic byte.
    BadMagic(u8),
    /// Header fields describe invalid parameters.
    BadParams,
    /// Trailing bytes after the key.
    TrailingBytes(usize),
}

impl std::fmt::Display for KeyDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeyDecodeError::Truncated => write!(f, "serialized DPF key truncated"),
            KeyDecodeError::BadMagic(m) => write!(f, "bad DPF key magic byte {m:#x}"),
            KeyDecodeError::BadParams => write!(f, "serialized DPF key has invalid parameters"),
            KeyDecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after DPF key"),
        }
    }
}

impl std::error::Error for KeyDecodeError {}

impl DpfKey {
    /// Exact size in bytes of the serialized key.
    ///
    /// `4 + 16 + depth·17 + leaf_block` — the `17` is a 16-byte seed plus a
    /// packed control-bit byte, the concrete realization of the paper's
    /// `(λ + 2)` bits per level.
    pub fn serialized_len(&self) -> usize {
        4 + SEED_LEN + self.params.tree_depth() as usize * (SEED_LEN + 1) + self.final_cw.len()
    }

    /// Serialize to a byte vector.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.serialized_len());
        buf.put_u8(KEY_MAGIC);
        buf.put_u8(self.params.domain_bits() as u8);
        buf.put_u8(self.params.term_bits() as u8);
        buf.put_u8(self.party);
        buf.put_slice(&self.root_seed);
        for cw in &self.cws {
            buf.put_slice(&cw.seed);
            buf.put_u8((cw.left_bit as u8) | ((cw.right_bit as u8) << 1));
        }
        buf.put_slice(&self.final_cw);
        debug_assert_eq!(buf.len(), self.serialized_len());
        buf.freeze()
    }

    /// Deserialize a key previously produced by [`DpfKey::to_bytes`].
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, KeyDecodeError> {
        if data.len() < 4 + SEED_LEN {
            return Err(KeyDecodeError::Truncated);
        }
        let magic = data.get_u8();
        if magic != KEY_MAGIC {
            return Err(KeyDecodeError::BadMagic(magic));
        }
        let domain_bits = data.get_u8() as u32;
        let term_bits = data.get_u8() as u32;
        let party = data.get_u8();
        if party > 1 {
            return Err(KeyDecodeError::BadParams);
        }
        let params =
            DpfParams::new(domain_bits, term_bits).map_err(|_| KeyDecodeError::BadParams)?;

        let mut root_seed = [0u8; SEED_LEN];
        data.copy_to_slice(&mut root_seed);

        let depth = params.tree_depth() as usize;
        let need = depth * (SEED_LEN + 1) + params.leaf_block_len();
        if data.len() < need {
            return Err(KeyDecodeError::Truncated);
        }
        let mut cws = Vec::with_capacity(depth);
        for _ in 0..depth {
            let mut seed = [0u8; SEED_LEN];
            data.copy_to_slice(&mut seed);
            let bits = data.get_u8();
            cws.push(CorrectionWord {
                seed,
                left_bit: bits & 1 == 1,
                right_bit: bits & 2 == 2,
            });
        }
        let mut final_cw = vec![0u8; params.leaf_block_len()];
        data.copy_to_slice(&mut final_cw);
        if !data.is_empty() {
            return Err(KeyDecodeError::TrailingBytes(data.len()));
        }
        Ok(DpfKey {
            params,
            party,
            root_seed,
            cws,
            final_cw,
        })
    }
}

/// The paper's §5.1 key-size formula, in bytes: `(λ + 2)·d / 8` with
/// `λ = 128`. Exposed so the communication benchmark can print the analytic
/// curve next to measured sizes.
pub fn paper_key_size_bytes(domain_bits: u32) -> usize {
    ((128 + 2) * domain_bits as usize).div_ceil(8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::gen_with_seeds;

    #[test]
    fn roundtrip_exact() {
        let params = DpfParams::new(16, 7).unwrap();
        let (k0, k1) = gen_with_seeds(&params, 777, [1; 16], [2; 16]);
        for k in [k0, k1] {
            let bytes = k.to_bytes();
            assert_eq!(bytes.len(), k.serialized_len());
            let back = DpfKey::from_bytes(&bytes).unwrap();
            assert_eq!(back, k);
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let params = DpfParams::new(8, 2).unwrap();
        let (k0, _) = gen_with_seeds(&params, 5, [1; 16], [2; 16]);
        let bytes = k0.to_bytes();
        for len in 0..bytes.len() {
            assert!(
                DpfKey::from_bytes(&bytes[..len]).is_err(),
                "accepted truncation to {len} bytes"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let params = DpfParams::new(8, 2).unwrap();
        let (k0, _) = gen_with_seeds(&params, 5, [1; 16], [2; 16]);
        let mut bytes = k0.to_bytes().to_vec();
        bytes.push(0);
        assert_eq!(
            DpfKey::from_bytes(&bytes),
            Err(KeyDecodeError::TrailingBytes(1))
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let params = DpfParams::new(8, 2).unwrap();
        let (k0, _) = gen_with_seeds(&params, 5, [1; 16], [2; 16]);
        let mut bytes = k0.to_bytes().to_vec();
        bytes[0] = 0x00;
        assert_eq!(DpfKey::from_bytes(&bytes), Err(KeyDecodeError::BadMagic(0)));
    }

    #[test]
    fn bad_params_rejected() {
        let params = DpfParams::new(8, 2).unwrap();
        let (k0, _) = gen_with_seeds(&params, 5, [1; 16], [2; 16]);
        let mut bytes = k0.to_bytes().to_vec();
        bytes[1] = 0; // domain_bits = 0
        assert_eq!(DpfKey::from_bytes(&bytes), Err(KeyDecodeError::BadParams));
        let mut bytes2 = k0.to_bytes().to_vec();
        bytes2[3] = 2; // party = 2
        assert_eq!(DpfKey::from_bytes(&bytes2), Err(KeyDecodeError::BadParams));
    }

    #[test]
    fn key_size_tracks_paper_formula() {
        // Our serialized key should be within a small constant of the
        // paper's (λ+2)·d bits: we carry the same per-level payload plus a
        // fixed header, root seed, and terminal block.
        let params = DpfParams::new(22, 7).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [1; 16], [2; 16]);
        let paper = paper_key_size_bytes(22); // ~358 bytes
        let ours = k0.serialized_len();
        assert!(ours < paper + 64, "ours={ours} paper={paper}");
        // Early termination makes our tree shallower, so we should not be
        // larger than the formula by more than the fixed parts.
        assert!(ours as f64 > paper as f64 * 0.5);
    }

    #[test]
    fn serialized_key_transfers_between_parties() {
        // A key serialized by the client must evaluate identically after a
        // network hop (simulated by the byte round-trip).
        let params = DpfParams::new(12, 4).unwrap();
        let alpha = 1000;
        let (k0, k1) = gen_with_seeds(&params, alpha, [3; 16], [4; 16]);
        let r0 = DpfKey::from_bytes(&k0.to_bytes()).unwrap();
        let r1 = DpfKey::from_bytes(&k1.to_bytes()).unwrap();
        assert!(r0.eval_point(alpha) ^ r1.eval_point(alpha));
    }
}
