//! Incremental (hierarchical) distributed point functions.
//!
//! The paper's prototype uses "Google's distributed point function library"
//! [28] — which implements *incremental* DPFs: one key pair that defines a
//! point function on **every prefix length** of the hidden index, with an
//! independent value per level. Evaluating a key at hierarchy level `i` on
//! prefix `p` yields a share of `β_i` if `p` is the length-`i` prefix of
//! `α`, and of `0` otherwise.
//!
//! Lightweb has a concrete use for the hierarchy beyond plain PIR: the §4
//! billing problem ("privately collect data on the number of queries
//! received for each domain") is exactly the *private heavy hitters*
//! setting of the paper's citation [11] (Boneh et al.), whose protocol
//! walks prefixes of client-held strings using incremental DPF shares. The
//! [`crate::incremental`] tests include a miniature prefix-count
//! aggregation in that style.
//!
//! Construction: the standard BGI16 tree (shared with [`crate::key`]),
//! plus one *value correction word* per level, computed so the two
//! parties' converted on-path seeds XOR to `β_i`.

use crate::key::{mask_seed, CorrectionWord};
use lightweb_crypto::prg::{DpfPrg, Seed, SEED_LEN};

/// One party's incremental DPF key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IncrementalDpfKey {
    domain_bits: u32,
    value_len: usize,
    party: u8,
    root_seed: Seed,
    cws: Vec<CorrectionWord>,
    /// One value correction word per level (level `i` covers prefixes of
    /// length `i+1`).
    value_cws: Vec<Vec<u8>>,
}

/// Generate an incremental DPF key pair hiding `alpha` with per-level
/// values `betas` (one per prefix length, each exactly `value_len` bytes).
pub fn gen_incremental(
    domain_bits: u32,
    alpha: u64,
    betas: &[Vec<u8>],
    value_len: usize,
) -> (IncrementalDpfKey, IncrementalDpfKey) {
    assert!((1..=40).contains(&domain_bits), "domain_bits out of range");
    assert!(alpha < (1u64 << domain_bits), "alpha outside domain");
    assert_eq!(betas.len(), domain_bits as usize, "one beta per level");
    assert!(
        betas.iter().all(|b| b.len() == value_len),
        "beta length mismatch"
    );

    let prg = DpfPrg::new();
    let seed0 = lightweb_crypto::random_seed();
    let seed1 = lightweb_crypto::random_seed();
    let mut s0 = seed0;
    let mut s1 = seed1;
    let mut t0 = false;
    let mut t1 = true;
    let mut cws = Vec::with_capacity(domain_bits as usize);
    let mut value_cws = Vec::with_capacity(domain_bits as usize);

    for level in 0..domain_bits {
        let bit = (alpha >> (domain_bits - 1 - level)) & 1 == 1;
        let e0 = prg.expand(&s0);
        let e1 = prg.expand(&s1);
        let (lose0, lose1) = if bit {
            (e0.left_seed, e1.left_seed)
        } else {
            (e0.right_seed, e1.right_seed)
        };
        let mut cw_seed = [0u8; SEED_LEN];
        for i in 0..SEED_LEN {
            cw_seed[i] = lose0[i] ^ lose1[i];
        }
        let cw_left = e0.left_bit ^ e1.left_bit ^ bit ^ true;
        let cw_right = e0.right_bit ^ e1.right_bit ^ bit;
        cws.push(CorrectionWord {
            seed: cw_seed,
            left_bit: cw_left,
            right_bit: cw_right,
        });

        let (ks0, kb0, ks1, kb1, cw_keep) = if bit {
            (
                e0.right_seed,
                e0.right_bit,
                e1.right_seed,
                e1.right_bit,
                cw_right,
            )
        } else {
            (
                e0.left_seed,
                e0.left_bit,
                e1.left_seed,
                e1.left_bit,
                cw_left,
            )
        };
        let m0 = mask_seed(&cw_seed, t0);
        let m1 = mask_seed(&cw_seed, t1);
        for i in 0..SEED_LEN {
            s0[i] = ks0[i] ^ m0[i];
            s1[i] = ks1[i] ^ m1[i];
        }
        let nt0 = kb0 ^ (t0 & cw_keep);
        let nt1 = kb1 ^ (t1 & cw_keep);
        t0 = nt0;
        t1 = nt1;

        // Value correction for this level: conv(s0) ^ conv(s1) ^ beta.
        let mut c0 = vec![0u8; value_len];
        let mut c1 = vec![0u8; value_len];
        prg.convert(&s0, &mut c0);
        prg.convert(&s1, &mut c1);
        let mut vcw = vec![0u8; value_len];
        for i in 0..value_len {
            vcw[i] = c0[i] ^ c1[i] ^ betas[level as usize][i];
        }
        value_cws.push(vcw);
        debug_assert!(t0 ^ t1, "control-bit invariant broken at level {level}");
    }

    let k = |party: u8, root_seed: Seed| IncrementalDpfKey {
        domain_bits,
        value_len,
        party,
        root_seed,
        cws: cws.clone(),
        value_cws: value_cws.clone(),
    };
    (k(0, seed0), k(1, seed1))
}

impl IncrementalDpfKey {
    /// log2 of the domain.
    pub fn domain_bits(&self) -> u32 {
        self.domain_bits
    }

    /// The fixed per-level value length.
    pub fn value_len(&self) -> usize {
        self.value_len
    }

    /// Which party this key belongs to.
    pub fn party(&self) -> u8 {
        self.party
    }

    /// Evaluate the share of the level-`prefix_len` value at `prefix`
    /// (the top `prefix_len` bits of a domain point).
    ///
    /// The two parties' results XOR to `β_{prefix_len}` iff `prefix` is
    /// the length-`prefix_len` prefix of the hidden `α`, and to zero
    /// otherwise.
    pub fn eval_prefix(&self, prefix: u64, prefix_len: u32) -> Vec<u8> {
        assert!(
            prefix_len >= 1 && prefix_len <= self.domain_bits,
            "prefix length {prefix_len} outside 1..={}",
            self.domain_bits
        );
        assert!(
            prefix < (1u64 << prefix_len),
            "prefix wider than its length"
        );
        let prg = DpfPrg::new();
        let mut seed = self.root_seed;
        let mut t = self.party == 1;
        for level in 0..prefix_len {
            let go_right = (prefix >> (prefix_len - 1 - level)) & 1 == 1;
            let e = prg.expand(&seed);
            let (mut s, mut b) = if go_right {
                (e.right_seed, e.right_bit)
            } else {
                (e.left_seed, e.left_bit)
            };
            if t {
                let cw = &self.cws[level as usize];
                for (si, ci) in s.iter_mut().zip(&cw.seed) {
                    *si ^= *ci;
                }
                b ^= if go_right { cw.right_bit } else { cw.left_bit };
            }
            seed = s;
            t = b;
        }
        let mut out = vec![0u8; self.value_len];
        prg.convert(&seed, &mut out);
        if t {
            for (o, c) in out
                .iter_mut()
                .zip(&self.value_cws[(prefix_len - 1) as usize])
            {
                *o ^= *c;
            }
        }
        out
    }

    /// Evaluate the whole level `prefix_len`: shares for every prefix of
    /// that length (exponential in `prefix_len`; used by aggregation
    /// servers walking short prefixes, as in private heavy hitters).
    pub fn eval_level(&self, prefix_len: u32) -> Vec<Vec<u8>> {
        (0..(1u64 << prefix_len))
            .map(|p| self.eval_prefix(p, prefix_len))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn betas(domain_bits: u32, value_len: usize) -> Vec<Vec<u8>> {
        (0..domain_bits)
            .map(|i| vec![(i + 1) as u8; value_len])
            .collect()
    }

    fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
        a.iter().zip(b).map(|(x, y)| x ^ y).collect()
    }

    #[test]
    fn shares_reconstruct_betas_exactly_on_the_alpha_path() {
        let domain_bits = 8u32;
        let alpha = 0b1011_0010u64;
        let bs = betas(domain_bits, 4);
        let (k0, k1) = gen_incremental(domain_bits, alpha, &bs, 4);
        for len in 1..=domain_bits {
            for prefix in 0..(1u64 << len) {
                let got = xor(&k0.eval_prefix(prefix, len), &k1.eval_prefix(prefix, len));
                let expected = if prefix == alpha >> (domain_bits - len) {
                    bs[(len - 1) as usize].clone()
                } else {
                    vec![0u8; 4]
                };
                assert_eq!(got, expected, "len={len} prefix={prefix:b}");
            }
        }
    }

    #[test]
    fn level_evaluation_matches_pointwise() {
        let (k0, _) = gen_incremental(6, 13, &betas(6, 2), 2);
        for len in [1u32, 3, 6] {
            let level = k0.eval_level(len);
            assert_eq!(level.len(), 1 << len);
            for (p, share) in level.iter().enumerate() {
                assert_eq!(share, &k0.eval_prefix(p as u64, len));
            }
        }
    }

    #[test]
    fn individual_shares_are_balanced() {
        // A single party's level evaluation should look pseudorandom.
        let (k0, _) = gen_incremental(10, 777, &betas(10, 8), 8);
        let level = k0.eval_level(8);
        let ones: u32 = level
            .iter()
            .flat_map(|s| s.iter())
            .map(|b| b.count_ones())
            .sum();
        let total_bits = (level.len() * 8 * 8) as u32;
        let frac = ones as f64 / total_bits as f64;
        assert!((0.45..0.55).contains(&frac), "share bit density {frac}");
    }

    /// Miniature private prefix counting in the style of the paper's heavy
    /// hitters citation [11]: clients submit incremental-DPF shares of
    /// their visited domain index; two servers evaluate a level and sum
    /// shares; combining reveals per-prefix counts only.
    #[test]
    fn prefix_count_aggregation() {
        let domain_bits = 6u32;
        let value_len = 8usize; // u64 counter as XOR-share... use parity-free trick:
                                // XOR shares don't add, so encode the count contribution as a
                                // random-looking share pair whose XOR is 1 at the leaf; servers
                                // count reconstructed 1s after combining per client. (Additive
                                // aggregation over many clients needs arithmetic shares as in
                                // [11]; this test demonstrates the prefix *membership* primitive.)
        let visited = [5u64, 5, 20, 5, 63];
        let mut level3_counts = vec![0u64; 8];
        for &site in &visited {
            let mut one = vec![0u8; value_len];
            one[0] = 1;
            let bs: Vec<Vec<u8>> = (0..domain_bits).map(|_| one.clone()).collect();
            let (k0, k1) = gen_incremental(domain_bits, site, &bs, value_len);
            let l0 = k0.eval_level(3);
            let l1 = k1.eval_level(3);
            for p in 0..8usize {
                let combined = xor(&l0[p], &l1[p]);
                if combined[0] == 1 && combined[1..].iter().all(|&b| b == 0) {
                    level3_counts[p] += 1;
                }
            }
        }
        // Sites 5,5,5 -> prefix 0; 20 -> prefix 2; 63 -> prefix 7.
        assert_eq!(level3_counts, vec![3, 0, 1, 0, 0, 0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "one beta per level")]
    fn wrong_beta_count_rejected() {
        gen_incremental(4, 0, &betas(3, 2), 2);
    }

    #[test]
    #[should_panic(expected = "prefix wider")]
    fn oversized_prefix_rejected() {
        let (k0, _) = gen_incremental(4, 0, &betas(4, 2), 2);
        k0.eval_prefix(4, 2);
    }
}
