//! A contiguous multi-query bit matrix: one allocation holding the packed
//! full-domain evaluations of a whole batch of DPF keys.
//!
//! The batched scan (§5.1) answers `b` queries in one sweep of the data.
//! Before this type existed the batch travelled as `Vec<Vec<u8>>` — one
//! heap allocation per key, with no alignment guarantee — and the scan
//! kernel had to chase `b` unrelated pointers per record. A [`BitMatrix`]
//! instead backs every row with a single `Vec<u64>`:
//!
//! * **one allocation per batch**, however many keys are evaluated into it;
//! * every row starts on an **8-byte boundary** and is **padded to a whole
//!   number of words**, so a scan kernel can read query bits with one
//!   aligned word load (the padding bytes are always zero);
//! * rows are mutually disjoint, so a pool can hand each worker its own
//!   rows (`BitMatrix::rows_mut`) and fill the batch in parallel.
//!
//! Rows use the same packing as [`DpfKey::eval_full`](crate::DpfKey):
//! bit `x` lives in byte `x / 8`, LSB-first.

/// View a word slice as its underlying bytes (native byte order — the scan
/// only ever XORs and masks, which are byte-order agnostic).
fn words_as_bytes(words: &[u64]) -> &[u8] {
    // SAFETY: `u64` has no padding; any byte pattern is valid; the
    // alignment of `u8` (1) is never stricter than `u64`'s.
    unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, words.len() * 8) }
}

/// Mutable variant of [`words_as_bytes`].
fn words_as_bytes_mut(words: &mut [u64]) -> &mut [u8] {
    // SAFETY: as above; writing arbitrary bytes into a `u64` is sound.
    unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8) }
}

/// A dense `rows × row_bits` bit matrix in one word-aligned allocation.
///
/// Row `r` is the packed full-domain share of query `r`; `row_bytes` is the
/// logical packed length (`DpfParams::output_len()` for a DPF batch), and
/// each row occupies `row_bytes.div_ceil(8)` words of storage with any
/// trailing padding bytes held at zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitMatrix {
    rows: usize,
    row_bytes: usize,
    words_per_row: usize,
    words: Vec<u64>,
}

impl BitMatrix {
    /// Allocate an all-zero matrix of `rows` rows of `row_bytes` packed
    /// bytes each.
    pub fn new(rows: usize, row_bytes: usize) -> Self {
        let words_per_row = row_bytes.div_ceil(8);
        Self {
            rows,
            row_bytes,
            words_per_row,
            words: vec![0u64; rows * words_per_row],
        }
    }

    /// Build a matrix by copying already-evaluated packed rows (the legacy
    /// `Vec<Vec<u8>>` batch shape). Every row must have length `row_bytes`.
    pub fn from_rows(row_bytes: usize, rows: &[Vec<u8>]) -> Option<Self> {
        if rows.iter().any(|r| r.len() != row_bytes) {
            return None;
        }
        let mut m = Self::new(rows.len(), row_bytes);
        for (i, row) in rows.iter().enumerate() {
            m.row_mut(i).copy_from_slice(row);
        }
        Some(m)
    }

    /// Number of rows (queries).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical packed length of each row in bytes.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Row `r`'s logical packed bytes — identical to what
    /// [`DpfKey::eval_full`](crate::DpfKey) would have returned.
    pub fn row(&self, r: usize) -> &[u8] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        let start = r * self.words_per_row;
        &words_as_bytes(&self.words[start..start + self.words_per_row])[..self.row_bytes]
    }

    /// Row `r`'s bytes including the zero padding out to a whole word —
    /// what a word-wide scan kernel reads.
    pub fn row_padded(&self, r: usize) -> &[u8] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        let start = r * self.words_per_row;
        words_as_bytes(&self.words[start..start + self.words_per_row])
    }

    /// Mutable view of row `r`'s logical bytes, for an evaluator to fill.
    pub fn row_mut(&mut self, r: usize) -> &mut [u8] {
        assert!(r < self.rows, "row {r} out of range ({} rows)", self.rows);
        let start = r * self.words_per_row;
        &mut words_as_bytes_mut(&mut self.words[start..start + self.words_per_row])
            [..self.row_bytes]
    }

    /// All rows as disjoint mutable slices, so a worker pool can fill
    /// different rows concurrently.
    pub fn rows_mut(&mut self) -> Vec<&mut [u8]> {
        let row_bytes = self.row_bytes;
        if self.words_per_row == 0 {
            return Vec::new();
        }
        self.words
            .chunks_mut(self.words_per_row)
            .map(|w| &mut words_as_bytes_mut(w)[..row_bytes])
            .collect()
    }

    /// All rows as borrowed logical byte slices (the shape scan entry
    /// points validate and kernels consume).
    pub fn row_slices(&self) -> Vec<&[u8]> {
        (0..self.rows).map(|r| self.row(r)).collect()
    }

    /// Bit `x` of row `r`.
    pub fn bit(&self, r: usize, x: u64) -> bool {
        (self.row(r)[(x / 8) as usize] >> (x % 8)) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{gen_with_seeds, DpfParams};

    #[test]
    fn rows_are_word_padded_and_zero_initialized() {
        let m = BitMatrix::new(3, 5);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.row_bytes(), 5);
        for r in 0..3 {
            assert_eq!(m.row(r), &[0u8; 5]);
            assert_eq!(m.row_padded(r).len(), 8);
            // Row starts are word-aligned.
            assert_eq!(m.row_padded(r).as_ptr() as usize % 8, 0);
        }
    }

    #[test]
    fn row_mut_writes_show_up_and_padding_stays_zero() {
        let mut m = BitMatrix::new(2, 5);
        m.row_mut(1).copy_from_slice(&[1, 2, 3, 4, 5]);
        assert_eq!(m.row(1), &[1, 2, 3, 4, 5]);
        assert_eq!(&m.row_padded(1)[5..], &[0, 0, 0]);
        assert_eq!(m.row(0), &[0u8; 5]);
    }

    #[test]
    fn eval_into_rows_matches_eval_full() {
        let params = DpfParams::new(10, 3).unwrap();
        let (k0, k1) = gen_with_seeds(&params, 321, [1; 16], [2; 16]);
        let mut m = BitMatrix::new(2, params.output_len());
        k0.eval_full_into(m.row_mut(0));
        k1.eval_full_into(m.row_mut(1));
        assert_eq!(m.row(0), k0.eval_full().as_slice());
        assert_eq!(m.row(1), k1.eval_full().as_slice());
        assert!(m.bit(0, 321) ^ m.bit(1, 321));
    }

    #[test]
    fn rows_mut_hands_out_every_row() {
        let mut m = BitMatrix::new(4, 3);
        {
            let mut rows = m.rows_mut();
            assert_eq!(rows.len(), 4);
            for (i, row) in rows.iter_mut().enumerate() {
                row[0] = i as u8 + 1;
            }
        }
        for i in 0..4 {
            assert_eq!(m.row(i)[0], i as u8 + 1);
        }
    }

    #[test]
    fn from_rows_round_trips_and_rejects_ragged_input() {
        let rows = vec![vec![9u8, 8, 7], vec![1, 2, 3]];
        let m = BitMatrix::from_rows(3, &rows).unwrap();
        assert_eq!(m.row_slices(), vec![&rows[0][..], &rows[1][..]]);
        assert!(BitMatrix::from_rows(4, &rows).is_none());
    }

    #[test]
    fn empty_matrix_is_fine() {
        let m = BitMatrix::new(0, 16);
        assert_eq!(m.rows(), 0);
        assert!(m.row_slices().is_empty());
        let mut z = BitMatrix::new(2, 0);
        assert_eq!(z.rows_mut().len(), 0);
    }
}
