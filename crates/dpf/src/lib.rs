#![warn(missing_docs)]

//! # lightweb-dpf
//!
//! Distributed point functions (DPFs) in the style of Boyle, Gilboa and
//! Ishai (CCS 2016) — the cryptographic core of ZLTP's two-server
//! private-information-retrieval mode (paper §2.2, §5.1).
//!
//! A *point function* `f_{α}` over a domain of size `2^d` is zero everywhere
//! except at the point `α`, where it is one. A DPF splits `f_{α}` into two
//! keys, one per server, such that:
//!
//! * each key individually reveals **nothing** about `α` (it is
//!   computationally indistinguishable from a key for any other point), and
//! * for every domain point `x`, the XOR of the two servers' evaluations
//!   equals `f_{α}(x)`.
//!
//! A PIR server holding a database of `2^d` slots evaluates its key over the
//! *full* domain and XORs together the records in slots where its share bit
//! is 1. XORing the two servers' answers cancels everything except the
//! record at `α` — without either server learning `α`. Full-domain
//! evaluation plus the data scan is exactly the per-request cost the paper
//! measures in §5.1 (64 ms DPF + 103 ms scan per request on a 1 GiB shard
//! with `d = 22`).
//!
//! ## Early termination
//!
//! Evaluating a depth-`d` tree to single-bit leaves costs `2^d` PRG calls.
//! Like production DPF libraries, we collapse the last `ν` levels: the tree
//! has depth `d − ν` and each leaf seed is *converted* into a `2^ν`-bit
//! pseudorandom block covering `2^ν` consecutive domain points. The final
//! correction word is a block of the same width.
//!
//! ## Key size
//!
//! §5.1 reports a DPF key size of `(λ + 2)·d` bits with `λ = 128` and
//! `d = 22`. Our serialized keys follow the same shape: one 128-bit seed
//! plus two control bits per tree level, plus the root seed and the terminal
//! block ([`DpfKey::serialized_len`]).
//!
//! ## Distributed evaluation (paper §5.2)
//!
//! To shard a deployment, a front-end server evaluates the top `p` levels of
//! the tree once, then hands each of the `2^p` sub-tree roots to the data
//! server owning that slice of the domain ([`DpfKey::eval_prefix`],
//! [`ShardKey`]). Each data server then does exactly the work of a
//! `2^(d-p)`-point evaluation — the paper's argument for why a 305-server
//! deployment keeps per-server cost equal to the 1 GiB microbenchmark.

mod distributed;
mod eval;
pub mod incremental;
mod key;
mod matrix;
mod serial;

pub use distributed::{ShardKey, TreeNode};
pub use incremental::{gen_incremental, IncrementalDpfKey};
pub use key::{gen, gen_with_seeds, CorrectionWord, DpfKey, DpfParams, ParamError};
pub use matrix::BitMatrix;
pub use serial::{paper_key_size_bytes, KeyDecodeError};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The defining DPF identity: shares XOR to the point function.
        #[test]
        fn shares_xor_to_point_function(
            domain_bits in 3u32..12,
            term_choice in 0u32..4,
            alpha_raw in any::<u64>(),
        ) {
            let term_bits = term_choice.min(domain_bits.saturating_sub(1));
            let params = DpfParams::new(domain_bits, term_bits).unwrap();
            let alpha = alpha_raw % params.domain_size();
            let (k0, k1) = gen(&params, alpha);
            let f0 = k0.eval_full();
            let f1 = k1.eval_full();
            for x in 0..params.domain_size() {
                let byte = (x / 8) as usize;
                let bit = (x % 8) as u32;
                let v = ((f0[byte] ^ f1[byte]) >> bit) & 1;
                prop_assert_eq!(v == 1, x == alpha, "x={} alpha={}", x, alpha);
            }
        }

        /// Point evaluation agrees with full-domain evaluation.
        #[test]
        fn point_eval_matches_full_eval(
            domain_bits in 3u32..11,
            alpha_raw in any::<u64>(),
            probe_raw in any::<u64>(),
        ) {
            let params = DpfParams::new(domain_bits, 2.min(domain_bits - 1)).unwrap();
            let alpha = alpha_raw % params.domain_size();
            let probe = probe_raw % params.domain_size();
            let (k0, k1) = gen(&params, alpha);
            let full0 = k0.eval_full();
            let byte = (probe / 8) as usize;
            let bit = (probe % 8) as u32;
            prop_assert_eq!(k0.eval_point(probe), (full0[byte] >> bit) & 1 == 1);
            prop_assert_eq!(
                k0.eval_point(probe) ^ k1.eval_point(probe),
                probe == alpha
            );
        }

        /// Serialization round-trips and evaluates identically.
        #[test]
        fn serialization_roundtrip(
            domain_bits in 3u32..12,
            alpha_raw in any::<u64>(),
        ) {
            let params = DpfParams::new(domain_bits, 2.min(domain_bits - 1)).unwrap();
            let alpha = alpha_raw % params.domain_size();
            let (k0, _k1) = gen(&params, alpha);
            let bytes = k0.to_bytes();
            prop_assert_eq!(bytes.len(), k0.serialized_len());
            let back = DpfKey::from_bytes(&bytes).unwrap();
            prop_assert_eq!(back.eval_full(), k0.eval_full());
        }

        /// Prefix + subtree evaluation reconstructs the full evaluation.
        #[test]
        fn distributed_eval_matches_full(
            domain_bits in 4u32..11,
            prefix_raw in 1u32..4,
            alpha_raw in any::<u64>(),
        ) {
            let params = DpfParams::new(domain_bits, 1).unwrap();
            // Keep the per-shard slice byte-aligned (>= 8 domain points).
            let prefix_bits = prefix_raw
                .min(params.tree_depth() - 1)
                .min(domain_bits - 3);
            let alpha = alpha_raw % params.domain_size();
            let (k0, _) = gen(&params, alpha);
            let full = k0.eval_full();

            let nodes = k0.eval_prefix(prefix_bits);
            let shard_key = k0.shard_key(prefix_bits);
            let sub_bits = params.domain_size() >> prefix_bits;
            let sub_bytes = sub_bits.div_ceil(8) as usize;
            let mut assembled = Vec::new();
            for node in nodes {
                let mut out = vec![0u8; sub_bytes];
                shard_key.eval(&node, &mut out);
                assembled.extend_from_slice(&out);
            }
            prop_assert_eq!(assembled, full);
        }
    }
}
