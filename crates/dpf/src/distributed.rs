//! Front-end / data-server split evaluation of a DPF key (paper §5.2).
//!
//! In the scaled-up architecture the client sends its DPF key to a
//! *front-end* server. The front-end evaluates the top `p` levels of the
//! seed tree once, producing `2^p` sub-tree roots, and ships root `j`
//! (plus the lower correction words, which are identical for every shard) to
//! the data server responsible for slice `j` of the domain. Each data server
//! then performs exactly the work of evaluating a DPF over a domain of size
//! `2^(d-p)` — so per-server cost stays flat as the deployment grows, which
//! is how the paper argues a 305-server C4 deployment keeps the 1 GiB
//! microbenchmark's per-shard latency.

use crate::eval::NodeState;
use crate::key::{CorrectionWord, DpfKey, DpfParams};
use lightweb_crypto::prg::{DpfPrg, Seed};

/// A sub-tree root handed from the front-end to one data server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// Seed at the sub-tree root.
    pub seed: Seed,
    /// Control bit at the sub-tree root.
    pub bit: bool,
}

/// The key material a data server needs to finish an evaluation from a
/// [`TreeNode`]: the correction words below the prefix plus the terminal
/// correction word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardKey {
    params: DpfParams,
    party: u8,
    prefix_bits: u32,
    cws: Vec<CorrectionWord>,
    final_cw: Vec<u8>,
}

impl DpfKey {
    /// Evaluate the top `prefix_bits` levels of the tree, returning the
    /// `2^prefix_bits` sub-tree roots in domain order.
    ///
    /// Requires `prefix_bits < tree_depth()` and that each shard's slice of
    /// the domain is byte-aligned (`domain_bits - prefix_bits >= 3`), so the
    /// per-shard outputs concatenate cleanly.
    pub fn eval_prefix(&self, prefix_bits: u32) -> Vec<TreeNode> {
        assert!(
            prefix_bits < self.params.tree_depth(),
            "prefix {prefix_bits} must be shallower than the tree ({})",
            self.params.tree_depth()
        );
        assert!(
            self.params.domain_bits() - prefix_bits >= 3,
            "per-shard slice must cover at least 8 domain points"
        );
        let prg = DpfPrg::new();
        let mut frontier = vec![NodeState {
            seed: self.root_seed,
            bit: self.party == 1,
        }];
        for level in 0..prefix_bits {
            let cw = &self.cws[level as usize];
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for state in frontier {
                next.push(crate::eval::descend(&prg, state, cw, false));
                next.push(crate::eval::descend(&prg, state, cw, true));
            }
            frontier = next;
        }
        frontier
            .into_iter()
            .map(|s| TreeNode {
                seed: s.seed,
                bit: s.bit,
            })
            .collect()
    }

    /// Extract the key material data servers need below a `prefix_bits`
    /// split. The same `ShardKey` serves every shard; only the [`TreeNode`]
    /// differs per shard.
    pub fn shard_key(&self, prefix_bits: u32) -> ShardKey {
        assert!(prefix_bits < self.params.tree_depth());
        ShardKey {
            params: self.params,
            party: self.party,
            prefix_bits,
            cws: self.cws[prefix_bits as usize..].to_vec(),
            final_cw: self.final_cw.clone(),
        }
    }
}

impl ShardKey {
    /// The parameters of the originating key.
    pub fn params(&self) -> DpfParams {
        self.params
    }

    /// The prefix depth this shard key was split at.
    pub fn prefix_bits(&self) -> u32 {
        self.prefix_bits
    }

    /// Number of bytes of packed output each shard produces.
    pub fn shard_output_len(&self) -> usize {
        ((self.params.domain_size() >> self.prefix_bits) as usize).div_ceil(8)
    }

    /// Evaluate the sub-tree rooted at `node`, writing the shard's packed
    /// output bits into `out` (`out.len()` must equal
    /// [`ShardKey::shard_output_len`]).
    pub fn eval(&self, node: &TreeNode, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            self.shard_output_len(),
            "shard output buffer size"
        );
        // Reconstitute a DpfKey rooted at the sub-tree: same machinery, with
        // the sub-tree root as the key root. The `party` field only matters
        // at the true root (initial control bit), which `node.bit` replaces.
        let sub = DpfKey {
            params: DpfParams::new(
                self.params.domain_bits() - self.prefix_bits,
                self.params.term_bits(),
            )
            .expect("shard params validated at split time"),
            party: node.bit as u8,
            root_seed: node.seed,
            cws: self.cws.clone(),
            final_cw: self.final_cw.clone(),
        };
        let full = sub.eval_full();
        out.copy_from_slice(&full);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::gen_with_seeds;

    #[test]
    fn prefix_frontier_has_expected_size() {
        let params = DpfParams::new(12, 3).unwrap();
        let (k0, _) = gen_with_seeds(&params, 100, [1; 16], [2; 16]);
        for p in 1..params.tree_depth() {
            assert_eq!(k0.eval_prefix(p).len(), 1 << p);
        }
    }

    #[test]
    fn sharded_eval_reassembles_full_eval() {
        let params = DpfParams::new(13, 4).unwrap();
        let alpha = 4321;
        for prefix in [1u32, 2, 3, 5] {
            let (k0, k1) = gen_with_seeds(&params, alpha, [11; 16], [12; 16]);
            let mut reconstructed = vec![0u8; params.output_len()];
            for key in [&k0, &k1] {
                let nodes = key.eval_prefix(prefix);
                let shard_key = key.shard_key(prefix);
                let len = shard_key.shard_output_len();
                let mut assembled = Vec::with_capacity(params.output_len());
                for node in &nodes {
                    let mut out = vec![0u8; len];
                    shard_key.eval(node, &mut out);
                    assembled.extend_from_slice(&out);
                }
                assert_eq!(
                    assembled,
                    key.eval_full(),
                    "party {} prefix {prefix}",
                    key.party()
                );
                for (r, a) in reconstructed.iter_mut().zip(assembled.iter()) {
                    *r ^= *a;
                }
            }
            // Reconstruction across parties is the unit vector at alpha.
            for x in 0..params.domain_size() {
                let bit = (reconstructed[(x / 8) as usize] >> (x % 8)) & 1 == 1;
                assert_eq!(bit, x == alpha, "prefix={prefix} x={x}");
            }
        }
    }

    #[test]
    fn shard_work_is_independent_of_prefix_position() {
        // Every shard's eval covers the same number of points — the paper's
        // load-balance claim.
        let params = DpfParams::new(12, 3).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [9; 16], [10; 16]);
        let shard_key = k0.shard_key(3);
        assert_eq!(
            shard_key.shard_output_len() * 8,
            (params.domain_size() >> 3) as usize
        );
    }

    #[test]
    #[should_panic(expected = "shallower than the tree")]
    fn prefix_at_tree_depth_panics() {
        let params = DpfParams::new(8, 2).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [0; 16], [1; 16]);
        k0.eval_prefix(params.tree_depth());
    }

    #[test]
    #[should_panic(expected = "at least 8 domain points")]
    fn unaligned_shard_slice_panics() {
        let params = DpfParams::new(4, 1).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [0; 16], [1; 16]);
        k0.eval_prefix(2);
    }

    #[test]
    #[should_panic(expected = "shard output buffer size")]
    fn wrong_output_buffer_size_panics() {
        let params = DpfParams::new(10, 2).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [0; 16], [1; 16]);
        let nodes = k0.eval_prefix(2);
        let shard_key = k0.shard_key(2);
        let mut out = vec![0u8; 1];
        shard_key.eval(&nodes[0], &mut out);
    }
}
