//! Front-end / data-server split evaluation of a DPF key (paper §5.2).
//!
//! In the scaled-up architecture the client sends its DPF key to a
//! *front-end* server. The front-end evaluates the top `p` levels of the
//! seed tree once, producing `2^p` sub-tree roots, and ships root `j`
//! (plus the lower correction words, which are identical for every shard) to
//! the data server responsible for slice `j` of the domain. Each data server
//! then performs exactly the work of evaluating a DPF over a domain of size
//! `2^(d-p)` — so per-server cost stays flat as the deployment grows, which
//! is how the paper argues a 305-server C4 deployment keeps the 1 GiB
//! microbenchmark's per-shard latency.

use crate::eval::NodeState;
use crate::key::{CorrectionWord, DpfKey, DpfParams};
use crate::serial::KeyDecodeError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use lightweb_crypto::prg::{DpfPrg, Seed, SEED_LEN};

/// Magic byte identifying a serialized [`ShardKey`] (distinct from the
/// full-key magic so a shard server can't be fed a whole-tree key).
const SHARD_KEY_MAGIC: u8 = 0xD8;

/// A sub-tree root handed from the front-end to one data server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeNode {
    /// Seed at the sub-tree root.
    pub seed: Seed,
    /// Control bit at the sub-tree root.
    pub bit: bool,
}

/// The key material a data server needs to finish an evaluation from a
/// [`TreeNode`]: the correction words below the prefix plus the terminal
/// correction word.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardKey {
    params: DpfParams,
    party: u8,
    prefix_bits: u32,
    cws: Vec<CorrectionWord>,
    final_cw: Vec<u8>,
}

impl DpfKey {
    /// Evaluate the top `prefix_bits` levels of the tree, returning the
    /// `2^prefix_bits` sub-tree roots in domain order.
    ///
    /// Requires `prefix_bits < tree_depth()` and that each shard's slice of
    /// the domain is byte-aligned (`domain_bits - prefix_bits >= 3`), so the
    /// per-shard outputs concatenate cleanly.
    pub fn eval_prefix(&self, prefix_bits: u32) -> Vec<TreeNode> {
        assert!(
            prefix_bits < self.params.tree_depth(),
            "prefix {prefix_bits} must be shallower than the tree ({})",
            self.params.tree_depth()
        );
        assert!(
            self.params.domain_bits() - prefix_bits >= 3,
            "per-shard slice must cover at least 8 domain points"
        );
        let prg = DpfPrg::new();
        let mut frontier = vec![NodeState {
            seed: self.root_seed,
            bit: self.party == 1,
        }];
        for level in 0..prefix_bits {
            let cw = &self.cws[level as usize];
            let mut next = Vec::with_capacity(frontier.len() * 2);
            for state in frontier {
                next.push(crate::eval::descend(&prg, state, cw, false));
                next.push(crate::eval::descend(&prg, state, cw, true));
            }
            frontier = next;
        }
        frontier
            .into_iter()
            .map(|s| TreeNode {
                seed: s.seed,
                bit: s.bit,
            })
            .collect()
    }

    /// Extract the key material data servers need below a `prefix_bits`
    /// split. The same `ShardKey` serves every shard; only the [`TreeNode`]
    /// differs per shard.
    pub fn shard_key(&self, prefix_bits: u32) -> ShardKey {
        assert!(prefix_bits < self.params.tree_depth());
        ShardKey {
            params: self.params,
            party: self.party,
            prefix_bits,
            cws: self.cws[prefix_bits as usize..].to_vec(),
            final_cw: self.final_cw.clone(),
        }
    }
}

impl ShardKey {
    /// The parameters of the originating key.
    pub fn params(&self) -> DpfParams {
        self.params
    }

    /// The prefix depth this shard key was split at.
    pub fn prefix_bits(&self) -> u32 {
        self.prefix_bits
    }

    /// Number of bytes of packed output each shard produces.
    pub fn shard_output_len(&self) -> usize {
        ((self.params.domain_size() >> self.prefix_bits) as usize).div_ceil(8)
    }

    /// Evaluate the sub-tree rooted at `node`, writing the shard's packed
    /// output bits into `out` (`out.len()` must equal
    /// [`ShardKey::shard_output_len`]).
    pub fn eval(&self, node: &TreeNode, out: &mut [u8]) {
        assert_eq!(
            out.len(),
            self.shard_output_len(),
            "shard output buffer size"
        );
        // Reconstitute a DpfKey rooted at the sub-tree: same machinery, with
        // the sub-tree root as the key root. The `party` field only matters
        // at the true root (initial control bit), which `node.bit` replaces.
        let sub = DpfKey {
            params: DpfParams::new(
                self.params.domain_bits() - self.prefix_bits,
                self.params.term_bits(),
            )
            .expect("shard params validated at split time"),
            party: node.bit as u8,
            root_seed: node.seed,
            cws: self.cws.clone(),
            final_cw: self.final_cw.clone(),
        };
        sub.eval_full_into(out);
    }
}

impl TreeNode {
    /// Exact size of a serialized sub-tree root: the seed plus one
    /// control-bit byte.
    pub const SERIALIZED_LEN: usize = SEED_LEN + 1;

    /// Serialize for the front-end→data-server hop.
    pub fn to_bytes(&self) -> [u8; Self::SERIALIZED_LEN] {
        let mut out = [0u8; Self::SERIALIZED_LEN];
        out[..SEED_LEN].copy_from_slice(&self.seed);
        out[SEED_LEN] = self.bit as u8;
        out
    }

    /// Deserialize a sub-tree root produced by [`TreeNode::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, KeyDecodeError> {
        if data.len() < Self::SERIALIZED_LEN {
            return Err(KeyDecodeError::Truncated);
        }
        if data.len() > Self::SERIALIZED_LEN {
            return Err(KeyDecodeError::TrailingBytes(
                data.len() - Self::SERIALIZED_LEN,
            ));
        }
        if data[SEED_LEN] > 1 {
            return Err(KeyDecodeError::BadParams);
        }
        let mut seed = [0u8; SEED_LEN];
        seed.copy_from_slice(&data[..SEED_LEN]);
        Ok(Self {
            seed,
            bit: data[SEED_LEN] == 1,
        })
    }
}

impl ShardKey {
    /// Exact size in bytes of the serialized shard key: a 5-byte header,
    /// one `(seed, bits)` correction word per sub-tree level, and the
    /// terminal correction block.
    pub fn serialized_len(&self) -> usize {
        5 + self.cws.len() * (SEED_LEN + 1) + self.final_cw.len()
    }

    /// Serialize for the front-end→data-server hop. The layout mirrors
    /// [`DpfKey::to_bytes`] with its own magic byte and the prefix depth
    /// in the header; the sub-tree root travels separately (it differs
    /// per shard, the shard key does not).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.serialized_len());
        buf.put_u8(SHARD_KEY_MAGIC);
        buf.put_u8(self.params.domain_bits() as u8);
        buf.put_u8(self.params.term_bits() as u8);
        buf.put_u8(self.party);
        buf.put_u8(self.prefix_bits as u8);
        for cw in &self.cws {
            buf.put_slice(&cw.seed);
            buf.put_u8((cw.left_bit as u8) | ((cw.right_bit as u8) << 1));
        }
        buf.put_slice(&self.final_cw);
        debug_assert_eq!(buf.len(), self.serialized_len());
        buf.freeze()
    }

    /// Deserialize a shard key produced by [`ShardKey::to_bytes`].
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, KeyDecodeError> {
        if data.len() < 5 {
            return Err(KeyDecodeError::Truncated);
        }
        let magic = data.get_u8();
        if magic != SHARD_KEY_MAGIC {
            return Err(KeyDecodeError::BadMagic(magic));
        }
        let domain_bits = data.get_u8() as u32;
        let term_bits = data.get_u8() as u32;
        let party = data.get_u8();
        let prefix_bits = data.get_u8() as u32;
        if party > 1 {
            return Err(KeyDecodeError::BadParams);
        }
        let params =
            DpfParams::new(domain_bits, term_bits).map_err(|_| KeyDecodeError::BadParams)?;
        if prefix_bits >= params.tree_depth() || domain_bits - prefix_bits < 3 {
            return Err(KeyDecodeError::BadParams);
        }
        let depth = (params.tree_depth() - prefix_bits) as usize;
        let need = depth * (SEED_LEN + 1) + params.leaf_block_len();
        if data.len() < need {
            return Err(KeyDecodeError::Truncated);
        }
        let mut cws = Vec::with_capacity(depth);
        for _ in 0..depth {
            let mut seed = [0u8; SEED_LEN];
            data.copy_to_slice(&mut seed);
            let bits = data.get_u8();
            cws.push(CorrectionWord {
                seed,
                left_bit: bits & 1 == 1,
                right_bit: bits & 2 == 2,
            });
        }
        let mut final_cw = vec![0u8; params.leaf_block_len()];
        data.copy_to_slice(&mut final_cw);
        if !data.is_empty() {
            return Err(KeyDecodeError::TrailingBytes(data.len()));
        }
        Ok(Self {
            params,
            party,
            prefix_bits,
            cws,
            final_cw,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::gen_with_seeds;

    #[test]
    fn prefix_frontier_has_expected_size() {
        let params = DpfParams::new(12, 3).unwrap();
        let (k0, _) = gen_with_seeds(&params, 100, [1; 16], [2; 16]);
        for p in 1..params.tree_depth() {
            assert_eq!(k0.eval_prefix(p).len(), 1 << p);
        }
    }

    #[test]
    fn sharded_eval_reassembles_full_eval() {
        let params = DpfParams::new(13, 4).unwrap();
        let alpha = 4321;
        for prefix in [1u32, 2, 3, 5] {
            let (k0, k1) = gen_with_seeds(&params, alpha, [11; 16], [12; 16]);
            let mut reconstructed = vec![0u8; params.output_len()];
            for key in [&k0, &k1] {
                let nodes = key.eval_prefix(prefix);
                let shard_key = key.shard_key(prefix);
                let len = shard_key.shard_output_len();
                let mut assembled = Vec::with_capacity(params.output_len());
                for node in &nodes {
                    let mut out = vec![0u8; len];
                    shard_key.eval(node, &mut out);
                    assembled.extend_from_slice(&out);
                }
                assert_eq!(
                    assembled,
                    key.eval_full(),
                    "party {} prefix {prefix}",
                    key.party()
                );
                for (r, a) in reconstructed.iter_mut().zip(assembled.iter()) {
                    *r ^= *a;
                }
            }
            // Reconstruction across parties is the unit vector at alpha.
            for x in 0..params.domain_size() {
                let bit = (reconstructed[(x / 8) as usize] >> (x % 8)) & 1 == 1;
                assert_eq!(bit, x == alpha, "prefix={prefix} x={x}");
            }
        }
    }

    #[test]
    fn shard_work_is_independent_of_prefix_position() {
        // Every shard's eval covers the same number of points — the paper's
        // load-balance claim.
        let params = DpfParams::new(12, 3).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [9; 16], [10; 16]);
        let shard_key = k0.shard_key(3);
        assert_eq!(
            shard_key.shard_output_len() * 8,
            (params.domain_size() >> 3) as usize
        );
    }

    #[test]
    fn shard_key_and_node_roundtrip_preserve_evaluation() {
        let params = DpfParams::new(13, 4).unwrap();
        let (k0, k1) = gen_with_seeds(&params, 999, [5; 16], [6; 16]);
        for key in [&k0, &k1] {
            let shard_key = key.shard_key(3);
            let back = ShardKey::from_bytes(&shard_key.to_bytes()).unwrap();
            assert_eq!(back, shard_key);
            for node in key.eval_prefix(3) {
                let node_back = TreeNode::from_bytes(&node.to_bytes()).unwrap();
                assert_eq!(node_back, node);
                let len = shard_key.shard_output_len();
                let (mut a, mut b) = (vec![0u8; len], vec![0u8; len]);
                shard_key.eval(&node, &mut a);
                back.eval(&node_back, &mut b);
                assert_eq!(a, b, "wire hop changed the evaluation");
            }
        }
    }

    #[test]
    fn shard_key_decode_rejects_damage() {
        let params = DpfParams::new(12, 3).unwrap();
        let (k0, _) = gen_with_seeds(&params, 1, [7; 16], [8; 16]);
        let bytes = k0.shard_key(2).to_bytes();
        for len in 0..bytes.len() {
            assert!(
                ShardKey::from_bytes(&bytes[..len]).is_err(),
                "accepted truncation to {len}"
            );
        }
        let mut trailing = bytes.to_vec();
        trailing.push(0);
        assert!(ShardKey::from_bytes(&trailing).is_err());
        let mut wrong_magic = bytes.to_vec();
        wrong_magic[0] = 0xD7; // a full DpfKey's magic must not decode
        assert!(ShardKey::from_bytes(&wrong_magic).is_err());
        let mut deep_prefix = bytes.to_vec();
        deep_prefix[4] = 60; // prefix deeper than the tree
        assert!(ShardKey::from_bytes(&deep_prefix).is_err());
        assert!(TreeNode::from_bytes(&[0u8; 3]).is_err());
        let mut bad_bit = [0u8; TreeNode::SERIALIZED_LEN];
        bad_bit[16] = 2;
        assert!(TreeNode::from_bytes(&bad_bit).is_err());
    }

    #[test]
    #[should_panic(expected = "shallower than the tree")]
    fn prefix_at_tree_depth_panics() {
        let params = DpfParams::new(8, 2).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [0; 16], [1; 16]);
        k0.eval_prefix(params.tree_depth());
    }

    #[test]
    #[should_panic(expected = "at least 8 domain points")]
    fn unaligned_shard_slice_panics() {
        let params = DpfParams::new(4, 1).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [0; 16], [1; 16]);
        k0.eval_prefix(2);
    }

    #[test]
    #[should_panic(expected = "shard output buffer size")]
    fn wrong_output_buffer_size_panics() {
        let params = DpfParams::new(10, 2).unwrap();
        let (k0, _) = gen_with_seeds(&params, 0, [0; 16], [1; 16]);
        let nodes = k0.eval_prefix(2);
        let shard_key = k0.shard_key(2);
        let mut out = vec![0u8; 1];
        shard_key.eval(&nodes[0], &mut out);
    }
}
