//! DPF parameters, key material, and key generation.

use lightweb_crypto::prg::{DpfPrg, Seed, SEED_LEN};

/// Parameters of a DPF instance: the domain size and the early-termination
/// width.
///
/// The function domain has `2^domain_bits` points. The evaluation tree has
/// depth `domain_bits - term_bits`; each leaf covers `2^term_bits`
/// consecutive points via PRG conversion.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DpfParams {
    domain_bits: u32,
    term_bits: u32,
}

/// Errors constructing [`DpfParams`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// `domain_bits` must be in `1..=40` (a 2^40-slot universe is ~10^12
    /// pages — far beyond the paper's 360M-page C4 deployment).
    DomainBits(u32),
    /// `term_bits` must be strictly smaller than `domain_bits` and at most
    /// 13 (an 8 KiB leaf block).
    TermBits(u32),
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::DomainBits(b) => write!(f, "domain_bits {b} out of range 1..=40"),
            ParamError::TermBits(b) => {
                write!(f, "term_bits {b} invalid (must be < domain_bits and <= 13)")
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl DpfParams {
    /// Construct parameters, validating ranges.
    pub fn new(domain_bits: u32, term_bits: u32) -> Result<Self, ParamError> {
        if domain_bits == 0 || domain_bits > 40 {
            return Err(ParamError::DomainBits(domain_bits));
        }
        if term_bits >= domain_bits || term_bits > 13 {
            return Err(ParamError::TermBits(term_bits));
        }
        Ok(Self {
            domain_bits,
            term_bits,
        })
    }

    /// Parameters with the default early-termination width used throughout
    /// the workspace (ν = 7, i.e. 128-bit leaf blocks — one seed width, the
    /// conventional choice in DPF libraries).
    pub fn with_default_termination(domain_bits: u32) -> Result<Self, ParamError> {
        let term = 7.min(domain_bits.saturating_sub(1));
        Self::new(domain_bits, term)
    }

    /// log2 of the domain size.
    pub fn domain_bits(&self) -> u32 {
        self.domain_bits
    }

    /// Early-termination width ν.
    pub fn term_bits(&self) -> u32 {
        self.term_bits
    }

    /// Number of points in the domain (`2^domain_bits`).
    pub fn domain_size(&self) -> u64 {
        1u64 << self.domain_bits
    }

    /// Depth of the seed tree (`domain_bits - term_bits`).
    pub fn tree_depth(&self) -> u32 {
        self.domain_bits - self.term_bits
    }

    /// Number of domain points covered by one leaf (`2^term_bits`).
    pub fn leaf_width(&self) -> u64 {
        1u64 << self.term_bits
    }

    /// Size in bytes of one leaf output block (at least one byte).
    pub fn leaf_block_len(&self) -> usize {
        (self.leaf_width() as usize).div_ceil(8)
    }

    /// Size in bytes of the packed full-domain output bit vector.
    pub fn output_len(&self) -> usize {
        (self.domain_size() as usize).div_ceil(8)
    }
}

/// Per-level correction word: a seed plus one control bit for each child.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorrectionWord {
    pub(crate) seed: Seed,
    pub(crate) left_bit: bool,
    pub(crate) right_bit: bool,
}

/// One party's DPF key.
///
/// Holds the party's root seed, one correction word per tree level, and the
/// terminal correction block. Either key alone is pseudorandom; see the
/// crate docs for the security claim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DpfKey {
    pub(crate) params: DpfParams,
    pub(crate) party: u8,
    pub(crate) root_seed: Seed,
    pub(crate) cws: Vec<CorrectionWord>,
    pub(crate) final_cw: Vec<u8>,
}

impl DpfKey {
    /// The parameters this key was generated for.
    pub fn params(&self) -> DpfParams {
        self.params
    }

    /// Which party (0 or 1) this key belongs to.
    pub fn party(&self) -> u8 {
        self.party
    }
}

#[inline]
fn xor_seed(a: &Seed, b: &Seed) -> Seed {
    let mut out = [0u8; SEED_LEN];
    for i in 0..SEED_LEN {
        out[i] = a[i] ^ b[i];
    }
    out
}

#[inline]
pub(crate) fn mask_seed(s: &Seed, bit: bool) -> Seed {
    if bit {
        *s
    } else {
        [0u8; SEED_LEN]
    }
}

/// Generate a DPF key pair for the point function that is 1 at `alpha`
/// (and 0 everywhere else), using fresh OS randomness for the root seeds.
pub fn gen(params: &DpfParams, alpha: u64) -> (DpfKey, DpfKey) {
    gen_with_seeds(
        params,
        alpha,
        lightweb_crypto::random_seed(),
        lightweb_crypto::random_seed(),
    )
}

/// Deterministic key generation from caller-supplied root seeds.
///
/// Exposed for reproducible tests and benchmarks; production callers should
/// use [`gen`].
pub fn gen_with_seeds(
    params: &DpfParams,
    alpha: u64,
    seed0: Seed,
    seed1: Seed,
) -> (DpfKey, DpfKey) {
    assert!(alpha < params.domain_size(), "alpha {alpha} outside domain");
    let prg = DpfPrg::new();
    let depth = params.tree_depth();
    let leaf_index = alpha >> params.term_bits();
    let leaf_offset = alpha & (params.leaf_width() - 1);

    let mut s0 = seed0;
    let mut s1 = seed1;
    let mut t0 = false;
    let mut t1 = true;
    let mut cws = Vec::with_capacity(depth as usize);

    for level in 0..depth {
        // Path bit at this level: MSB-first over the leaf index.
        let bit = (leaf_index >> (depth - 1 - level)) & 1 == 1;

        let e0 = prg.expand(&s0);
        let e1 = prg.expand(&s1);

        // "Lose" side: the child off the path to alpha. Its seeds are forced
        // equal across parties so the sub-trees cancel.
        let (lose0, lose1) = if bit {
            (e0.left_seed, e1.left_seed)
        } else {
            (e0.right_seed, e1.right_seed)
        };
        let cw_seed = xor_seed(&lose0, &lose1);
        let cw_left = e0.left_bit ^ e1.left_bit ^ bit ^ true;
        let cw_right = e0.right_bit ^ e1.right_bit ^ bit;
        cws.push(CorrectionWord {
            seed: cw_seed,
            left_bit: cw_left,
            right_bit: cw_right,
        });

        // Both parties descend toward alpha ("keep" side), applying the
        // correction word iff their control bit is set.
        let (keep_seed0, keep_bit0, keep_seed1, keep_bit1, cw_keep) = if bit {
            (
                e0.right_seed,
                e0.right_bit,
                e1.right_seed,
                e1.right_bit,
                cw_right,
            )
        } else {
            (
                e0.left_seed,
                e0.left_bit,
                e1.left_seed,
                e1.left_bit,
                cw_left,
            )
        };
        s0 = xor_seed(&keep_seed0, &mask_seed(&cw_seed, t0));
        s1 = xor_seed(&keep_seed1, &mask_seed(&cw_seed, t1));
        let new_t0 = keep_bit0 ^ (t0 & cw_keep);
        let new_t1 = keep_bit1 ^ (t1 & cw_keep);
        t0 = new_t0;
        t1 = new_t1;
    }

    // Terminal correction word: forces the XOR of the two converted leaf
    // blocks to be the unit vector at alpha's offset within its leaf.
    let block_len = params.leaf_block_len();
    let mut conv0 = vec![0u8; block_len];
    let mut conv1 = vec![0u8; block_len];
    prg.convert(&s0, &mut conv0);
    prg.convert(&s1, &mut conv1);
    let mut final_cw = vec![0u8; block_len];
    for i in 0..block_len {
        final_cw[i] = conv0[i] ^ conv1[i];
    }
    final_cw[(leaf_offset / 8) as usize] ^= 1u8 << (leaf_offset % 8);

    // Exactly one party has its control bit set at the target leaf
    // (t0 ^ t1 == 1 along the path by construction), so the final CW is
    // applied an odd number of times and the unit bit survives the XOR.
    debug_assert!(t0 ^ t1, "control-bit invariant broken at the leaf");

    let k0 = DpfKey {
        params: *params,
        party: 0,
        root_seed: seed0,
        cws: cws.clone(),
        final_cw: final_cw.clone(),
    };
    let k1 = DpfKey {
        params: *params,
        party: 1,
        root_seed: seed1,
        cws,
        final_cw,
    };
    (k0, k1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_validation() {
        assert!(DpfParams::new(0, 0).is_err());
        assert!(DpfParams::new(41, 7).is_err());
        assert!(DpfParams::new(8, 8).is_err(), "term must be < domain");
        assert!(DpfParams::new(22, 14).is_err(), "term too wide");
        let p = DpfParams::new(22, 7).unwrap();
        assert_eq!(p.domain_size(), 1 << 22);
        assert_eq!(p.tree_depth(), 15);
        assert_eq!(p.leaf_width(), 128);
        assert_eq!(p.leaf_block_len(), 16);
        assert_eq!(p.output_len(), (1 << 22) / 8);
    }

    #[test]
    fn default_termination_clamps_small_domains() {
        assert_eq!(
            DpfParams::with_default_termination(3).unwrap().term_bits(),
            2
        );
        assert_eq!(
            DpfParams::with_default_termination(22).unwrap().term_bits(),
            7
        );
    }

    #[test]
    fn leaf_block_len_subbyte_widths() {
        // term_bits = 0..2 give leaf widths 1, 2, 4 bits -> 1 byte blocks.
        for t in 0..3 {
            assert_eq!(DpfParams::new(8, t).unwrap().leaf_block_len(), 1);
        }
    }

    #[test]
    fn gen_is_randomized_but_structure_matches() {
        let params = DpfParams::new(10, 2).unwrap();
        let (a0, _) = gen(&params, 3);
        let (b0, _) = gen(&params, 3);
        assert_ne!(a0.root_seed, b0.root_seed, "fresh randomness per gen");
        assert_eq!(a0.cws.len(), params.tree_depth() as usize);
        assert_eq!(a0.final_cw.len(), params.leaf_block_len());
    }

    #[test]
    fn gen_with_seeds_is_deterministic() {
        let params = DpfParams::new(12, 3).unwrap();
        let (a0, a1) = gen_with_seeds(&params, 100, [1; 16], [2; 16]);
        let (b0, b1) = gen_with_seeds(&params, 100, [1; 16], [2; 16]);
        assert_eq!(a0, b0);
        assert_eq!(a1, b1);
    }

    #[test]
    fn parties_share_correction_words() {
        let params = DpfParams::new(12, 3).unwrap();
        let (k0, k1) = gen(&params, 77);
        assert_eq!(k0.cws, k1.cws);
        assert_eq!(k0.final_cw, k1.final_cw);
        assert_ne!(k0.root_seed, k1.root_seed);
        assert_eq!(k0.party(), 0);
        assert_eq!(k1.party(), 1);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn alpha_out_of_range_panics() {
        let params = DpfParams::new(4, 1).unwrap();
        gen(&params, 16);
    }

    #[test]
    fn correctness_at_domain_edges() {
        // alpha = 0 and alpha = max must both work (off-by-one traps).
        for domain_bits in [1u32, 2, 5, 9] {
            let params = DpfParams::new(domain_bits, 0).unwrap();
            for alpha in [0, params.domain_size() - 1] {
                let (k0, k1) = gen(&params, alpha);
                for x in 0..params.domain_size() {
                    let got = k0.eval_point(x) ^ k1.eval_point(x);
                    assert_eq!(got, x == alpha, "d={domain_bits} alpha={alpha} x={x}");
                }
            }
        }
    }
}
