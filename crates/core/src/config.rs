//! Modes of operation and server configuration.

use lightweb_dpf::DpfParams;
use std::time::Duration;

/// A ZLTP mode of operation (paper §2.2). Numeric values are the on-wire
/// identifiers used during negotiation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Mode {
    /// Two-server PIR over distributed point functions. Requires two
    /// non-colluding servers; the prototype mode the paper benchmarks.
    TwoServerPir = 1,
    /// Single-server PIR from LWE (SimplePIR-style). Cryptographic
    /// assumptions only; higher cost.
    SingleServerLwe = 2,
    /// Hardware-enclave + oblivious RAM. Polylogarithmic cost; trusts
    /// hardware.
    Enclave = 3,
}

impl Mode {
    /// Parse a wire identifier.
    pub fn from_wire(v: u8) -> Option<Mode> {
        match v {
            1 => Some(Mode::TwoServerPir),
            2 => Some(Mode::SingleServerLwe),
            3 => Some(Mode::Enclave),
            _ => None,
        }
    }

    /// The wire identifier.
    pub fn to_wire(self) -> u8 {
        self as u8
    }

    /// The security assumptions this mode rests on (paper §2.1), for
    /// operator dashboards and docs.
    pub fn assumptions(self) -> &'static str {
        match self {
            Mode::TwoServerPir => "non-collusion (1 of 2 servers honest) + PRG security",
            Mode::SingleServerLwe => "learning-with-errors hardness",
            Mode::Enclave => "hardware enclave isolation",
        }
    }
}

/// An ordered set of modes, most preferred first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModeSet(Vec<Mode>);

impl ModeSet {
    /// Build from a preference-ordered list. Duplicates are removed,
    /// keeping the first occurrence.
    pub fn new(modes: impl IntoIterator<Item = Mode>) -> Self {
        let mut seen = Vec::new();
        for m in modes {
            if !seen.contains(&m) {
                seen.push(m);
            }
        }
        Self(seen)
    }

    /// The modes, most preferred first.
    pub fn modes(&self) -> &[Mode] {
        &self.0
    }

    /// Whether `mode` is in the set.
    pub fn contains(&self, mode: Mode) -> bool {
        self.0.contains(&mode)
    }

    /// Negotiate: the server picks its most-preferred mode that the client
    /// also supports (server preference wins, matching the paper's framing
    /// that *CDNs* choose which modes to support based on cost tolerance).
    pub fn negotiate(server: &ModeSet, client: &ModeSet) -> Option<Mode> {
        server.0.iter().copied().find(|m| client.contains(*m))
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// How the server drives TCP connections.
///
/// The in-memory transport ([`crate::transport::mem_pair`]) is unaffected:
/// it always runs one session per thread, which is what tests and the
/// in-process sharded simulation want.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoModel {
    /// One blocking OS thread per accepted connection (the historical
    /// model). Simple, debuggable, and fine up to a few hundred mostly
    /// active sessions; collapses under tens of thousands of mostly-idle
    /// ones.
    Threads,
    /// A single epoll-driven reactor thread owns every accepted socket,
    /// runs the per-connection framing state machine, and hands complete
    /// requests to the batcher / engine pool (`lightweb-reactor`).
    Reactor,
}

impl IoModel {
    /// Stable name used in CLI flags, env vars, and snapshots.
    pub fn name(&self) -> &'static str {
        match self {
            IoModel::Threads => "threads",
            IoModel::Reactor => "reactor",
        }
    }

    /// Parse a stable name back.
    pub fn from_name(s: &str) -> Option<IoModel> {
        match s {
            "threads" => Some(IoModel::Threads),
            "reactor" => Some(IoModel::Reactor),
            _ => None,
        }
    }

    /// The model selected by `LIGHTWEB_IO_MODEL` (`threads` | `reactor`),
    /// defaulting to [`IoModel::Threads`]. Unknown values fall back to
    /// the default loudly (logged and counted) rather than silently: a
    /// typo in a deployment env file must not flip the io model.
    pub fn from_env() -> IoModel {
        match std::env::var("LIGHTWEB_IO_MODEL") {
            Ok(v) => match IoModel::from_name(v.trim()) {
                Some(m) => m,
                None => {
                    lightweb_telemetry::counter!("zltp.config.io_model.invalid").inc();
                    lightweb_telemetry::events::emit(
                        "zltp.config.io_model.invalid",
                        &[("value", lightweb_telemetry::events::Field::Str(&v))],
                    );
                    IoModel::Threads
                }
            },
            Err(_) => IoModel::Threads,
        }
    }
}

/// Batching policy for the two-server PIR scan (paper §5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchConfig {
    /// Maximum requests answered by one scan pass. 1 disables batching.
    /// The paper contrasts 1 (0.51 s latency, 2 req/s) with 16 (2.6 s,
    /// 6 req/s).
    pub max_batch: usize,
    /// How long the batcher waits for more requests before scanning a
    /// partial batch.
    pub window: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            window: Duration::from_millis(10),
        }
    }
}

impl BatchConfig {
    /// No batching: every request pays a full scan.
    pub fn unbatched() -> Self {
        Self {
            max_batch: 1,
            window: Duration::ZERO,
        }
    }
}

/// Static configuration of one ZLTP server.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The universe this server serves (e.g. `"main"`, `"large-pages"`).
    pub universe_id: String,
    /// Fixed blob size in bytes. §3.1: all data blobs in a universe share
    /// one fixed size (e.g. 4 KiB); code blobs live in a separate universe
    /// with a larger fixed size.
    pub blob_len: usize,
    /// log2 of the keyword slot domain (22 in the paper's microbenchmarks).
    pub domain_bits: u32,
    /// DPF early-termination width.
    pub term_bits: u32,
    /// Modes this server is willing to run, most preferred first.
    pub modes: ModeSet,
    /// Keyword-hash key shared by everyone in the universe.
    pub keyword_hash_key: [u8; 16],
    /// Batching policy (two-server PIR mode only).
    pub batch: BatchConfig,
    /// Which party of the two-server pair this instance plays (0 or 1).
    /// Ignored by single-server modes.
    pub party: u8,
    /// LWE secret dimension for the single-server mode. 1024 is the
    /// production-shaped choice; tests use smaller (insecure) values.
    pub lwe_n: usize,
    /// When non-zero, the two-server PIR backend runs as a §5.2 sharded
    /// deployment with `2^shard_prefix_bits` data-server shards behind an
    /// in-process front-end. 0 = monolithic.
    pub shard_prefix_bits: u32,
    /// Width of the scan pool the two-server PIR backend partitions its
    /// DPF evaluation and XOR scan across. 0 = auto: the
    /// `LIGHTWEB_SCAN_THREADS` environment variable if set, else the
    /// machine's available parallelism.
    pub scan_threads: usize,
    /// How TCP connections are driven (`lightweb_reactor::serve`
    /// dispatches on this). All stock constructors read it from the
    /// `LIGHTWEB_IO_MODEL` env var via [`IoModel::from_env`]; the
    /// in-memory transport ignores it.
    pub io_model: IoModel,
}

impl ServerConfig {
    /// A small-universe config suitable for tests and examples: 1 KiB
    /// blobs, 2^14 slots.
    pub fn small(universe_id: &str, party: u8) -> Self {
        Self {
            universe_id: universe_id.to_string(),
            blob_len: 1024,
            domain_bits: 14,
            term_bits: 7,
            modes: ModeSet::new([Mode::TwoServerPir, Mode::Enclave, Mode::SingleServerLwe]),
            keyword_hash_key: [0x4c; 16],
            batch: BatchConfig::default(),
            party,
            lwe_n: 64,
            shard_prefix_bits: 0,
            scan_threads: 0,
            io_model: IoModel::from_env(),
        }
    }

    /// The load-harness deployment shape: two-server PIR only, 1 KiB
    /// blobs, 2^14 slots, and a short-window batcher (8-deep, 4 ms) so a
    /// rate sweep's saturation knee reflects scan cost rather than batch
    /// waits. Used by `reproduce load` and the load integration tests.
    pub fn load_test(universe_id: &str, party: u8) -> Self {
        Self {
            universe_id: universe_id.to_string(),
            blob_len: 1024,
            domain_bits: 14,
            term_bits: 7,
            modes: ModeSet::new([Mode::TwoServerPir]),
            keyword_hash_key: [0x4c; 16],
            batch: BatchConfig {
                max_batch: 8,
                window: Duration::from_millis(4),
            },
            party,
            lwe_n: 64,
            shard_prefix_bits: 0,
            scan_threads: 0,
            io_model: IoModel::from_env(),
        }
    }

    /// The paper's §5.1 microbenchmark shape: 4 KiB buckets, 2^22 slots.
    /// Heavy — benchmarks only.
    pub fn paper_microbench(party: u8) -> Self {
        Self {
            universe_id: "c4-shard".to_string(),
            blob_len: 4096,
            domain_bits: 22,
            term_bits: 7,
            modes: ModeSet::new([Mode::TwoServerPir]),
            keyword_hash_key: [0x4c; 16],
            batch: BatchConfig::default(),
            party,
            lwe_n: 1024,
            shard_prefix_bits: 0,
            scan_threads: 0,
            io_model: IoModel::from_env(),
        }
    }

    /// The DPF parameters implied by this config.
    pub fn dpf_params(&self) -> DpfParams {
        DpfParams::new(self.domain_bits, self.term_bits)
            .expect("ServerConfig carries validated DPF parameters")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_wire_roundtrip() {
        for m in [Mode::TwoServerPir, Mode::SingleServerLwe, Mode::Enclave] {
            assert_eq!(Mode::from_wire(m.to_wire()), Some(m));
        }
        assert_eq!(Mode::from_wire(0), None);
        assert_eq!(Mode::from_wire(99), None);
    }

    #[test]
    fn negotiation_prefers_server_order() {
        let server = ModeSet::new([Mode::Enclave, Mode::TwoServerPir]);
        let client = ModeSet::new([Mode::TwoServerPir, Mode::Enclave]);
        assert_eq!(ModeSet::negotiate(&server, &client), Some(Mode::Enclave));
    }

    #[test]
    fn negotiation_fails_without_overlap() {
        let server = ModeSet::new([Mode::Enclave]);
        let client = ModeSet::new([Mode::TwoServerPir]);
        assert_eq!(ModeSet::negotiate(&server, &client), None);
    }

    #[test]
    fn modeset_dedups_preserving_order() {
        let s = ModeSet::new([Mode::Enclave, Mode::TwoServerPir, Mode::Enclave]);
        assert_eq!(s.modes(), &[Mode::Enclave, Mode::TwoServerPir]);
    }

    #[test]
    fn configs_produce_valid_params() {
        assert_eq!(ServerConfig::small("u", 0).dpf_params().domain_bits(), 14);
        assert_eq!(
            ServerConfig::paper_microbench(1).dpf_params().domain_bits(),
            22
        );
    }

    #[test]
    fn load_test_profile_is_two_server_only_with_short_batch_window() {
        let cfg = ServerConfig::load_test("load", 1);
        assert_eq!(cfg.modes.modes(), &[Mode::TwoServerPir]);
        assert_eq!(cfg.party, 1);
        assert_eq!(cfg.batch.max_batch, 8);
        assert!(cfg.batch.window <= Duration::from_millis(5));
        cfg.dpf_params();
    }

    #[test]
    fn assumptions_strings_cover_all_modes() {
        assert!(Mode::TwoServerPir.assumptions().contains("non-collusion"));
        assert!(Mode::SingleServerLwe.assumptions().contains("errors"));
        assert!(Mode::Enclave.assumptions().contains("hardware"));
    }
}
