//! The §5.2 scale-out architecture, re-exported from `lightweb-engine`.
//!
//! The sharded deployment (a front-end splitting DPF evaluation across
//! data-server shards) moved to `lightweb-engine` alongside the rest of the
//! query backends; this module keeps the historical
//! `lightweb_core::deployment::*` paths working. Its fallible operations
//! now return [`lightweb_engine::EngineError`], convertible into
//! [`crate::ZltpError`] via `From`.

pub use lightweb_engine::sharded::{DeploymentEntries, ShardedDeployment, ShardedQueryStats};
