//! Blocking byte-stream transports and frame I/O.
//!
//! ZLTP is transport-agnostic: anything that is `Read + Write` carries it.
//! Two transports ship here:
//!
//! * [`MemDuplex`] — an in-process duplex built on crossbeam channels, used
//!   by tests, benchmarks, and the sharded-deployment simulation (where one
//!   process stands in for a rack of machines).
//! * `std::net::TcpStream` — the real thing; [`crate::server::ZltpServer`]
//!   can listen on a socket, and every integration test that matters runs
//!   over both transports.
//!
//! [`FramedConn`] layers the ZLTP wire format over any such stream and
//! keeps per-direction byte counters — the raw material for the paper's
//! communication measurements (§5.1: 13.6 KiB per request).

use crate::error::ZltpError;
use crate::wire::{Frame, Message, MAX_FRAME_LEN, TRACE_EXT_FLAG};
use crossbeam::channel::{unbounded, Receiver, Sender};
use lightweb_telemetry::trace::TraceContext;
use std::io::{Read, Write};

/// Encode one protocol message into its complete wire image — 4-byte
/// big-endian length, type byte (trace flag set when `trace` is present),
/// payload, and optional 32-byte trace extension.
///
/// This is the single source of truth for ZLTP frame layout on the send
/// side; [`FramedConn::send_traced`] (blocking) and the reactor's write
/// queue (nonblocking) both go through it.
pub fn encode_frame(msg: &Message, trace: Option<&TraceContext>) -> Result<Vec<u8>, ZltpError> {
    let frame = msg.to_frame();
    debug_assert_eq!(
        frame.msg_type & TRACE_EXT_FLAG,
        0,
        "message types never carry the trace flag themselves"
    );
    let ext = trace.map(TraceContext::to_bytes);
    let ext_len = ext.as_ref().map_or(0, |e| e.len());
    let len = 1 + frame.payload.len() + ext_len;
    if len > MAX_FRAME_LEN {
        return Err(ZltpError::Wire(format!("frame too large: {len} bytes")));
    }
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_be_bytes());
    out.push(frame.msg_type | if ext.is_some() { TRACE_EXT_FLAG } else { 0 });
    out.extend_from_slice(&frame.payload);
    if let Some(ext) = &ext {
        out.extend_from_slice(ext);
    }
    Ok(out)
}

/// Incremental ZLTP frame decoder: feed it byte chunks as they arrive off
/// a nonblocking socket, pull complete messages out.
///
/// Unlike [`FramedConn::recv_traced`], which blocks inside `read_exact`
/// until a whole frame is present, the decoder holds partial state across
/// arbitrarily fragmented input — one byte at a time is fine. Invalid
/// length words (zero, or above [`MAX_FRAME_LEN`]) are rejected as soon as
/// the 5-byte header is visible, *before* any body is buffered, so a
/// hostile peer cannot make the server allocate for a frame it will never
/// accept. After an error the decoder is poisoned garbage; the connection
/// must be torn down.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily to keep `extend` O(n)
    /// amortized instead of memmoving on every frame.
    pos: usize,
}

/// Frame header size: 4-byte length word + 1 type byte.
const HEADER_LEN: usize = 5;

impl FrameDecoder {
    /// A fresh decoder with no buffered bytes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes read off the wire.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing if the dead prefix dominates the buffer.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (partial frame in flight).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to decode one complete message. `Ok(None)` means more bytes
    /// are needed; `Err` means the peer violated the framing and the
    /// connection should be closed.
    #[allow(clippy::type_complexity)]
    pub fn decode(&mut self) -> Result<Option<(Message, Option<TraceContext>)>, ZltpError> {
        if self.buffered() < HEADER_LEN {
            return Ok(None);
        }
        let head = &self.buf[self.pos..self.pos + HEADER_LEN];
        let len = u32::from_be_bytes(head[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(ZltpError::Wire(format!("invalid frame length {len}")));
        }
        if self.buffered() < 4 + len {
            return Ok(None);
        }
        let raw_type = head[4];
        let body = self.buf[self.pos + HEADER_LEN..self.pos + 4 + len].to_vec();
        self.pos += 4 + len;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        let (frame, trace) = Frame::strip_trace_ext(raw_type, body)?;
        Ok(Some((Message::from_frame(&frame)?, trace)))
    }
}

/// Apply ZLTP's latency-critical socket options to a TCP stream.
///
/// `TCP_NODELAY` matters because every ZLTP exchange is a single small
/// frame each way: with Nagle on, answers sit behind delayed ACKs and
/// loopback p50 goes from ~26 ms to ~380 ms (PR 6's first finding). A
/// failure to set the option is survivable — the connection still works,
/// just slower — so it is logged and counted
/// (`transport.socket.nodelay.errors`) rather than treated as fatal.
/// `who` labels the call site (e.g. `"server-accept"`, `"shard-link"`).
pub fn tune_zltp_socket(stream: &std::net::TcpStream, who: &'static str) {
    if let Err(e) = stream.set_nodelay(true) {
        lightweb_telemetry::counter!("transport.socket.nodelay.errors").inc();
        lightweb_telemetry::events::emit(
            "transport.socket.nodelay.error",
            &[
                ("who", lightweb_telemetry::events::Field::Str(who)),
                (
                    "error",
                    lightweb_telemetry::events::Field::Str(&e.to_string()),
                ),
            ],
        );
    }
}

/// One end of an in-memory duplex byte stream.
///
/// Writes are delivered as chunks to the peer's receive queue; reads pull
/// chunks and buffer partial consumption. Dropping an end causes the peer's
/// reads to fail like a closed socket.
pub struct MemDuplex {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Unconsumed remainder of the last received chunk.
    pending: Vec<u8>,
    pending_pos: usize,
}

/// Create a connected pair of in-memory duplex streams.
pub fn mem_pair() -> (MemDuplex, MemDuplex) {
    let (tx_a, rx_b) = unbounded();
    let (tx_b, rx_a) = unbounded();
    (
        MemDuplex {
            tx: tx_a,
            rx: rx_a,
            pending: Vec::new(),
            pending_pos: 0,
        },
        MemDuplex {
            tx: tx_b,
            rx: rx_b,
            pending: Vec::new(),
            pending_pos: 0,
        },
    )
}

impl Read for MemDuplex {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        if self.pending_pos >= self.pending.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.pending_pos = 0;
                }
                // Peer hung up: EOF.
                Err(_) => return Ok(0),
            }
        }
        let n = (self.pending.len() - self.pending_pos).min(buf.len());
        buf[..n].copy_from_slice(&self.pending[self.pending_pos..self.pending_pos + n]);
        self.pending_pos += n;
        Ok(n)
    }
}

impl Write for MemDuplex {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer closed"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A frame-oriented connection over any blocking byte stream, with byte
/// accounting.
pub struct FramedConn<S> {
    stream: S,
    bytes_sent: u64,
    bytes_received: u64,
}

impl<S: Read + Write> FramedConn<S> {
    /// Wrap a stream.
    pub fn new(stream: S) -> Self {
        Self {
            stream,
            bytes_sent: 0,
            bytes_received: 0,
        }
    }

    /// Total bytes written (frames incl. headers).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Total bytes read.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received
    }

    /// Send one protocol message without a trace extension.
    pub fn send(&mut self, msg: &Message) -> Result<(), ZltpError> {
        self.send_traced(msg, None)
    }

    /// Send one protocol message, attaching `trace` as the frame's
    /// trace extension when present ([`TRACE_EXT_FLAG`] + 32 trailing
    /// bytes, counted in the length word and the byte accounting).
    pub fn send_traced(
        &mut self,
        msg: &Message,
        trace: Option<&TraceContext>,
    ) -> Result<(), ZltpError> {
        let wire = encode_frame(msg, trace)?;
        // Count before writing: once the peer observes this frame, the
        // counters are guaranteed settled, so a reader on the other side
        // can snapshot the registry without racing the sender thread. (A
        // failed write overcounts by one frame; the connection is dead at
        // that point and its accounting with it.)
        let n = wire.len() as u64;
        self.bytes_sent += n;
        lightweb_telemetry::counter!("transport.bytes.sent").add(n);
        lightweb_telemetry::counter!("transport.frames.sent").inc();
        self.stream.write_all(&wire)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Receive one protocol message (blocking), dropping any trace
    /// extension.
    pub fn recv(&mut self) -> Result<Message, ZltpError> {
        self.recv_traced().map(|(msg, _)| msg)
    }

    /// Receive one protocol message plus its trace extension, if the
    /// peer attached one (blocking). Peers that predate tracing never
    /// set the flag, so this decodes their frames exactly as [`recv`]
    /// always has.
    ///
    /// [`recv`]: FramedConn::recv
    pub fn recv_traced(&mut self) -> Result<(Message, Option<TraceContext>), ZltpError> {
        let mut header = [0u8; 5];
        self.stream.read_exact(&mut header)?;
        let len = u32::from_be_bytes(header[..4].try_into().unwrap()) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(ZltpError::Wire(format!("invalid frame length {len}")));
        }
        let raw_type = header[4];
        let mut body = vec![0u8; len - 1];
        self.stream.read_exact(&mut body)?;
        let n = (4 + len) as u64;
        self.bytes_received += n;
        lightweb_telemetry::counter!("transport.bytes.recv").add(n);
        lightweb_telemetry::counter!("transport.frames.recv").inc();
        let (frame, trace) = Frame::strip_trace_ext(raw_type, body)?;
        Ok((Message::from_frame(&frame)?, trace))
    }

    /// Borrow the inner stream (e.g. to inspect socket options).
    pub fn get_ref(&self) -> &S {
        &self.stream
    }

    /// Consume the wrapper and return the inner stream.
    pub fn into_inner(self) -> S {
        self.stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_pair_carries_bytes_both_ways() {
        let (mut a, mut b) = mem_pair();
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        b.write_all(b"world").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"world");
    }

    #[test]
    fn partial_reads_buffer_correctly() {
        let (mut a, mut b) = mem_pair();
        a.write_all(&[1, 2, 3, 4, 5, 6]).unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3, 4]);
        let mut rest = [0u8; 2];
        b.read_exact(&mut rest).unwrap();
        assert_eq!(rest, [5, 6]);
    }

    #[test]
    fn dropped_peer_reads_eof_and_write_fails() {
        let (mut a, b) = mem_pair();
        drop(b);
        let mut buf = [0u8; 1];
        assert_eq!(a.read(&mut buf).unwrap(), 0, "EOF expected");
        assert!(a.write_all(b"x").is_err());
    }

    #[test]
    fn framed_messages_roundtrip_over_mem() {
        let (a, b) = mem_pair();
        let mut ca = FramedConn::new(a);
        let mut cb = FramedConn::new(b);
        let msg = Message::Get {
            request_id: 3,
            payload: vec![7; 100],
        };
        ca.send(&msg).unwrap();
        assert_eq!(cb.recv().unwrap(), msg);
        assert_eq!(ca.bytes_sent(), cb.bytes_received());
        assert!(ca.bytes_sent() > 100);
    }

    #[test]
    fn framed_messages_roundtrip_over_tcp() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = FramedConn::new(stream);
            let msg = conn.recv().unwrap();
            conn.send(&msg).unwrap(); // echo
        });
        let mut conn = FramedConn::new(std::net::TcpStream::connect(addr).unwrap());
        let msg = Message::GetResponse {
            request_id: 1,
            payload: vec![0xEE; 1024],
        };
        conn.send(&msg).unwrap();
        assert_eq!(conn.recv().unwrap(), msg);
        server.join().unwrap();
    }

    #[test]
    fn traced_frames_roundtrip_and_plain_peers_interop() {
        let (a, b) = mem_pair();
        let mut ca = FramedConn::new(a);
        let mut cb = FramedConn::new(b);
        let msg = Message::Get {
            request_id: 9,
            payload: vec![3; 50],
        };
        let ctx = TraceContext {
            trace_id: 42,
            span_id: 7,
            parent_id: 1,
        };
        // Traced sender → trace-aware receiver.
        ca.send_traced(&msg, Some(&ctx)).unwrap();
        assert_eq!(cb.recv_traced().unwrap(), (msg.clone(), Some(ctx)));
        // Traced sender → legacy receiver (recv drops the extension).
        ca.send_traced(&msg, Some(&ctx)).unwrap();
        assert_eq!(cb.recv().unwrap(), msg);
        // Legacy sender → trace-aware receiver.
        ca.send(&msg).unwrap();
        assert_eq!(cb.recv_traced().unwrap(), (msg.clone(), None));
        // Byte accounting covers the extension: the two traced sends
        // cost TRACE_EXT_LEN more than the plain one, each.
        let plain = ca.bytes_sent() - 2 * crate::wire::TRACE_EXT_LEN as u64;
        assert_eq!(plain % 3, 0, "three equal frames plus two extensions");
        assert_eq!(ca.bytes_sent(), cb.bytes_received());
    }

    #[test]
    fn encode_frame_matches_framed_conn_bytes() {
        let msg = Message::Get {
            request_id: 11,
            payload: vec![5; 37],
        };
        let ctx = TraceContext {
            trace_id: 1,
            span_id: 2,
            parent_id: 3,
        };
        for trace in [None, Some(ctx)] {
            let wire = encode_frame(&msg, trace.as_ref()).unwrap();
            let (a, b) = mem_pair();
            let mut ca = FramedConn::new(a);
            ca.send_traced(&msg, trace.as_ref()).unwrap();
            let mut got = vec![0u8; wire.len()];
            let mut rb = b;
            rb.read_exact(&mut got).unwrap();
            assert_eq!(got, wire);
        }
    }

    #[test]
    fn decoder_handles_byte_at_a_time_input() {
        let msg = Message::Get {
            request_id: 77,
            payload: vec![9; 300],
        };
        let ctx = TraceContext {
            trace_id: 0xABCD,
            span_id: 12,
            parent_id: 0,
        };
        let wire = encode_frame(&msg, Some(&ctx)).unwrap();
        let mut dec = FrameDecoder::new();
        for (i, byte) in wire.iter().enumerate() {
            assert!(
                dec.decode().unwrap().is_none(),
                "no frame before byte {i} of {}",
                wire.len()
            );
            dec.extend(std::slice::from_ref(byte));
        }
        assert_eq!(dec.decode().unwrap(), Some((msg, Some(ctx))));
        assert_eq!(dec.buffered(), 0);
        assert!(dec.decode().unwrap().is_none());
    }

    #[test]
    fn decoder_handles_frames_split_and_coalesced_across_reads() {
        let msgs: Vec<Message> = (0..5)
            .map(|i| Message::Get {
                request_id: i,
                payload: vec![i as u8; 64 * (i as usize + 1)],
            })
            .collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&encode_frame(m, None).unwrap());
        }
        // Feed in ragged chunks that straddle frame boundaries.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for chunk in wire.chunks(97) {
            dec.extend(chunk);
            while let Some((m, t)) = dec.decode().unwrap() {
                assert_eq!(t, None);
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_rejects_oversized_frame_from_header_alone() {
        let mut dec = FrameDecoder::new();
        // Claim a 1 GiB frame; only the header ever arrives.
        dec.extend(&[0x40, 0, 0, 1, 3]);
        assert!(matches!(dec.decode(), Err(ZltpError::Wire(_))));
    }

    #[test]
    fn decoder_rejects_zero_length_frame() {
        let mut dec = FrameDecoder::new();
        dec.extend(&[0, 0, 0, 0, 0]);
        assert!(matches!(dec.decode(), Err(ZltpError::Wire(_))));
    }

    #[test]
    fn decoder_compacts_consumed_prefix() {
        let msg = Message::Get {
            request_id: 1,
            payload: vec![0; 2048],
        };
        let wire = encode_frame(&msg, None).unwrap();
        let mut dec = FrameDecoder::new();
        // Many frames through one decoder: buffered() must return to zero
        // and internal growth must stay bounded by the compaction rule.
        for _ in 0..64 {
            dec.extend(&wire);
            assert!(dec.decode().unwrap().is_some());
            assert_eq!(dec.buffered(), 0);
        }
        // Leave a partial frame in flight, then finish it.
        dec.extend(&wire[..wire.len() - 1]);
        assert!(dec.decode().unwrap().is_none());
        dec.extend(&wire[wire.len() - 1..]);
        assert_eq!(dec.decode().unwrap(), Some((msg, None)));
    }

    #[test]
    fn truncated_stream_is_an_io_error() {
        let (mut a, b) = mem_pair();
        // Write a header promising 100 bytes, then hang up.
        a.write_all(&[0, 0, 0, 100, 3]).unwrap();
        drop(a);
        let mut cb = FramedConn::new(b);
        assert!(matches!(cb.recv(), Err(ZltpError::Io(_))));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let (mut a, b) = mem_pair();
        a.write_all(&[0, 0, 0, 0, 0]).unwrap();
        let mut cb = FramedConn::new(b);
        assert!(matches!(cb.recv(), Err(ZltpError::Wire(_))));
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let (mut a, b) = mem_pair();
        // Claim a 1 GiB frame.
        a.write_all(&[0x40, 0, 0, 1, 3]).unwrap();
        let mut cb = FramedConn::new(b);
        assert!(matches!(cb.recv(), Err(ZltpError::Wire(_))));
    }

    #[test]
    fn flagged_frame_without_room_for_extension_rejected() {
        let (mut a, b) = mem_pair();
        // CLOSE with the trace flag but a 1-byte body: too short for the
        // 32-byte extension.
        a.write_all(&[0, 0, 0, 2, 8 | crate::wire::TRACE_EXT_FLAG, 0])
            .unwrap();
        let mut cb = FramedConn::new(b);
        assert!(matches!(cb.recv_traced(), Err(ZltpError::Wire(_))));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Frames with and without the trace extension round-trip over a
        /// real framed connection, in any interleaving.
        #[test]
        fn framed_conn_roundtrips_with_and_without_trace(
            request_id in any::<u32>(),
            payload in prop::collection::vec(any::<u8>(), 0..600),
            trace_id in any::<u128>(),
            span_id in any::<u64>(),
            parent_id in any::<u64>(),
            traced_first in any::<bool>(),
        ) {
            let ctx = TraceContext { trace_id, span_id, parent_id };
            let msg = Message::Get { request_id, payload };
            let (a, b) = mem_pair();
            let mut ca = FramedConn::new(a);
            let mut cb = FramedConn::new(b);
            let order = if traced_first {
                [Some(ctx), None]
            } else {
                [None, Some(ctx)]
            };
            for trace in order {
                ca.send_traced(&msg, trace.as_ref()).unwrap();
                let (got, got_trace) = cb.recv_traced().unwrap();
                prop_assert_eq!(&got, &msg);
                prop_assert_eq!(got_trace, trace);
            }
            prop_assert_eq!(ca.bytes_sent(), cb.bytes_received());
        }

        /// The incremental decoder produces exactly the sent message
        /// sequence under arbitrary fragmentation of the byte stream.
        #[test]
        fn decoder_is_fragmentation_invariant(
            payload_lens in prop::collection::vec(0usize..200, 1..6),
            traced in prop::collection::vec(any::<bool>(), 6..7),
            chunk in 1usize..64,
        ) {
            let ctx = TraceContext { trace_id: 7, span_id: 7, parent_id: 7 };
            let msgs: Vec<(Message, Option<TraceContext>)> = payload_lens
                .iter()
                .zip(traced.iter())
                .enumerate()
                .map(|(i, (len, t))| {
                    let m = Message::Get { request_id: i as u32, payload: vec![i as u8; *len] };
                    (m, t.then_some(ctx))
                })
                .collect();
            let mut wire = Vec::new();
            for (m, t) in &msgs {
                wire.extend_from_slice(&encode_frame(m, t.as_ref()).unwrap());
            }
            let mut dec = FrameDecoder::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.extend(piece);
                while let Some(out) = dec.decode().unwrap() {
                    got.push(out);
                }
            }
            prop_assert_eq!(got, msgs);
            prop_assert_eq!(dec.buffered(), 0);
        }
    }
}
