//! ZLTP client sessions and the mode-aware client drivers.
//!
//! [`ZltpSession`] is one negotiated connection to one server. On top of it:
//!
//! * [`TwoServerZltp`] — the paper's prototype client: sessions with two
//!   non-colluding servers, DPF key-pair generation per GET, XOR
//!   combination of the answers (§2.2, §5.1).
//! * [`LweClientSession`] — single-server mode: downloads the offline
//!   material (manifest + hint) once, then issues Regev-encrypted queries.
//! * [`EnclaveClient`] — enclave mode: seals the keyword to the enclave
//!   over the (simulated) attested channel.
//!
//! All drivers expose byte/request counters so the harness can reproduce
//! the paper's communication table (13.6 KiB per request at `d = 22`,
//! §5.1) without instrumenting the network.

use crate::config::{Mode, ModeSet};
use crate::error::ZltpError;
use crate::transport::FramedConn;
use crate::wire::{Message, PROTOCOL_VERSION};
use lightweb_crypto::aead::{ChaCha20Poly1305, AEAD_NONCE_LEN};
use lightweb_crypto::SipHash24;
use lightweb_dpf::DpfParams;
use lightweb_pir::lwe::{LweClient, LweParams};
use lightweb_pir::{KeywordMap, TwoServerClient};
use lightweb_telemetry::trace::{TraceContext, TraceSpan};
use std::io::{Read, Write};

/// Per-session traffic counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Bytes sent on the wire (frames included).
    pub bytes_sent: u64,
    /// Bytes received.
    pub bytes_received: u64,
    /// Private-GETs issued.
    pub requests: u64,
}

/// One negotiated ZLTP session.
pub struct ZltpSession<S: Read + Write> {
    conn: FramedConn<S>,
    mode: Mode,
    universe_id: String,
    blob_len: usize,
    params: DpfParams,
    keyword_map: KeywordMap,
    keyword_hash_key: [u8; 16],
    extra: Vec<u8>,
    next_request_id: u32,
    requests: u64,
}

impl<S: Read + Write> ZltpSession<S> {
    /// Connect: send `ClientHello`, validate the `ServerHello`, and return
    /// the ready session.
    pub fn connect(stream: S, client_modes: &ModeSet) -> Result<Self, ZltpError> {
        let mut conn = FramedConn::new(stream);
        conn.send(&Message::ClientHello {
            version: PROTOCOL_VERSION,
            modes: client_modes.modes().iter().map(|m| m.to_wire()).collect(),
        })?;
        match conn.recv()? {
            Message::ServerHello {
                version,
                universe_id,
                mode,
                blob_len,
                domain_bits,
                term_bits,
                keyword_hash_key,
                extra,
            } => {
                if version != PROTOCOL_VERSION {
                    return Err(ZltpError::VersionMismatch {
                        ours: PROTOCOL_VERSION,
                        theirs: version,
                    });
                }
                let mode = Mode::from_wire(mode)
                    .ok_or_else(|| ZltpError::Wire(format!("unknown mode {mode}")))?;
                if !client_modes.contains(mode) {
                    return Err(ZltpError::NoCommonMode);
                }
                let params = DpfParams::new(domain_bits as u32, term_bits as u32)
                    .map_err(|e| ZltpError::Wire(e.to_string()))?;
                Ok(Self {
                    conn,
                    mode,
                    universe_id,
                    blob_len: blob_len as usize,
                    params,
                    keyword_map: KeywordMap::new(&keyword_hash_key, domain_bits as u32),
                    keyword_hash_key,
                    extra,
                    next_request_id: 1,
                    requests: 0,
                })
            }
            Message::Error { code, message } => Err(ZltpError::ServerError { code, message }),
            other => Err(ZltpError::UnexpectedMessage {
                expected: "ServerHello",
                got: other.name(),
            }),
        }
    }

    /// The negotiated mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The universe served on this session.
    pub fn universe_id(&self) -> &str {
        &self.universe_id
    }

    /// The fixed blob size on this session.
    pub fn blob_len(&self) -> usize {
        self.blob_len
    }

    /// The DPF parameters of the universe.
    pub fn params(&self) -> DpfParams {
        self.params
    }

    /// The keyword→slot map of the universe.
    pub fn keyword_map(&self) -> &KeywordMap {
        &self.keyword_map
    }

    /// Mode-specific metadata from the hello.
    pub fn extra(&self) -> &[u8] {
        &self.extra
    }

    /// Traffic counters.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            bytes_sent: self.conn.bytes_sent(),
            bytes_received: self.conn.bytes_received(),
            requests: self.requests,
        }
    }

    /// Issue one raw GET and wait for its response.
    pub fn get_raw(&mut self, payload: Vec<u8>) -> Result<Vec<u8>, ZltpError> {
        self.get_raw_traced(payload, None)
    }

    /// [`ZltpSession::get_raw`] with causal tracing: a
    /// `zltp.client.transport` span covers send→receive (a child of
    /// `parent` when given, otherwise the root of a fresh trace), and its
    /// context travels to the server as the frame's trace extension so
    /// server-side spans land in the same trace tree.
    pub fn get_raw_traced(
        &mut self,
        payload: Vec<u8>,
        parent: Option<&TraceContext>,
    ) -> Result<Vec<u8>, ZltpError> {
        let span = match parent {
            Some(p) => TraceSpan::child(p, "zltp.client.transport"),
            None => TraceSpan::root("zltp.client.transport"),
        };
        let request_id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1);
        self.conn.send_traced(
            &Message::Get {
                request_id,
                payload,
            },
            Some(&span.ctx()),
        )?;
        self.requests += 1;
        match self.conn.recv()? {
            Message::GetResponse {
                request_id: rid,
                payload,
            } => {
                if rid != request_id {
                    return Err(ZltpError::Wire(format!(
                        "response id {rid} does not match request id {request_id}"
                    )));
                }
                Ok(payload)
            }
            Message::Error { code, message } => Err(ZltpError::ServerError { code, message }),
            other => Err(ZltpError::UnexpectedMessage {
                expected: "GetResponse",
                got: other.name(),
            }),
        }
    }

    /// Send any message and receive the reply (used by mode drivers).
    pub(crate) fn exchange(&mut self, msg: &Message) -> Result<Message, ZltpError> {
        self.conn.send(msg)?;
        self.conn.recv()
    }

    /// Orderly close.
    pub fn close(mut self) -> Result<(), ZltpError> {
        self.conn.send(&Message::Close)?;
        // Best-effort: the server echoes Close; ignore errors on a peer
        // that already hung up.
        let _ = self.conn.recv();
        Ok(())
    }
}

/// The two-server PIR client: one session per server, XOR combination.
pub struct TwoServerZltp<S: Read + Write> {
    s0: ZltpSession<S>,
    s1: ZltpSession<S>,
    pir: TwoServerClient,
}

impl<S: Read + Write> TwoServerZltp<S> {
    /// Connect to both servers of a non-colluding pair; both must serve the
    /// same universe with identical parameters.
    pub fn connect(stream0: S, stream1: S) -> Result<Self, ZltpError> {
        let modes = ModeSet::new([Mode::TwoServerPir]);
        let s0 = ZltpSession::connect(stream0, &modes)?;
        let s1 = ZltpSession::connect(stream1, &modes)?;
        if s0.universe_id() != s1.universe_id() {
            return Err(ZltpError::ServerPairMismatch(format!(
                "universes differ: '{}' vs '{}'",
                s0.universe_id(),
                s1.universe_id()
            )));
        }
        if s0.params() != s1.params() || s0.blob_len() != s1.blob_len() {
            return Err(ZltpError::ServerPairMismatch("parameters differ".into()));
        }
        if s0.keyword_hash_key != s1.keyword_hash_key {
            return Err(ZltpError::ServerPairMismatch(
                "keyword hash keys differ".into(),
            ));
        }
        // `extra` carries the party id; a client talking to the same
        // physical server twice would get no non-collusion protection.
        if s0.extra() == s1.extra() {
            return Err(ZltpError::ServerPairMismatch(
                "both endpoints claim the same party id".into(),
            ));
        }
        let pir = TwoServerClient::new(s0.params(), s0.blob_len());
        Ok(Self { s0, s1, pir })
    }

    /// The universe id.
    pub fn universe_id(&self) -> &str {
        self.s0.universe_id()
    }

    /// The fixed blob size.
    pub fn blob_len(&self) -> usize {
        self.s0.blob_len()
    }

    /// The universe's DPF parameters (validated identical on both
    /// sessions at connect time).
    pub fn params(&self) -> DpfParams {
        self.s0.params()
    }

    /// The universe's keyword→slot map.
    pub fn keyword_map(&self) -> &KeywordMap {
        self.s0.keyword_map()
    }

    /// Private-GET by keyword: hash to a slot, query both servers, combine.
    ///
    /// An unpublished key returns the all-zero blob (indistinguishable from
    /// a published all-zero blob; the lightweb blob encoding layers a
    /// length prefix on top precisely so this case is recognizable).
    pub fn private_get(&mut self, key: &str) -> Result<Vec<u8>, ZltpError> {
        self.private_get_traced(key, None)
    }

    /// [`TwoServerZltp::private_get`] under an existing trace context
    /// (e.g. the browser's per-page span).
    pub fn private_get_traced(
        &mut self,
        key: &str,
        parent: Option<&TraceContext>,
    ) -> Result<Vec<u8>, ZltpError> {
        let slot = self.s0.keyword_map().slot(key.as_bytes());
        self.private_get_slot_traced(slot, parent)
    }

    /// Private-GET by raw slot. Also used for dummy (cover) queries: a
    /// fetch of a uniformly random slot is indistinguishable from a real
    /// one — the lightweb browser relies on this for its fixed per-page
    /// fetch count (§3.2).
    pub fn private_get_slot(&mut self, slot: u64) -> Result<Vec<u8>, ZltpError> {
        self.private_get_slot_traced(slot, None)
    }

    /// [`TwoServerZltp::private_get_slot`] with causal tracing: one
    /// `zltp.client.request` span covers the whole logical GET — both
    /// server hops, each a `zltp.client.transport` child — rooted fresh
    /// unless `parent` chains it under a larger operation.
    pub fn private_get_slot_traced(
        &mut self,
        slot: u64,
        parent: Option<&TraceContext>,
    ) -> Result<Vec<u8>, ZltpError> {
        let span = match parent {
            Some(p) => TraceSpan::child(p, "zltp.client.request"),
            None => TraceSpan::root("zltp.client.request"),
        };
        let ctx = span.ctx();
        let query = self.pir.query_slot(slot);
        let a0 = self
            .s0
            .get_raw_traced(query.key0.to_bytes().to_vec(), Some(&ctx))?;
        let a1 = self
            .s1
            .get_raw_traced(query.key1.to_bytes().to_vec(), Some(&ctx))?;
        if a0.len() != self.blob_len() || a1.len() != self.blob_len() {
            return Err(ZltpError::Wire("answer has wrong blob size".into()));
        }
        TwoServerClient::combine(&a0, &a1).map_err(|e| ZltpError::Engine(e.to_string()))
    }

    /// Combined traffic counters across both sessions.
    pub fn stats(&self) -> SessionStats {
        let a = self.s0.stats();
        let b = self.s1.stats();
        SessionStats {
            bytes_sent: a.bytes_sent + b.bytes_sent,
            bytes_received: a.bytes_received + b.bytes_received,
            requests: a.requests, // logical GETs (each touches both servers)
        }
    }

    /// Close both sessions.
    pub fn close(self) -> Result<(), ZltpError> {
        self.s0.close()?;
        self.s1.close()
    }
}

/// Single-server LWE client.
pub struct LweClientSession<S: Read + Write> {
    session: ZltpSession<S>,
    lwe: LweClient,
    /// Sorted key hashes; a key's record index is its rank here.
    manifest: Vec<u64>,
    hint: Vec<u32>,
    sip: SipHash24,
}

impl<S: Read + Write> LweClientSession<S> {
    /// Connect in LWE mode and download the offline material.
    pub fn connect(stream: S) -> Result<Self, ZltpError> {
        let modes = ModeSet::new([Mode::SingleServerLwe]);
        let mut session = ZltpSession::connect(stream, &modes)?;
        // extra = seed(32) || n(u32) || cols(u64)
        let extra = session.extra().to_vec();
        if extra.len() != 44 {
            return Err(ZltpError::Wire(format!(
                "bad LWE hello extra ({} bytes)",
                extra.len()
            )));
        }
        let seed: [u8; 32] = extra[..32].try_into().unwrap();
        let n = u32::from_be_bytes(extra[32..36].try_into().unwrap()) as usize;
        let cols = u64::from_be_bytes(extra[36..44].try_into().unwrap()) as usize;
        let lwe = LweClient::new(LweParams { n }, seed, cols, session.blob_len());

        let (manifest, hint) = match session.exchange(&Message::LweSetupRequest)? {
            Message::LweSetupResponse { key_hashes, hint } => (key_hashes, hint),
            Message::Error { code, message } => {
                return Err(ZltpError::ServerError { code, message })
            }
            other => {
                return Err(ZltpError::UnexpectedMessage {
                    expected: "LweSetupResponse",
                    got: other.name(),
                })
            }
        };
        let sip = SipHash24::new(&session.keyword_hash_key);
        Ok(Self {
            session,
            lwe,
            manifest,
            hint,
            sip,
        })
    }

    /// Size of the one-time offline download (hint + manifest).
    pub fn offline_bytes(&self) -> usize {
        self.hint.len() * 4 + self.manifest.len() * 8
    }

    /// Private-GET by keyword. Returns `None` when the key is not in the
    /// manifest (presence is public metadata in this mode); a *dummy* query
    /// is still issued so the server-visible traffic is identical.
    pub fn private_get(&mut self, key: &str) -> Result<Option<Vec<u8>>, ZltpError> {
        let h = self.sip.hash(key.as_bytes());
        let found = self.manifest.binary_search(&h).ok();
        if self.manifest.is_empty() {
            return Ok(None);
        }
        let span = TraceSpan::root("zltp.client.request");
        let index = found.unwrap_or(0);
        let query = self.lwe.query(index);
        let mut payload = Vec::with_capacity(query.payload.len() * 4);
        for v in &query.payload {
            payload.extend_from_slice(&v.to_be_bytes());
        }
        let raw = self.session.get_raw_traced(payload, Some(&span.ctx()))?;
        if raw.len() % 4 != 0 {
            return Err(ZltpError::Wire("LWE answer not a u32 vector".into()));
        }
        let answer: Vec<u32> = raw
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
            .collect();
        let blob = self
            .lwe
            .decode(&query, &self.hint, &answer)
            .map_err(|e| ZltpError::Engine(e.to_string()))?;
        Ok(found.map(|_| blob))
    }

    /// Traffic counters.
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// Orderly close.
    pub fn close(self) -> Result<(), ZltpError> {
        self.session.close()
    }
}

/// Enclave-mode client: keywords travel sealed to the enclave.
pub struct EnclaveClient<S: Read + Write> {
    session: ZltpSession<S>,
    aead: ChaCha20Poly1305,
}

impl<S: Read + Write> EnclaveClient<S> {
    /// Connect in enclave mode. The hello's `extra` carries the session key
    /// that a real deployment would derive from remote attestation.
    pub fn connect(stream: S) -> Result<Self, ZltpError> {
        let modes = ModeSet::new([Mode::Enclave]);
        let session = ZltpSession::connect(stream, &modes)?;
        let key: [u8; 32] = session
            .extra()
            .try_into()
            .map_err(|_| ZltpError::Wire("bad enclave session key".into()))?;
        Ok(Self {
            session,
            aead: ChaCha20Poly1305::new(&key),
        })
    }

    /// Private-GET by keyword. Returns `None` for unpublished keys; the
    /// enclave performs the same ORAM work either way.
    pub fn private_get(&mut self, key: &str) -> Result<Option<Vec<u8>>, ZltpError> {
        let span = TraceSpan::root("zltp.client.request");
        let mut nonce = [0u8; AEAD_NONCE_LEN];
        lightweb_crypto::fill_random(&mut nonce);
        let sealed = self
            .aead
            .seal(&nonce, b"zltp-enclave-query", key.as_bytes());
        let mut payload = Vec::with_capacity(AEAD_NONCE_LEN + sealed.len());
        payload.extend_from_slice(&nonce);
        payload.extend_from_slice(&sealed);

        let raw = self.session.get_raw_traced(payload, Some(&span.ctx()))?;
        if raw.len() < AEAD_NONCE_LEN {
            return Err(ZltpError::Wire("sealed response too short".into()));
        }
        let rn: [u8; AEAD_NONCE_LEN] = raw[..AEAD_NONCE_LEN].try_into().unwrap();
        let plain = self
            .aead
            .open(&rn, b"zltp-enclave-response", &raw[AEAD_NONCE_LEN..])
            .map_err(|_| ZltpError::Wire("sealed response failed to open".into()))?;
        if plain.len() != 1 + self.session.blob_len() {
            return Err(ZltpError::Wire("sealed response has wrong size".into()));
        }
        Ok(if plain[0] == 1 {
            Some(plain[1..].to_vec())
        } else {
            None
        })
    }

    /// Traffic counters.
    pub fn stats(&self) -> SessionStats {
        self.session.stats()
    }

    /// Orderly close.
    pub fn close(self) -> Result<(), ZltpError> {
        self.session.close()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;
    use crate::server::{InProcServer, ZltpServer};

    fn pair(blob_len: usize) -> (InProcServer, InProcServer) {
        let mut c0 = ServerConfig::small("u", 0);
        c0.blob_len = blob_len;
        let mut c1 = ServerConfig::small("u", 1);
        c1.blob_len = blob_len;
        (
            InProcServer::new(ZltpServer::new(c0).unwrap()),
            InProcServer::new(ZltpServer::new(c1).unwrap()),
        )
    }

    fn publish_both(s0: &InProcServer, s1: &InProcServer, key: &str, blob: &[u8]) {
        s0.server().publish(key, blob).unwrap();
        s1.server().publish(key, blob).unwrap();
    }

    #[test]
    fn two_server_end_to_end() {
        let (s0, s1) = pair(64);
        publish_both(&s0, &s1, "nytimes.com/africa", &[7u8; 64]);
        publish_both(&s0, &s1, "cnn.com/world", &[9u8; 64]);

        let mut client = TwoServerZltp::connect(s0.connect(), s1.connect()).unwrap();
        assert_eq!(client.universe_id(), "u");
        assert_eq!(
            client.private_get("nytimes.com/africa").unwrap(),
            vec![7u8; 64]
        );
        assert_eq!(client.private_get("cnn.com/world").unwrap(), vec![9u8; 64]);
        // Unpublished key: all-zero blob.
        assert_eq!(client.private_get("unknown").unwrap(), vec![0u8; 64]);
        let stats = client.stats();
        assert_eq!(stats.requests, 3);
        assert!(stats.bytes_sent > 0 && stats.bytes_received > 0);
        client.close().unwrap();
    }

    #[test]
    fn two_server_rejects_same_party_pair() {
        let (s0, _s1) = pair(64);
        let Err(err) = TwoServerZltp::connect(s0.connect(), s0.connect()) else {
            panic!("same-party pair accepted")
        };
        assert!(matches!(err, ZltpError::ServerPairMismatch(_)), "{err}");
    }

    #[test]
    fn two_server_rejects_mismatched_universes() {
        let mut c0 = ServerConfig::small("alpha", 0);
        c0.blob_len = 64;
        let mut c1 = ServerConfig::small("beta", 1);
        c1.blob_len = 64;
        let s0 = InProcServer::new(ZltpServer::new(c0).unwrap());
        let s1 = InProcServer::new(ZltpServer::new(c1).unwrap());
        let Err(err) = TwoServerZltp::connect(s0.connect(), s1.connect()) else {
            panic!("mismatched universes accepted")
        };
        assert!(matches!(err, ZltpError::ServerPairMismatch(_)));
    }

    #[test]
    fn enclave_mode_end_to_end() {
        let mut cfg = ServerConfig::small("u", 0);
        cfg.blob_len = 32;
        cfg.modes = ModeSet::new([Mode::Enclave]);
        let s = InProcServer::new(ZltpServer::new(cfg).unwrap());
        s.server().publish("weather.com/94110", &[3u8; 32]).unwrap();

        let mut client = EnclaveClient::connect(s.connect()).unwrap();
        assert_eq!(
            client.private_get("weather.com/94110").unwrap(),
            Some(vec![3u8; 32])
        );
        assert_eq!(client.private_get("weather.com/00000").unwrap(), None);
        client.close().unwrap();
    }

    #[test]
    fn lwe_mode_end_to_end() {
        let mut cfg = ServerConfig::small("u", 0);
        cfg.blob_len = 32;
        cfg.modes = ModeSet::new([Mode::SingleServerLwe]);
        let s = InProcServer::new(ZltpServer::new(cfg).unwrap());
        s.server().publish("a.com/1", &[1u8; 32]).unwrap();
        s.server().publish("a.com/2", &[2u8; 32]).unwrap();
        s.server().publish("a.com/3", &[3u8; 32]).unwrap();

        let mut client = LweClientSession::connect(s.connect()).unwrap();
        assert!(client.offline_bytes() > 0);
        assert_eq!(client.private_get("a.com/2").unwrap(), Some(vec![2u8; 32]));
        assert_eq!(client.private_get("a.com/3").unwrap(), Some(vec![3u8; 32]));
        assert_eq!(client.private_get("a.com/404").unwrap(), None);
        client.close().unwrap();
    }

    #[test]
    fn mode_negotiation_follows_server_preference() {
        let mut cfg = ServerConfig::small("u", 0);
        cfg.blob_len = 32;
        cfg.modes = ModeSet::new([Mode::Enclave, Mode::TwoServerPir]);
        let s = InProcServer::new(ZltpServer::new(cfg).unwrap());
        let session = ZltpSession::connect(
            s.connect(),
            &ModeSet::new([Mode::TwoServerPir, Mode::Enclave]),
        )
        .unwrap();
        assert_eq!(session.mode(), Mode::Enclave);
    }

    #[test]
    fn no_common_mode_is_an_error() {
        let mut cfg = ServerConfig::small("u", 0);
        cfg.modes = ModeSet::new([Mode::Enclave]);
        let s = InProcServer::new(ZltpServer::new(cfg).unwrap());
        let Err(err) = ZltpSession::connect(s.connect(), &ModeSet::new([Mode::TwoServerPir]))
        else {
            panic!("incompatible mode accepted")
        };
        assert!(
            matches!(err, ZltpError::ServerError { .. } | ZltpError::NoCommonMode),
            "{err}"
        );
    }

    #[test]
    fn responses_have_fixed_size_regardless_of_key() {
        // The traffic-analysis defense: every PIR response is blob_len
        // bytes whether the key exists, is short, or is absent.
        let (s0, s1) = pair(128);
        publish_both(&s0, &s1, "site.com/a", &[1u8; 128]);
        let mut client = TwoServerZltp::connect(s0.connect(), s1.connect()).unwrap();
        let r1 = client.private_get("site.com/a").unwrap();
        let r2 = client
            .private_get("absent/key/with/a/much/longer/path")
            .unwrap();
        assert_eq!(r1.len(), 128);
        assert_eq!(r2.len(), 128);
    }

    #[test]
    fn dummy_slot_queries_work() {
        let (s0, s1) = pair(64);
        publish_both(&s0, &s1, "x", &[5u8; 64]);
        let mut client = TwoServerZltp::connect(s0.connect(), s1.connect()).unwrap();
        // Cover traffic: random slots must be servable.
        for slot in [0u64, 1, 12345] {
            let blob = client.private_get_slot(slot).unwrap();
            assert_eq!(blob.len(), 64);
        }
    }

    #[test]
    fn tcp_transport_end_to_end() {
        let mut c0 = ServerConfig::small("tcp-universe", 0);
        c0.blob_len = 64;
        let mut c1 = ServerConfig::small("tcp-universe", 1);
        c1.blob_len = 64;
        let server0 = ZltpServer::new(c0).unwrap();
        let server1 = ZltpServer::new(c1).unwrap();
        server0.publish("k", &[8u8; 64]).unwrap();
        server1.publish("k", &[8u8; 64]).unwrap();

        let l0 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let a0 = l0.local_addr().unwrap();
        let a1 = l1.local_addr().unwrap();
        let _h0 = server0.serve_tcp(l0).unwrap();
        let _h1 = server1.serve_tcp(l1).unwrap();

        let mut client = TwoServerZltp::connect(
            std::net::TcpStream::connect(a0).unwrap(),
            std::net::TcpStream::connect(a1).unwrap(),
        )
        .unwrap();
        assert_eq!(client.private_get("k").unwrap(), vec![8u8; 64]);
        client.close().unwrap();
        server0.shutdown();
        server1.shutdown();
    }

    #[test]
    fn content_update_is_visible_to_new_queries() {
        let (s0, s1) = pair(64);
        publish_both(&s0, &s1, "news/today", &[1u8; 64]);
        let mut client = TwoServerZltp::connect(s0.connect(), s1.connect()).unwrap();
        assert_eq!(client.private_get("news/today").unwrap(), vec![1u8; 64]);
        publish_both(&s0, &s1, "news/today", &[2u8; 64]);
        assert_eq!(client.private_get("news/today").unwrap(), vec![2u8; 64]);
    }
}
