#![warn(missing_docs)]

//! # lightweb-core — the zero-leakage transfer protocol (ZLTP)
//!
//! ZLTP (paper §2) is a client-server application-layer protocol exposing a
//! single operation, **private-GET**: `GET(key) -> value`, where the key is
//! an arbitrary string and the value a fixed-length blob — with the
//! property that *no one*, not the network and not the server, learns which
//! key-value pair the client fetched.
//!
//! ## Session anatomy (§2)
//!
//! 1. The client connects and sends a `ClientHello` listing the modes of
//!    operation it supports.
//! 2. The server answers with a `ServerHello` carrying the universe id, the
//!    fixed blob size it serves, the keyword-hash parameters, and the
//!    chosen mode.
//! 3. The client issues `Get` requests; each carries a mode-specific
//!    payload (a DPF key, an LWE query vector, or a sealed keyword). The
//!    server answers with fixed-size `GetResponse` frames.
//!
//! ## Modes of operation (§2.2)
//!
//! * [`Mode::TwoServerPir`] — the paper's prototype mode: the client holds
//!   sessions with **two** non-colluding ZLTP servers and sends each a DPF
//!   key share; each server does a full-domain DPF evaluation plus a linear
//!   scan (`lightweb-pir`). Security: non-collusion + PRG.
//! * [`Mode::SingleServerLwe`] — single-server PIR from the learning-with-
//!   errors assumption (SimplePIR-style). Security: cryptographic only.
//!   Higher communication/computation, as the paper notes.
//! * [`Mode::Enclave`] — the key travels sealed to a hardware enclave that
//!   looks it up through Path ORAM (`lightweb-oram`). Security: hardware.
//!   Polylogarithmic cost. (This reproduction simulates the enclave and its
//!   attested channel; see `lightweb-oram` and DESIGN.md.)
//!
//! ## Non-goals, faithfully reproduced (§2.1)
//!
//! ZLTP does **not** hide the number or timing of requests, does not
//! provide integrity against a malicious server, and does not guarantee
//! availability. The lightweb layer above restores traffic-shape privacy
//! by fixing the number of fetches per page view.
//!
//! ## What's here
//!
//! * [`wire`] — length-prefixed binary framing and every protocol message.
//! * [`transport`] — a blocking byte-stream abstraction with in-memory and
//!   TCP (`std::net`) implementations, plus framing on top.
//! * [`server`] — the ZLTP server engine: per-connection threads, the
//!   request **batcher** of §5.1 (one scan pass answers a whole batch), and
//!   admin (publisher push) entry points.
//! * [`client`] — session handles and the mode-aware clients, including the
//!   two-server orchestration and combination.
//! * [`deployment`] — the §5.2 scale-out: a front-end that splits DPF
//!   evaluation across data-server shards and XOR-combines their answers.
//! * [`shardnet`] — the same split across real TCP: standalone shard
//!   servers and the front-end fan-out driving them with `TCP_NODELAY`
//!   links.

pub mod client;
pub mod config;
pub mod deployment;
pub mod error;
pub mod server;
pub mod shardnet;
pub mod transport;
pub mod wire;

pub use client::{EnclaveClient, LweClientSession, SessionStats, TwoServerZltp, ZltpSession};
pub use config::{BatchConfig, IoModel, Mode, ModeSet, ServerConfig};
pub use deployment::{ShardedDeployment, ShardedQueryStats};
pub use error::ZltpError;
pub use server::{Completion, HelloOutcome, InProcServer, SessionTicket, Submitted, ZltpServer};
pub use shardnet::{ShardFanout, ShardNetServer};
pub use transport::{
    encode_frame, mem_pair, tune_zltp_socket, FrameDecoder, FramedConn, MemDuplex,
};
pub use wire::{Frame, Message, PROTOCOL_VERSION};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Decoding arbitrary bytes as a frame must never panic — it either
        /// yields a message or a wire error. This is the parser's fuzz
        /// safety net for hostile peers.
        #[test]
        fn frame_decoder_is_total(
            msg_type in any::<u8>(),
            payload in prop::collection::vec(any::<u8>(), 0..512),
        ) {
            let frame = wire::Frame { msg_type, payload };
            let _ = wire::Message::from_frame(&frame);
        }

        /// Every encodable message round-trips through its frame.
        #[test]
        fn message_roundtrip(
            request_id in any::<u32>(),
            payload in prop::collection::vec(any::<u8>(), 0..256),
            universe_id in "[a-z0-9./-]{0,40}",
            code in any::<u16>(),
        ) {
            for msg in [
                wire::Message::Get { request_id, payload: payload.clone() },
                wire::Message::GetResponse { request_id, payload: payload.clone() },
                wire::Message::ServerHello {
                    version: 1,
                    universe_id: universe_id.clone(),
                    mode: 1,
                    blob_len: request_id,
                    domain_bits: 22,
                    term_bits: 7,
                    keyword_hash_key: [7; 16],
                    extra: payload.clone(),
                },
                wire::Message::Error { code, message: universe_id.clone() },
            ] {
                let back = wire::Message::from_frame(&msg.to_frame()).unwrap();
                prop_assert_eq!(back, msg);
            }
        }

        /// A framed connection fed arbitrary leading bytes must error (or
        /// deliver a valid message), never panic or read out of bounds.
        #[test]
        fn framed_recv_survives_garbage(bytes in prop::collection::vec(any::<u8>(), 5..64)) {
            use std::io::Write;
            let (mut a, b) = transport::mem_pair();
            a.write_all(&bytes).unwrap();
            drop(a);
            let mut conn = transport::FramedConn::new(b);
            // Drain until EOF/error; must terminate.
            for _ in 0..16 {
                if conn.recv().is_err() {
                    break;
                }
            }
        }
    }
}
