//! The ZLTP server engine.
//!
//! One [`ZltpServer`] is one logical ZLTP endpoint: it owns the master
//! key-value store for its universe, materializes a backend per supported
//! mode of operation, negotiates sessions, and answers private-GETs.
//!
//! Publishers push content through the (non-private) admin API
//! ([`ZltpServer::publish`]); §3.1's rule that a keyword collision is
//! resolved by the publisher "simply selecting another key name" shows up
//! here as a `KeywordCollision` publish failure.
//!
//! ## Batching (§5.1)
//!
//! In two-server PIR mode the dominant cost is the linear scan. The server
//! therefore funnels all DPF queries through a batcher thread that
//! collects up to `max_batch` requests (or as many as arrive within a short
//! window) and answers them with **one** scan pass. The paper's numbers —
//! batch of 16: 167 ms amortized per request, 2.6 s latency, 6 req/s vs
//! unbatched 0.51 s and 2 req/s — come from exactly this trade.

use crate::config::{Mode, ModeSet, ServerConfig};
use crate::error::ZltpError;
use crate::transport::{mem_pair, FramedConn, MemDuplex};
use crate::wire::{Message, PROTOCOL_VERSION};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use lightweb_crypto::aead::{ChaCha20Poly1305, AEAD_NONCE_LEN};
use lightweb_crypto::SipHash24;
use lightweb_dpf::DpfKey;
use lightweb_oram::SimulatedEnclave;
use lightweb_pir::lwe::{LweParams, LweServer};
use lightweb_pir::{KeywordMap, PirServer};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Error codes carried in wire-level `Error` messages.
pub mod error_code {
    /// Protocol version not supported.
    pub const VERSION: u16 = 1;
    /// No common mode.
    pub const NO_MODE: u16 = 2;
    /// Malformed query payload.
    pub const BAD_QUERY: u16 = 3;
    /// Internal engine failure.
    pub const ENGINE: u16 = 4;
    /// Message not valid in this state.
    pub const STATE: u16 = 5;
}

/// A batched DPF query awaiting the next scan pass.
struct BatchJob {
    key: DpfKey,
    reply: Sender<Result<Vec<u8>, String>>,
    /// When the job entered the batcher queue, for queue-wait accounting.
    enqueued_at: Instant,
}

/// Counters exposed by [`ZltpServer::stats`].
///
/// All fields are maintained with `Ordering::Relaxed` atomics: each
/// counter is individually accurate, but a snapshot taken while the
/// server is under load is not a consistent cut across fields (e.g.
/// `batched_requests` may momentarily exceed what `batches` implies).
/// Read them after quiescing, or treat cross-field arithmetic as
/// approximate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Private-GETs answered (all modes).
    pub requests: u64,
    /// Scan passes performed by the batcher.
    pub batches: u64,
    /// Requests answered by batched scans (to derive mean batch size).
    pub batched_requests: u64,
    /// Sessions accepted.
    pub sessions: u64,
    /// Total nanoseconds requests spent waiting in the batcher queue
    /// (sum over all batched requests; divide by `batched_requests`
    /// for the mean queue wait).
    pub batch_wait_ns: u64,
    /// Largest batch the batcher has ever dispatched in one scan pass.
    pub max_batch_occupancy: u64,
}

#[derive(Default)]
struct AtomicStats {
    requests: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    sessions: AtomicU64,
    batch_wait_ns: AtomicU64,
    max_batch_occupancy: AtomicU64,
}

/// Per-mode request-latency histogram name (`zltp.server.request.<mode>.ns`).
fn mode_request_metric(mode: Mode) -> &'static str {
    match mode {
        Mode::TwoServerPir => "zltp.server.request.two_server_pir.ns",
        Mode::SingleServerLwe => "zltp.server.request.single_server_lwe.ns",
        Mode::Enclave => "zltp.server.request.enclave.ns",
    }
}

/// Count a session-level failure and surface it through the telemetry
/// event sink (a no-op unless a sink is installed). Replaces the former
/// panic/ignore paths in the connection threads.
fn log_session_error(stage: &str, err: &str) {
    lightweb_telemetry::counter!("zltp.session.errors").inc();
    lightweb_telemetry::events::emit(
        "zltp.session.error",
        &[
            ("stage", lightweb_telemetry::events::Field::Str(stage)),
            ("error", lightweb_telemetry::events::Field::Str(err)),
        ],
    );
}

/// Materialized single-server LWE state: the engine plus the manifest that
/// maps sorted key hashes to record indices.
struct LweBackend {
    server: LweServer,
    key_hashes: Vec<u64>,
}

struct ServerInner {
    config: ServerConfig,
    keyword_map: KeywordMap,
    /// Master content store: key -> blob (exactly `blob_len` bytes).
    master: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
    /// slot -> key, for publish-time collision detection.
    slot_owner: RwLock<std::collections::HashMap<u64, Vec<u8>>>,
    /// Two-server PIR backend, kept in sync incrementally.
    pir: RwLock<PirServer>,
    /// Sharded PIR backend (when `shard_prefix_bits > 0`), rebuilt lazily
    /// from the monolithic store after changes.
    sharded: Mutex<Option<crate::deployment::ShardedDeployment>>,
    sharded_dirty: AtomicBool,
    /// LWE backend, rebuilt lazily after changes.
    lwe: Mutex<Option<LweBackend>>,
    lwe_dirty: AtomicBool,
    /// Enclave backend, kept in sync incrementally.
    enclave: Mutex<SimulatedEnclave>,
    /// Simulated attested-channel key for enclave sessions.
    enclave_session_key: [u8; 32],
    /// Queue into the batcher (present iff batching is enabled).
    batch_tx: Mutex<Option<Sender<BatchJob>>>,
    stats: AtomicStats,
    shutdown: AtomicBool,
}

/// A ZLTP server. Cheap to clone (shared state behind an `Arc`).
#[derive(Clone)]
pub struct ZltpServer {
    inner: Arc<ServerInner>,
}

impl ZltpServer {
    /// Create a server from its configuration. Spawns the batcher thread if
    /// batching is enabled.
    pub fn new(config: ServerConfig) -> Result<Self, ZltpError> {
        let params = config.dpf_params();
        let pir = PirServer::new(params, config.blob_len);
        // Enclave capacity: a quarter of the slot domain, matching the
        // paper's ~25% load factor, but at least 1024 so tiny test configs
        // still hold content.
        let enclave_cap = (params.domain_size() / 4).clamp(1024, 1 << 20);
        let enclave = SimulatedEnclave::new(enclave_cap, config.blob_len)
            .map_err(|e| ZltpError::Engine(e.to_string()))?;
        let inner = Arc::new(ServerInner {
            keyword_map: KeywordMap::new(&config.keyword_hash_key, config.domain_bits),
            master: RwLock::new(BTreeMap::new()),
            slot_owner: RwLock::new(std::collections::HashMap::new()),
            pir: RwLock::new(pir),
            sharded: Mutex::new(None),
            sharded_dirty: AtomicBool::new(true),
            lwe: Mutex::new(None),
            lwe_dirty: AtomicBool::new(true),
            enclave: Mutex::new(enclave),
            enclave_session_key: lightweb_crypto::random_key(),
            batch_tx: Mutex::new(None),
            stats: AtomicStats::default(),
            shutdown: AtomicBool::new(false),
            config,
        });
        let server = Self { inner };
        // Batching and front-end sharding are mutually exclusive engines
        // for the scan; a real deployment batches *within* each shard,
        // which the sharded path models by one scan pass per request.
        if server.inner.config.batch.max_batch > 1
            && server.inner.config.shard_prefix_bits == 0
            && server.inner.config.modes.contains(Mode::TwoServerPir)
        {
            server.spawn_batcher();
        }
        Ok(server)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.config
    }

    /// Snapshot of the server counters. See the [`ServerStats`] note on
    /// relaxed-ordering consistency.
    pub fn stats(&self) -> ServerStats {
        let s = &self.inner.stats;
        ServerStats {
            requests: s.requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            batched_requests: s.batched_requests.load(Ordering::Relaxed),
            sessions: s.sessions.load(Ordering::Relaxed),
            batch_wait_ns: s.batch_wait_ns.load(Ordering::Relaxed),
            max_batch_occupancy: s.max_batch_occupancy.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the process-wide telemetry registry (counters, gauges,
    /// and latency histograms for every instrumented subsystem). The
    /// registry is global, so in multi-server processes (tests, the
    /// sharded simulation) the snapshot aggregates across servers; use
    /// [`lightweb_telemetry::Snapshot::counter_delta`] against an earlier
    /// snapshot to isolate a window.
    pub fn telemetry(&self) -> lightweb_telemetry::Snapshot {
        lightweb_telemetry::registry().snapshot()
    }

    /// Ask connection handlers and the batcher to wind down.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        *self.inner.batch_tx.lock() = None;
    }

    // ------------------------------------------------------------------
    // Publisher (admin) API — not private, mirrors the paper's publisher
    // push path (§3.1).
    // ------------------------------------------------------------------

    /// Publish (insert or update) a blob under `key`. The blob must be
    /// exactly `blob_len` bytes — padding to the universe's fixed size is
    /// the `lightweb-universe` layer's job.
    pub fn publish(&self, key: &str, blob: &[u8]) -> Result<(), ZltpError> {
        let cfg = &self.inner.config;
        if blob.len() != cfg.blob_len {
            return Err(ZltpError::Engine(format!(
                "blob is {} bytes; this universe serves fixed {}-byte blobs",
                blob.len(),
                cfg.blob_len
            )));
        }
        let slot = self.inner.keyword_map.slot(key.as_bytes());
        {
            let mut owners = self.inner.slot_owner.write();
            match owners.get(&slot) {
                Some(owner) if owner.as_slice() != key.as_bytes() => {
                    return Err(ZltpError::Engine(format!(
                        "keyword collision: '{}' hashes to the slot of '{}'; select another key name",
                        key,
                        String::from_utf8_lossy(owner)
                    )));
                }
                _ => {
                    owners.insert(slot, key.as_bytes().to_vec());
                }
            }
        }
        self.inner
            .master
            .write()
            .insert(key.as_bytes().to_vec(), blob.to_vec());
        self.inner
            .pir
            .write()
            .upsert(slot, blob)
            .map_err(|e| ZltpError::Engine(e.to_string()))?;
        self.inner
            .enclave
            .lock()
            .put(key.as_bytes(), blob)
            .map_err(|e| ZltpError::Engine(e.to_string()))?;
        self.inner.lwe_dirty.store(true, Ordering::SeqCst);
        self.inner.sharded_dirty.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Remove a blob. Returns whether it existed.
    pub fn unpublish(&self, key: &str) -> Result<bool, ZltpError> {
        let existed = self.inner.master.write().remove(key.as_bytes()).is_some();
        if existed {
            let slot = self.inner.keyword_map.slot(key.as_bytes());
            self.inner.slot_owner.write().remove(&slot);
            self.inner.pir.write().remove(slot);
            // The enclave store has no delete; overwrite with zeros. The
            // master map is authoritative for presence.
            let zeros = vec![0u8; self.inner.config.blob_len];
            self.inner
                .enclave
                .lock()
                .put(key.as_bytes(), &zeros)
                .map_err(|e| ZltpError::Engine(e.to_string()))?;
            self.inner.lwe_dirty.store(true, Ordering::SeqCst);
            self.inner.sharded_dirty.store(true, Ordering::SeqCst);
        }
        Ok(existed)
    }

    /// Whether `key` is published.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.master.read().contains_key(key.as_bytes())
    }

    /// Number of published blobs.
    pub fn num_blobs(&self) -> usize {
        self.inner.master.read().len()
    }

    /// Total content bytes stored (N × blob_len), the quantity per-request
    /// scan cost scales with.
    pub fn stored_bytes(&self) -> usize {
        self.num_blobs() * self.inner.config.blob_len
    }

    // ------------------------------------------------------------------
    // Batcher
    // ------------------------------------------------------------------

    fn spawn_batcher(&self) {
        let (tx, rx): (Sender<BatchJob>, Receiver<BatchJob>) = unbounded();
        *self.inner.batch_tx.lock() = Some(tx);
        let inner = Arc::downgrade(&self.inner);
        let spawned = std::thread::Builder::new()
            .name("zltp-batcher".into())
            .spawn(move || {
                while let Ok(first) = rx.recv() {
                    let Some(core) = inner.upgrade() else { break };
                    // Depth of the queue behind the job we just picked up:
                    // how far the batcher is lagging arrivals.
                    lightweb_telemetry::registry()
                        .gauge("zltp.server.batch.queue.depth")
                        .set(rx.len() as i64);
                    let mut jobs = vec![first];
                    let deadline = Instant::now() + core.config.batch.window;
                    while jobs.len() < core.config.batch.max_batch {
                        match rx.recv_deadline(deadline) {
                            Ok(job) => jobs.push(job),
                            Err(_) => break,
                        }
                    }
                    let picked_up = Instant::now();
                    let wait_hist =
                        lightweb_telemetry::registry().histogram("zltp.server.batch.wait.ns");
                    let mut wait_ns = 0u64;
                    for job in &jobs {
                        let w = picked_up.duration_since(job.enqueued_at).as_nanos() as u64;
                        wait_ns += w;
                        wait_hist.record(w);
                    }
                    lightweb_telemetry::registry()
                        .histogram("zltp.server.batch.size")
                        .record(jobs.len() as u64);
                    lightweb_telemetry::counter!("zltp.server.batches").inc();
                    let keys: Vec<DpfKey> = jobs.iter().map(|j| j.key.clone()).collect();
                    let result = core.pir.read().answer_batch(&keys);
                    core.stats.batches.fetch_add(1, Ordering::Relaxed);
                    core.stats
                        .batched_requests
                        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
                    core.stats
                        .batch_wait_ns
                        .fetch_add(wait_ns, Ordering::Relaxed);
                    core.stats
                        .max_batch_occupancy
                        .fetch_max(jobs.len() as u64, Ordering::Relaxed);
                    match result {
                        Ok(answers) => {
                            for (job, ans) in jobs.into_iter().zip(answers) {
                                let _ = job.reply.send(Ok(ans));
                            }
                        }
                        Err(e) => {
                            for job in jobs {
                                let _ = job.reply.send(Err(e.to_string()));
                            }
                        }
                    }
                }
            });
        if let Err(e) = spawned {
            // No batcher thread: fall back to unbatched scans rather than
            // killing the server at construction time.
            log_session_error("spawn-batcher", &e.to_string());
            *self.inner.batch_tx.lock() = None;
        }
    }

    // ------------------------------------------------------------------
    // LWE backend materialization
    // ------------------------------------------------------------------

    fn ensure_lwe<R>(&self, f: impl FnOnce(&LweBackend) -> R) -> Result<R, ZltpError> {
        let mut guard = self.inner.lwe.lock();
        if self.inner.lwe_dirty.swap(false, Ordering::SeqCst) || guard.is_none() {
            let master = self.inner.master.read();
            let sip = SipHash24::new(&self.inner.config.keyword_hash_key);
            let mut hashed: Vec<(u64, &Vec<u8>)> =
                master.iter().map(|(k, v)| (sip.hash(k), v)).collect();
            hashed.sort_by_key(|(h, _)| *h);
            let key_hashes: Vec<u64> = hashed.iter().map(|(h, _)| *h).collect();
            let records: Vec<Vec<u8>> = hashed.iter().map(|(_, v)| (*v).clone()).collect();
            let server = LweServer::new(
                LweParams {
                    n: self.inner.config.lwe_n,
                },
                self.inner.config.blob_len,
                records,
            )
            .map_err(|e| ZltpError::Engine(e.to_string()))?;
            *guard = Some(LweBackend { server, key_hashes });
        }
        Ok(f(guard.as_ref().expect("just materialized")))
    }

    /// Rebuild the sharded deployment from the master store if stale, then
    /// answer through it.
    fn answer_sharded(&self, key: &DpfKey) -> Result<Vec<u8>, ZltpError> {
        let mut guard = self.inner.sharded.lock();
        if self.inner.sharded_dirty.swap(false, Ordering::SeqCst) || guard.is_none() {
            let entries: Vec<(u64, Vec<u8>)> = {
                let pir = self.inner.pir.read();
                pir.iter().map(|(slot, rec)| (slot, rec.to_vec())).collect()
            };
            let dep = crate::deployment::ShardedDeployment::from_entries(
                self.inner.config.dpf_params(),
                self.inner.config.shard_prefix_bits,
                self.inner.config.blob_len,
                entries,
            )?;
            *guard = Some(dep);
        }
        let dep = guard.as_ref().expect("just materialized");
        dep.answer_parallel(key)
    }

    // ------------------------------------------------------------------
    // Session handling
    // ------------------------------------------------------------------

    /// Run one ZLTP session over any byte stream, blocking until the peer
    /// closes or errors. Protocol errors are reported to the peer where
    /// possible and returned.
    pub fn handle_connection<S: Read + Write>(&self, stream: S) -> Result<(), ZltpError> {
        let mut conn = FramedConn::new(stream);
        self.inner.stats.sessions.fetch_add(1, Ordering::Relaxed);
        lightweb_telemetry::counter!("zltp.server.sessions").inc();
        let _session = lightweb_telemetry::span!("zltp.server.session.ns");

        // --- Hello exchange ---
        let hello = conn.recv()?;
        let (version, client_modes) = match hello {
            Message::ClientHello { version, modes } => (version, modes),
            other => {
                let _ = conn.send(&Message::Error {
                    code: error_code::STATE,
                    message: format!("expected ClientHello, got {}", other.name()),
                });
                return Err(ZltpError::UnexpectedMessage {
                    expected: "ClientHello",
                    got: "other",
                });
            }
        };
        if version != PROTOCOL_VERSION {
            let _ = conn.send(&Message::Error {
                code: error_code::VERSION,
                message: format!("unsupported version {version}"),
            });
            return Err(ZltpError::VersionMismatch {
                ours: PROTOCOL_VERSION,
                theirs: version,
            });
        }
        let client_set = ModeSet::new(client_modes.iter().filter_map(|m| Mode::from_wire(*m)));
        let Some(mode) = ModeSet::negotiate(&self.inner.config.modes, &client_set) else {
            let _ = conn.send(&Message::Error {
                code: error_code::NO_MODE,
                message: "no common mode of operation".into(),
            });
            return Err(ZltpError::NoCommonMode);
        };

        let extra = match mode {
            Mode::TwoServerPir => vec![self.inner.config.party],
            Mode::SingleServerLwe => self.ensure_lwe(|b| {
                let mut e = Vec::with_capacity(32 + 4 + 8);
                e.extend_from_slice(&b.server.public_seed());
                e.extend_from_slice(&(self.inner.config.lwe_n as u32).to_be_bytes());
                e.extend_from_slice(&(b.server.cols() as u64).to_be_bytes());
                e
            })?,
            Mode::Enclave => self.inner.enclave_session_key.to_vec(),
        };
        conn.send(&Message::ServerHello {
            version: PROTOCOL_VERSION,
            universe_id: self.inner.config.universe_id.clone(),
            mode: mode.to_wire(),
            blob_len: self.inner.config.blob_len as u32,
            domain_bits: self.inner.config.domain_bits as u8,
            term_bits: self.inner.config.term_bits as u8,
            keyword_hash_key: self.inner.config.keyword_hash_key,
            extra,
        })?;

        // --- Request loop ---
        loop {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                let _ = conn.send(&Message::Close);
                return Ok(());
            }
            let msg = match conn.recv() {
                Ok(m) => m,
                // Peer hang-up after a completed exchange is a normal end.
                Err(ZltpError::Io(_)) => return Ok(()),
                Err(e) => return Err(e),
            };
            match msg {
                Message::Get {
                    request_id,
                    payload,
                } => {
                    let start = Instant::now();
                    let answer = self.answer_get(mode, &payload);
                    let elapsed_ns = start.elapsed().as_nanos() as u64;
                    lightweb_telemetry::registry()
                        .histogram("zltp.server.request.ns")
                        .record(elapsed_ns);
                    lightweb_telemetry::registry()
                        .histogram(mode_request_metric(mode))
                        .record(elapsed_ns);
                    match answer {
                        Ok(response) => {
                            self.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                            lightweb_telemetry::counter!("zltp.server.requests").inc();
                            conn.send(&Message::GetResponse {
                                request_id,
                                payload: response,
                            })?;
                        }
                        Err(e) => {
                            log_session_error("answer-get", &e.to_string());
                            conn.send(&Message::Error {
                                code: error_code::BAD_QUERY,
                                message: e.to_string(),
                            })?;
                        }
                    }
                }
                Message::LweSetupRequest => {
                    if mode != Mode::SingleServerLwe {
                        conn.send(&Message::Error {
                            code: error_code::STATE,
                            message: "LweSetupRequest outside LWE mode".into(),
                        })?;
                        continue;
                    }
                    let (key_hashes, hint) =
                        self.ensure_lwe(|b| (b.key_hashes.clone(), b.server.hint().to_vec()))?;
                    conn.send(&Message::LweSetupResponse { key_hashes, hint })?;
                }
                Message::Close => {
                    let _ = conn.send(&Message::Close);
                    return Ok(());
                }
                other => {
                    conn.send(&Message::Error {
                        code: error_code::STATE,
                        message: format!("unexpected {}", other.name()),
                    })?;
                }
            }
        }
    }

    /// Dispatch one GET payload to the mode's engine.
    fn answer_get(&self, mode: Mode, payload: &[u8]) -> Result<Vec<u8>, ZltpError> {
        match mode {
            Mode::TwoServerPir => {
                let key =
                    DpfKey::from_bytes(payload).map_err(|e| ZltpError::BadQuery(e.to_string()))?;
                if key.params() != self.inner.config.dpf_params() {
                    return Err(ZltpError::BadQuery("DPF parameters mismatch".into()));
                }
                // Sharded deployments answer through the §5.2 front-end.
                if self.inner.config.shard_prefix_bits > 0 {
                    return self.answer_sharded(&key);
                }
                // Route through the batcher when present.
                let tx_opt = self.inner.batch_tx.lock().clone();
                if let Some(tx) = tx_opt {
                    let (reply_tx, reply_rx) = bounded(1);
                    tx.send(BatchJob {
                        key,
                        reply: reply_tx,
                        enqueued_at: Instant::now(),
                    })
                    .map_err(|_| ZltpError::Closed)?;
                    reply_rx
                        .recv()
                        .map_err(|_| ZltpError::Closed)?
                        .map_err(ZltpError::Engine)
                } else {
                    self.inner
                        .pir
                        .read()
                        .answer(&key)
                        .map_err(|e| ZltpError::Engine(e.to_string()))
                }
            }
            Mode::SingleServerLwe => {
                if !payload.len().is_multiple_of(4) {
                    return Err(ZltpError::BadQuery("LWE query not a u32 vector".into()));
                }
                let query: Vec<u32> = payload
                    .chunks_exact(4)
                    .map(|c| u32::from_be_bytes(c.try_into().unwrap()))
                    .collect();
                let ans = self
                    .ensure_lwe(|b| b.server.answer(&query))?
                    .map_err(|e| ZltpError::BadQuery(e.to_string()))?;
                let mut out = Vec::with_capacity(ans.len() * 4);
                for v in ans {
                    out.extend_from_slice(&v.to_be_bytes());
                }
                Ok(out)
            }
            Mode::Enclave => {
                // Payload: nonce || AEAD(session_key, nonce, "", key bytes).
                if payload.len() < AEAD_NONCE_LEN {
                    return Err(ZltpError::BadQuery("sealed query too short".into()));
                }
                let aead = ChaCha20Poly1305::new(&self.inner.enclave_session_key);
                let nonce: [u8; AEAD_NONCE_LEN] = payload[..AEAD_NONCE_LEN].try_into().unwrap();
                let key = aead
                    .open(&nonce, b"zltp-enclave-query", &payload[AEAD_NONCE_LEN..])
                    .map_err(|_| ZltpError::BadQuery("sealed query failed to open".into()))?;
                // Presence must come from the master map: the enclave keeps
                // zero-blobs for unpublished keys.
                let present = self.inner.master.read().contains_key(&key);
                let value = self
                    .inner
                    .enclave
                    .lock()
                    .get(&key)
                    .map_err(|e| ZltpError::Engine(e.to_string()))?;
                let mut plain = Vec::with_capacity(1 + self.inner.config.blob_len);
                plain.push(present as u8);
                match value {
                    Some(v) if present => plain.extend_from_slice(&v),
                    _ => plain.extend_from_slice(&vec![0u8; self.inner.config.blob_len]),
                }
                let mut resp_nonce = [0u8; AEAD_NONCE_LEN];
                lightweb_crypto::fill_random(&mut resp_nonce);
                let sealed = aead.seal(&resp_nonce, b"zltp-enclave-response", &plain);
                let mut out = Vec::with_capacity(AEAD_NONCE_LEN + sealed.len());
                out.extend_from_slice(&resp_nonce);
                out.extend_from_slice(&sealed);
                Ok(out)
            }
        }
    }

    /// Serve TCP connections until `shutdown` is called. Returns the accept
    /// thread's handle.
    pub fn serve_tcp(&self, listener: std::net::TcpListener) -> std::thread::JoinHandle<()> {
        let server = self.clone();
        if let Err(e) = listener.set_nonblocking(true) {
            // Degraded mode: blocking accepts still serve connections, but
            // shutdown is only observed after the next accept returns.
            log_session_error("set-nonblocking", &e.to_string());
        }
        std::thread::Builder::new()
            .name("zltp-accept".into())
            .spawn(move || loop {
                if server.inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let s = server.clone();
                        let spawned =
                            std::thread::Builder::new()
                                .name("zltp-conn".into())
                                .spawn(move || {
                                    if let Err(e) = s.handle_connection(stream) {
                                        log_session_error("tcp-session", &e.to_string());
                                    }
                                });
                        if let Err(e) = spawned {
                            // Out of threads: drop the stream (the peer sees
                            // a reset) instead of taking down the acceptor.
                            log_session_error("spawn-connection", &e.to_string());
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(e) => {
                        log_session_error("accept", &e.to_string());
                        return;
                    }
                }
            })
            .expect("spawn accept thread")
    }
}

/// An in-process ZLTP endpoint: every [`InProcServer::connect`] call yields
/// the client half of a fresh in-memory connection whose server half is
/// driven by a dedicated thread. Used by tests, examples, and the benchmark
/// harness, where one OS process simulates a whole deployment.
pub struct InProcServer {
    server: ZltpServer,
}

impl InProcServer {
    /// Wrap a server for in-process serving.
    pub fn new(server: ZltpServer) -> Self {
        Self { server }
    }

    /// The underlying server (for admin/publish calls).
    pub fn server(&self) -> &ZltpServer {
        &self.server
    }

    /// Open a new in-memory connection; the server side runs on its own
    /// thread until the session ends.
    pub fn connect(&self) -> MemDuplex {
        let (client_end, server_end) = mem_pair();
        let server = self.server.clone();
        let spawned = std::thread::Builder::new()
            .name("zltp-inproc-conn".into())
            .spawn(move || {
                if let Err(e) = server.handle_connection(server_end) {
                    log_session_error("inproc-session", &e.to_string());
                }
            });
        if let Err(e) = spawned {
            // The server end was dropped with the failed spawn, so the
            // caller's reads report EOF — same shape as a refused socket.
            log_session_error("spawn-inproc-connection", &e.to_string());
        }
        client_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_server() -> ZltpServer {
        let mut cfg = ServerConfig::small("test-universe", 0);
        cfg.blob_len = 64;
        ZltpServer::new(cfg).unwrap()
    }

    #[test]
    fn publish_and_introspect() {
        let server = small_server();
        assert_eq!(server.num_blobs(), 0);
        server.publish("a.com/x", &[1u8; 64]).unwrap();
        server.publish("a.com/y", &[2u8; 64]).unwrap();
        assert!(server.contains("a.com/x"));
        assert!(!server.contains("a.com/z"));
        assert_eq!(server.num_blobs(), 2);
        assert_eq!(server.stored_bytes(), 128);
        assert!(server.unpublish("a.com/x").unwrap());
        assert!(!server.unpublish("a.com/x").unwrap());
        assert_eq!(server.num_blobs(), 1);
    }

    #[test]
    fn wrong_blob_size_rejected() {
        let server = small_server();
        assert!(server.publish("a.com/x", &[0u8; 63]).is_err());
        assert!(server.publish("a.com/x", &[0u8; 65]).is_err());
    }

    #[test]
    fn republish_same_key_is_update_not_collision() {
        let server = small_server();
        server.publish("a.com/x", &[1u8; 64]).unwrap();
        server.publish("a.com/x", &[2u8; 64]).unwrap();
        assert_eq!(server.num_blobs(), 1);
    }

    #[test]
    fn keyword_collision_reported() {
        // 1-slot universes collide immediately.
        let mut cfg = ServerConfig::small("tiny", 0);
        cfg.domain_bits = 1;
        cfg.term_bits = 0;
        cfg.blob_len = 8;
        let server = ZltpServer::new(cfg).unwrap();
        // With a 2-slot domain, 3 distinct keys must produce a collision.
        let mut collided = false;
        for k in ["a", "b", "c"] {
            if server.publish(k, &[0u8; 8]).is_err() {
                collided = true;
            }
        }
        assert!(collided, "three keys fit in a two-slot domain?");
    }

    #[test]
    fn stats_start_at_zero() {
        let server = small_server();
        assert_eq!(server.stats(), ServerStats::default());
    }
}
