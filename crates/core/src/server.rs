//! The ZLTP server engine.
//!
//! One [`ZltpServer`] is one logical ZLTP endpoint: it owns the master
//! key-value store for its universe, materializes a
//! [`QueryEngine`](lightweb_engine::QueryEngine) per supported mode of
//! operation, negotiates sessions, and answers private-GETs. All per-mode
//! logic — payload decoding, scan/lookup, session metadata — lives in the
//! engines (`lightweb-engine`); the server is mode-agnostic dispatch,
//! session state machines, and the publisher API.
//!
//! Publishers push content through the (non-private) admin API
//! ([`ZltpServer::publish`]); §3.1's rule that a keyword collision is
//! resolved by the publisher "simply selecting another key name" shows up
//! here as a `KeywordCollision` publish failure.
//!
//! ## Batching (§5.1)
//!
//! In two-server PIR mode the dominant cost is the linear scan. The server
//! therefore funnels all DPF queries through a batcher thread that
//! collects up to `max_batch` requests (or as many as arrive within a short
//! window) and answers them with **one** scan pass. The paper's numbers —
//! batch of 16: 167 ms amortized per request, 2.6 s latency, 6 req/s vs
//! unbatched 0.51 s and 2 req/s — come from exactly this trade.

use crate::config::{Mode, ModeSet, ServerConfig};
use crate::error::ZltpError;
use crate::transport::{mem_pair, tune_zltp_socket, FramedConn, MemDuplex};
use crate::wire::{Message, PROTOCOL_VERSION};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use lightweb_engine::{
    EnclaveOramEngine, PreparedQuery, QueryEngine, ScanPool, SingleServerLweEngine,
    TwoServerDpfEngine,
};
use lightweb_pir::KeywordMap;
use lightweb_telemetry::trace::{maybe_child, record_span, record_span_ctx, TraceContext};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Error codes carried in wire-level `Error` messages.
pub mod error_code {
    /// Protocol version not supported.
    pub const VERSION: u16 = 1;
    /// No common mode.
    pub const NO_MODE: u16 = 2;
    /// Malformed query payload.
    pub const BAD_QUERY: u16 = 3;
    /// Internal engine failure.
    pub const ENGINE: u16 = 4;
    /// Message not valid in this state.
    pub const STATE: u16 = 5;
}

/// Callback invoked exactly once with a request's finished answer.
///
/// This is how answers travel from wherever they are computed (the
/// batcher thread, an engine worker, or inline) back to whichever
/// transport front-end owns the connection — a blocking session thread
/// parks on a channel, the reactor pushes into its wakeup pipe. The
/// `Err` string is what goes into the wire-level `Error` message.
pub type Completion = Box<dyn FnOnce(Result<Vec<u8>, String>) + Send + 'static>;

/// What [`ZltpServer::submit_get`] did with a request.
pub enum Submitted {
    /// The answer is being produced elsewhere (batcher queue) or the
    /// completion has already fired (prepare error, shutdown). Nothing
    /// more for the caller to do.
    Dispatched,
    /// Unbatched modes: the caller must run this closure on a thread of
    /// its choosing — it performs the (potentially heavy) engine answer
    /// and then fires the completion. Blocking sessions run it in place;
    /// the reactor ships it to a worker so the event loop never scans.
    Work(Box<dyn FnOnce() + Send + 'static>),
}

/// A prepared query awaiting the next batched scan pass.
struct BatchJob {
    query: PreparedQuery,
    complete: Completion,
    /// When the job entered the batcher queue, for queue-wait accounting.
    enqueued_at: Instant,
    /// The request's trace context, if the session is being traced; the
    /// batcher records the queue wait as a `zltp.server.batch.wait` child
    /// span and hands the context to the engine for per-phase spans.
    ctx: Option<TraceContext>,
}

/// Counters exposed by [`ZltpServer::stats`].
///
/// All fields are maintained with `Ordering::Relaxed` atomics: each
/// counter is individually accurate, but a snapshot taken while the
/// server is under load is not a consistent cut across fields (e.g.
/// `batched_requests` may momentarily exceed what `batches` implies).
/// Read them after quiescing, or treat cross-field arithmetic as
/// approximate.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Private-GETs answered (all modes).
    pub requests: u64,
    /// Scan passes performed by the batcher.
    pub batches: u64,
    /// Requests answered by batched scans (to derive mean batch size).
    pub batched_requests: u64,
    /// Sessions accepted.
    pub sessions: u64,
    /// Total nanoseconds requests spent waiting in the batcher queue
    /// (sum over all batched requests; divide by `batched_requests`
    /// for the mean queue wait).
    pub batch_wait_ns: u64,
    /// Largest batch the batcher has ever dispatched in one scan pass.
    pub max_batch_occupancy: u64,
}

#[derive(Default)]
struct AtomicStats {
    requests: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    sessions: AtomicU64,
    batch_wait_ns: AtomicU64,
    max_batch_occupancy: AtomicU64,
}

/// Count a session-level failure and surface it through the telemetry
/// event sink (a no-op unless a sink is installed). Replaces the former
/// panic/ignore paths in the connection threads.
fn log_session_error(stage: &str, err: &str) {
    lightweb_telemetry::counter!("zltp.session.errors").inc();
    lightweb_telemetry::events::emit(
        "zltp.session.error",
        &[
            ("stage", lightweb_telemetry::events::Field::Str(stage)),
            ("error", lightweb_telemetry::events::Field::Str(err)),
        ],
    );
}

/// RAII decrement for the saturation gauges below: the increment must be
/// undone on every exit path (peer hang-up, protocol error, `?`), so drop
/// order does the bookkeeping.
struct GaugeDec(lightweb_telemetry::Gauge);

impl Drop for GaugeDec {
    fn drop(&mut self) {
        self.0.add(-1);
    }
}

/// Sessions currently open on this process — the `open_connections`
/// number `/healthz` reports and the load harness watches for
/// saturation. Cached: the gauge is touched once per connection and once
/// per request.
fn open_connections_gauge() -> &'static lightweb_telemetry::Gauge {
    static G: std::sync::OnceLock<lightweb_telemetry::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        lightweb_telemetry::registry()
            .gauge(lightweb_telemetry::scrape::HEALTHZ_OPEN_CONNECTIONS_GAUGE)
    })
}

/// Requests currently being answered (between decode and response) — the
/// `inflight_requests` number `/healthz` reports.
fn inflight_requests_gauge() -> &'static lightweb_telemetry::Gauge {
    static G: std::sync::OnceLock<lightweb_telemetry::Gauge> = std::sync::OnceLock::new();
    G.get_or_init(|| {
        lightweb_telemetry::registry().gauge(lightweb_telemetry::scrape::HEALTHZ_INFLIGHT_GAUGE)
    })
}

struct ServerInner {
    config: ServerConfig,
    keyword_map: KeywordMap,
    /// Master content store: key -> blob (exactly `blob_len` bytes). The
    /// engines hold mode-specific views of this; the master copy backs
    /// introspection, collision detection, and engine reseeds.
    master: RwLock<BTreeMap<Vec<u8>, Vec<u8>>>,
    /// slot -> key, for publish-time collision detection.
    slot_owner: RwLock<std::collections::HashMap<u64, Vec<u8>>>,
    /// One query engine per supported mode, in preference order.
    engines: Vec<(Mode, Box<dyn QueryEngine>)>,
    /// Queue into the batcher (present iff batching is enabled).
    batch_tx: Mutex<Option<Sender<BatchJob>>>,
    stats: AtomicStats,
    shutdown: AtomicBool,
}

impl ServerInner {
    fn engine_for(&self, mode: Mode) -> Option<&dyn QueryEngine> {
        self.engines
            .iter()
            .find(|(m, _)| *m == mode)
            .map(|(_, e)| e.as_ref())
    }
}

/// A ZLTP server. Cheap to clone (shared state behind an `Arc`).
#[derive(Clone)]
pub struct ZltpServer {
    inner: Arc<ServerInner>,
}

impl ZltpServer {
    /// Create a server from its configuration: one engine per configured
    /// mode, sharing one scan pool. Spawns the batcher thread if batching
    /// is enabled.
    pub fn new(config: ServerConfig) -> Result<Self, ZltpError> {
        let params = config.dpf_params();
        let pool = ScanPool::new(config.scan_threads);
        let mut engines: Vec<(Mode, Box<dyn QueryEngine>)> = Vec::new();
        for &mode in config.modes.modes() {
            let engine: Box<dyn QueryEngine> = match mode {
                Mode::TwoServerPir => Box::new(TwoServerDpfEngine::new(
                    params,
                    config.blob_len,
                    config.party,
                    config.shard_prefix_bits,
                    KeywordMap::new(&config.keyword_hash_key, config.domain_bits),
                    pool,
                )?),
                Mode::SingleServerLwe => Box::new(SingleServerLweEngine::new(
                    config.blob_len,
                    config.lwe_n,
                    config.keyword_hash_key,
                )),
                Mode::Enclave => {
                    // Enclave capacity: a quarter of the slot domain,
                    // matching the paper's ~25% load factor, but at least
                    // 1024 so tiny test configs still hold content.
                    let cap = (params.domain_size() / 4).clamp(1024, 1 << 20);
                    Box::new(EnclaveOramEngine::new(cap, config.blob_len)?)
                }
            };
            // Surface the served mode on the scrape endpoint's /healthz.
            lightweb_telemetry::scrape::register_serving_mode(engine.name());
            engines.push((mode, engine));
        }
        let inner = Arc::new(ServerInner {
            keyword_map: KeywordMap::new(&config.keyword_hash_key, config.domain_bits),
            master: RwLock::new(BTreeMap::new()),
            slot_owner: RwLock::new(std::collections::HashMap::new()),
            engines,
            batch_tx: Mutex::new(None),
            stats: AtomicStats::default(),
            shutdown: AtomicBool::new(false),
            config,
        });
        let server = Self { inner };
        // The batcher amortizes the scan across DPF queries (§5.1). With
        // front-end sharding it still runs: each batched query goes
        // through its own front-end split (a real deployment batches
        // *within* each shard), so batching buys queue amortization and
        // the same wire semantics either way.
        if server.inner.config.batch.max_batch > 1
            && server.inner.config.modes.contains(Mode::TwoServerPir)
        {
            server.spawn_batcher();
        }
        Ok(server)
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.config
    }

    /// Snapshot of the server counters. See the [`ServerStats`] note on
    /// relaxed-ordering consistency.
    pub fn stats(&self) -> ServerStats {
        let s = &self.inner.stats;
        ServerStats {
            requests: s.requests.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            batched_requests: s.batched_requests.load(Ordering::Relaxed),
            sessions: s.sessions.load(Ordering::Relaxed),
            batch_wait_ns: s.batch_wait_ns.load(Ordering::Relaxed),
            max_batch_occupancy: s.max_batch_occupancy.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the process-wide telemetry registry (counters, gauges,
    /// and latency histograms for every instrumented subsystem). The
    /// registry is global, so in multi-server processes (tests, the
    /// sharded simulation) the snapshot aggregates across servers; use
    /// [`lightweb_telemetry::Snapshot::counter_delta`] against an earlier
    /// snapshot to isolate a window.
    pub fn telemetry(&self) -> lightweb_telemetry::Snapshot {
        lightweb_telemetry::registry().snapshot()
    }

    /// Ask connection handlers and the batcher to wind down.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        *self.inner.batch_tx.lock() = None;
    }

    // ------------------------------------------------------------------
    // Publisher (admin) API — not private, mirrors the paper's publisher
    // push path (§3.1).
    // ------------------------------------------------------------------

    /// Publish (insert or update) a blob under `key`. The blob must be
    /// exactly `blob_len` bytes — padding to the universe's fixed size is
    /// the `lightweb-universe` layer's job. Every mode's engine is updated
    /// in lock-step with the master store.
    pub fn publish(&self, key: &str, blob: &[u8]) -> Result<(), ZltpError> {
        let cfg = &self.inner.config;
        if blob.len() != cfg.blob_len {
            return Err(ZltpError::Engine(format!(
                "blob is {} bytes; this universe serves fixed {}-byte blobs",
                blob.len(),
                cfg.blob_len
            )));
        }
        let slot = self.inner.keyword_map.slot(key.as_bytes());
        {
            let mut owners = self.inner.slot_owner.write();
            match owners.get(&slot) {
                Some(owner) if owner.as_slice() != key.as_bytes() => {
                    return Err(ZltpError::Engine(format!(
                        "keyword collision: '{}' hashes to the slot of '{}'; select another key name",
                        key,
                        String::from_utf8_lossy(owner)
                    )));
                }
                _ => {
                    owners.insert(slot, key.as_bytes().to_vec());
                }
            }
        }
        self.inner
            .master
            .write()
            .insert(key.as_bytes().to_vec(), blob.to_vec());
        for (_, engine) in &self.inner.engines {
            engine.publish(key.as_bytes(), blob)?;
        }
        Ok(())
    }

    /// Remove a blob. Returns whether it existed.
    pub fn unpublish(&self, key: &str) -> Result<bool, ZltpError> {
        let existed = self.inner.master.write().remove(key.as_bytes()).is_some();
        if existed {
            let slot = self.inner.keyword_map.slot(key.as_bytes());
            self.inner.slot_owner.write().remove(&slot);
            for (_, engine) in &self.inner.engines {
                engine.unpublish(key.as_bytes())?;
            }
        }
        Ok(existed)
    }

    /// Whether `key` is published.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.master.read().contains_key(key.as_bytes())
    }

    /// Number of published blobs.
    pub fn num_blobs(&self) -> usize {
        self.inner.master.read().len()
    }

    /// Total content bytes stored (N × blob_len), the quantity per-request
    /// scan cost scales with.
    pub fn stored_bytes(&self) -> usize {
        self.num_blobs() * self.inner.config.blob_len
    }

    // ------------------------------------------------------------------
    // Batcher
    // ------------------------------------------------------------------

    fn spawn_batcher(&self) {
        let (tx, rx): (Sender<BatchJob>, Receiver<BatchJob>) = unbounded();
        *self.inner.batch_tx.lock() = Some(tx);
        let inner = Arc::downgrade(&self.inner);
        let spawned = std::thread::Builder::new()
            .name("zltp-batcher".into())
            .spawn(move || {
                while let Ok(first) = rx.recv() {
                    let Some(core) = inner.upgrade() else { break };
                    // Depth of the queue behind the job we just picked up:
                    // how far the batcher is lagging arrivals.
                    lightweb_telemetry::registry()
                        .gauge("zltp.server.batch.queue.depth")
                        .set(rx.len() as i64);
                    let mut jobs = vec![first];
                    let deadline = Instant::now() + core.config.batch.window;
                    while jobs.len() < core.config.batch.max_batch {
                        match rx.recv_deadline(deadline) {
                            Ok(job) => jobs.push(job),
                            Err(_) => break,
                        }
                    }
                    let picked_up = Instant::now();
                    let wait_hist =
                        lightweb_telemetry::registry().histogram("zltp.server.batch.wait.ns");
                    let mut wait_ns = 0u64;
                    for job in &jobs {
                        let w = picked_up.duration_since(job.enqueued_at).as_nanos() as u64;
                        wait_ns += w;
                        wait_hist.record(w);
                        if let Some(ctx) = &job.ctx {
                            record_span(ctx, "zltp.server.batch.wait", job.enqueued_at, picked_up);
                        }
                    }
                    lightweb_telemetry::registry()
                        .histogram("zltp.server.batch.size")
                        .record(jobs.len() as u64);
                    lightweb_telemetry::counter!("zltp.server.batches").inc();
                    let queries: Vec<PreparedQuery> =
                        jobs.iter().map(|j| j.query.clone()).collect();
                    let ctxs: Vec<Option<TraceContext>> = jobs.iter().map(|j| j.ctx).collect();
                    let result = {
                        // The batcher thread's CPU burn (the shared scan)
                        // otherwise escapes phase attribution: the wait
                        // spans above are externally timed and open no
                        // profile scope.
                        let _prof =
                            lightweb_telemetry::profile::Scope::enter("zltp.server.batch.answer");
                        core.engine_for(Mode::TwoServerPir)
                            .ok_or_else(|| {
                                lightweb_engine::EngineError::Backend(
                                    "batcher running without a two-server engine".into(),
                                )
                            })
                            .and_then(|engine| engine.answer_batch(&queries, &ctxs))
                    };
                    core.stats.batches.fetch_add(1, Ordering::Relaxed);
                    core.stats
                        .batched_requests
                        .fetch_add(jobs.len() as u64, Ordering::Relaxed);
                    core.stats
                        .batch_wait_ns
                        .fetch_add(wait_ns, Ordering::Relaxed);
                    core.stats
                        .max_batch_occupancy
                        .fetch_max(jobs.len() as u64, Ordering::Relaxed);
                    match result {
                        Ok(answers) => {
                            for (job, ans) in jobs.into_iter().zip(answers) {
                                (job.complete)(Ok(ans));
                            }
                        }
                        Err(e) => {
                            for job in jobs {
                                (job.complete)(Err(e.to_string()));
                            }
                        }
                    }
                }
            });
        if let Err(e) = spawned {
            // No batcher thread: fall back to unbatched scans rather than
            // killing the server at construction time.
            log_session_error("spawn-batcher", &e.to_string());
            *self.inner.batch_tx.lock() = None;
        }
    }

    // ------------------------------------------------------------------
    // Session handling
    // ------------------------------------------------------------------

    /// Whether [`ZltpServer::shutdown`] has been requested. Transport
    /// front-ends (the blocking accept loop, the reactor) poll this to
    /// wind down.
    pub fn is_shutting_down(&self) -> bool {
        self.inner.shutdown.load(Ordering::SeqCst)
    }

    /// Account one accepted session: bumps the session counters and holds
    /// the open-connections gauge up for the ticket's lifetime. Every
    /// transport front-end opens one ticket per connection so `/healthz`
    /// sees the same numbers regardless of io model.
    pub fn begin_session(&self) -> SessionTicket {
        self.inner.stats.sessions.fetch_add(1, Ordering::Relaxed);
        lightweb_telemetry::counter!("zltp.server.sessions").inc();
        open_connections_gauge().add(1);
        SessionTicket {
            _open: GaugeDec(open_connections_gauge().clone()),
        }
    }

    /// Validate a client's opening message and negotiate the session mode.
    ///
    /// Pure protocol logic shared by the blocking session loop and the
    /// reactor's per-connection state machine; the caller owns all I/O
    /// (send the returned message, then either proceed or close).
    pub fn negotiate_hello(&self, hello: &Message) -> HelloOutcome {
        let (version, client_modes) = match hello {
            Message::ClientHello { version, modes } => (*version, modes.as_slice()),
            other => {
                return HelloOutcome::Rejected {
                    error: Message::Error {
                        code: error_code::STATE,
                        message: format!("expected ClientHello, got {}", other.name()),
                    },
                    reason: ZltpError::UnexpectedMessage {
                        expected: "ClientHello",
                        got: "other",
                    },
                }
            }
        };
        if version != PROTOCOL_VERSION {
            return HelloOutcome::Rejected {
                error: Message::Error {
                    code: error_code::VERSION,
                    message: format!("unsupported version {version}"),
                },
                reason: ZltpError::VersionMismatch {
                    ours: PROTOCOL_VERSION,
                    theirs: version,
                },
            };
        }
        let client_set = ModeSet::new(client_modes.iter().filter_map(|m| Mode::from_wire(*m)));
        let Some(mode) = ModeSet::negotiate(&self.inner.config.modes, &client_set) else {
            return HelloOutcome::Rejected {
                error: Message::Error {
                    code: error_code::NO_MODE,
                    message: "no common mode of operation".into(),
                },
                reason: ZltpError::NoCommonMode,
            };
        };
        let engine = match self.inner.engine_for(mode) {
            Some(e) => e,
            None => {
                return HelloOutcome::Rejected {
                    error: Message::Error {
                        code: error_code::ENGINE,
                        message: format!("mode {mode:?} not materialized"),
                    },
                    reason: ZltpError::Engine(format!("mode {mode:?} not materialized")),
                }
            }
        };
        match engine.session_extra() {
            Ok(extra) => HelloOutcome::Accepted {
                mode,
                server_hello: Message::ServerHello {
                    version: PROTOCOL_VERSION,
                    universe_id: self.inner.config.universe_id.clone(),
                    mode: mode.to_wire(),
                    blob_len: self.inner.config.blob_len as u32,
                    domain_bits: self.inner.config.domain_bits as u8,
                    term_bits: self.inner.config.term_bits as u8,
                    keyword_hash_key: self.inner.config.keyword_hash_key,
                    extra,
                },
            },
            Err(e) => HelloOutcome::Rejected {
                error: Message::Error {
                    code: error_code::ENGINE,
                    message: e.to_string(),
                },
                reason: e.into(),
            },
        }
    }

    /// Build the reply to an `LweSetupRequest` in session mode `mode`:
    /// the setup material, or a wire `Error` for requests outside LWE
    /// mode. `Err` means the engine itself failed and the session should
    /// die. Heavy (clones the LWE hint) — keep it off the reactor thread.
    pub fn setup_message(&self, mode: Mode) -> Result<Message, ZltpError> {
        if mode != Mode::SingleServerLwe {
            return Ok(Message::Error {
                code: error_code::STATE,
                message: "LweSetupRequest outside LWE mode".into(),
            });
        }
        let engine = self
            .inner
            .engine_for(mode)
            .ok_or_else(|| ZltpError::Engine(format!("mode {mode:?} not materialized")))?;
        let setup = engine
            .setup()
            .map_err(ZltpError::from)?
            .ok_or_else(|| ZltpError::Engine("engine has no setup material".into()))?;
        Ok(Message::LweSetupResponse {
            key_hashes: setup.key_hashes,
            hint: setup.hint,
        })
    }

    /// Submit one GET payload for answering, with `complete` fired exactly
    /// once when the answer (or error) is ready.
    ///
    /// All request accounting lives here — the in-flight gauge, request
    /// counters/histograms, the `zltp.server.request` trace span (minted
    /// as a child of the wire context and recorded when the completion
    /// fires, *before* the response frame leaves, so the client's root
    /// span is always the last of its trace) — which keeps the blocking
    /// and reactor paths from drifting apart.
    ///
    /// DPF queries route through the batcher when it is running, so one
    /// scan pass answers a whole batch (§5.1); those return
    /// [`Submitted::Dispatched`]. Unbatched modes return
    /// [`Submitted::Work`] for the caller to run wherever it likes.
    pub fn submit_get(
        &self,
        mode: Mode,
        payload: &[u8],
        wire_ctx: Option<&TraceContext>,
        complete: Completion,
    ) -> Submitted {
        let span_ctx = wire_ctx.map(TraceContext::child);
        let start = Instant::now();
        inflight_requests_gauge().add(1);
        let engine_metric = match self.inner.engine_for(mode) {
            Some(engine) => engine.request_metric(),
            None => "zltp.server.request.unknown_mode.ns",
        };
        let server = self.clone();
        let finish: Completion = Box::new(move |result: Result<Vec<u8>, String>| {
            let end = Instant::now();
            let elapsed_ns = end.duration_since(start).as_nanos() as u64;
            inflight_requests_gauge().add(-1);
            lightweb_telemetry::registry()
                .histogram("zltp.server.request.ns")
                .record(elapsed_ns);
            lightweb_telemetry::registry()
                .histogram(engine_metric)
                .record(elapsed_ns);
            match &result {
                Ok(_) => {
                    server.inner.stats.requests.fetch_add(1, Ordering::Relaxed);
                    lightweb_telemetry::counter!("zltp.server.requests").inc();
                }
                Err(e) => log_session_error("answer-get", e),
            }
            if let Some(ctx) = &span_ctx {
                record_span_ctx(ctx, "zltp.server.request", start, end);
            }
            complete(result);
        });
        let Some(engine) = self.inner.engine_for(mode) else {
            finish(Err(format!("mode {mode:?} not materialized")));
            return Submitted::Dispatched;
        };
        let query = {
            let _prepare = maybe_child(span_ctx.as_ref(), "zltp.server.prepare");
            match engine.prepare(payload) {
                Ok(q) => q,
                Err(e) => {
                    finish(Err(e.to_string()));
                    return Submitted::Dispatched;
                }
            }
        };
        if mode == Mode::TwoServerPir {
            let tx_opt = self.inner.batch_tx.lock().clone();
            if let Some(tx) = tx_opt {
                let job = BatchJob {
                    query,
                    complete: finish,
                    enqueued_at: Instant::now(),
                    ctx: span_ctx,
                };
                if let Err(err) = tx.send(job) {
                    (err.0.complete)(Err("server is shutting down".into()));
                }
                return Submitted::Dispatched;
            }
        }
        let server = self.clone();
        Submitted::Work(Box::new(move || {
            let result = match server.inner.engine_for(mode) {
                Some(engine) => engine
                    .answer(&query, span_ctx.as_ref())
                    .map_err(|e| e.to_string()),
                None => Err(format!("mode {mode:?} not materialized")),
            };
            finish(result);
        }))
    }

    /// Run one ZLTP session over any byte stream, blocking until the peer
    /// closes or errors. Protocol errors are reported to the peer where
    /// possible and returned.
    pub fn handle_connection<S: Read + Write>(&self, stream: S) -> Result<(), ZltpError> {
        let mut conn = FramedConn::new(stream);
        let _ticket = self.begin_session();
        let _session = lightweb_telemetry::span!("zltp.server.session.ns");

        // --- Hello exchange ---
        let hello = conn.recv()?;
        let mode = match self.negotiate_hello(&hello) {
            HelloOutcome::Accepted { mode, server_hello } => {
                conn.send(&server_hello)?;
                mode
            }
            HelloOutcome::Rejected { error, reason } => {
                let _ = conn.send(&error);
                return Err(reason);
            }
        };

        // --- Request loop ---
        loop {
            if self.inner.shutdown.load(Ordering::SeqCst) {
                let _ = conn.send(&Message::Close);
                return Ok(());
            }
            let (msg, wire_ctx) = match conn.recv_traced() {
                Ok(m) => m,
                // Peer hang-up after a completed exchange is a normal end.
                Err(ZltpError::Io(_)) => return Ok(()),
                Err(e) => return Err(e),
            };
            match msg {
                Message::Get {
                    request_id,
                    payload,
                } => {
                    let (reply_tx, reply_rx) = bounded(1);
                    let complete: Completion = Box::new(move |res| {
                        let _ = reply_tx.send(res);
                    });
                    match self.submit_get(mode, &payload, wire_ctx.as_ref(), complete) {
                        // A blocking session has a whole thread to burn:
                        // run unbatched work right here.
                        Submitted::Work(work) => work(),
                        Submitted::Dispatched => {}
                    }
                    match reply_rx.recv() {
                        Ok(Ok(response)) => conn.send(&Message::GetResponse {
                            request_id,
                            payload: response,
                        })?,
                        Ok(Err(e)) => conn.send(&Message::Error {
                            code: error_code::BAD_QUERY,
                            message: e,
                        })?,
                        Err(_) => return Err(ZltpError::Closed),
                    }
                }
                Message::LweSetupRequest => {
                    conn.send(&self.setup_message(mode)?)?;
                }
                Message::Close => {
                    let _ = conn.send(&Message::Close);
                    return Ok(());
                }
                other => {
                    conn.send(&Message::Error {
                        code: error_code::STATE,
                        message: format!("unexpected {}", other.name()),
                    })?;
                }
            }
        }
    }

    /// Serve TCP connections with one blocking thread per session until
    /// `shutdown` is called. Returns the accept thread's handle.
    ///
    /// Errors if the listener cannot be made nonblocking or the accept
    /// thread cannot spawn. The nonblocking accept loop is what lets the
    /// thread observe `shutdown` between connections; the old behavior of
    /// limping along with a blocking listener left shutdown unobserved
    /// until the *next* accept returned — a hang in every process whose
    /// last client already left — so that degraded mode is now a hard
    /// error at bind time, when the operator is still looking.
    pub fn serve_tcp(
        &self,
        listener: std::net::TcpListener,
    ) -> std::io::Result<std::thread::JoinHandle<()>> {
        let server = self.clone();
        listener.set_nonblocking(true)?;
        std::thread::Builder::new()
            .name("zltp-accept".into())
            .spawn(move || loop {
                if server.inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        tune_zltp_socket(&stream, "server-accept");
                        let s = server.clone();
                        let spawned =
                            std::thread::Builder::new()
                                .name("zltp-conn".into())
                                .spawn(move || {
                                    if let Err(e) = s.handle_connection(stream) {
                                        log_session_error("tcp-session", &e.to_string());
                                    }
                                });
                        if let Err(e) = spawned {
                            // Out of threads: drop the stream (the peer sees
                            // a reset) instead of taking down the acceptor.
                            log_session_error("spawn-connection", &e.to_string());
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(e) => {
                        log_session_error("accept", &e.to_string());
                        return;
                    }
                }
            })
    }
}

/// RAII accounting for one open session; see [`ZltpServer::begin_session`].
pub struct SessionTicket {
    _open: GaugeDec,
}

/// Result of [`ZltpServer::negotiate_hello`].
pub enum HelloOutcome {
    /// Negotiation succeeded: send `server_hello`, then serve requests
    /// in `mode`.
    Accepted {
        /// The negotiated mode of operation.
        mode: Mode,
        /// The `ServerHello` to send back.
        server_hello: Message,
    },
    /// Negotiation failed: best-effort send `error`, then close. `reason`
    /// is the session-level error for the caller's logging.
    Rejected {
        /// The wire-level `Error` to report to the peer.
        error: Message,
        /// Why the session is being refused.
        reason: ZltpError,
    },
}

/// An in-process ZLTP endpoint: every [`InProcServer::connect`] call yields
/// the client half of a fresh in-memory connection whose server half is
/// driven by a dedicated thread. Used by tests, examples, and the benchmark
/// harness, where one OS process simulates a whole deployment.
pub struct InProcServer {
    server: ZltpServer,
}

impl InProcServer {
    /// Wrap a server for in-process serving.
    pub fn new(server: ZltpServer) -> Self {
        Self { server }
    }

    /// The underlying server (for admin/publish calls).
    pub fn server(&self) -> &ZltpServer {
        &self.server
    }

    /// Open a new in-memory connection; the server side runs on its own
    /// thread until the session ends.
    pub fn connect(&self) -> MemDuplex {
        let (client_end, server_end) = mem_pair();
        let server = self.server.clone();
        let spawned = std::thread::Builder::new()
            .name("zltp-inproc-conn".into())
            .spawn(move || {
                if let Err(e) = server.handle_connection(server_end) {
                    log_session_error("inproc-session", &e.to_string());
                }
            });
        if let Err(e) = spawned {
            // The server end was dropped with the failed spawn, so the
            // caller's reads report EOF — same shape as a refused socket.
            log_session_error("spawn-inproc-connection", &e.to_string());
        }
        client_end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_server() -> ZltpServer {
        let mut cfg = ServerConfig::small("test-universe", 0);
        cfg.blob_len = 64;
        ZltpServer::new(cfg).unwrap()
    }

    #[test]
    fn publish_and_introspect() {
        let server = small_server();
        assert_eq!(server.num_blobs(), 0);
        server.publish("a.com/x", &[1u8; 64]).unwrap();
        server.publish("a.com/y", &[2u8; 64]).unwrap();
        assert!(server.contains("a.com/x"));
        assert!(!server.contains("a.com/z"));
        assert_eq!(server.num_blobs(), 2);
        assert_eq!(server.stored_bytes(), 128);
        assert!(server.unpublish("a.com/x").unwrap());
        assert!(!server.unpublish("a.com/x").unwrap());
        assert_eq!(server.num_blobs(), 1);
    }

    #[test]
    fn wrong_blob_size_rejected() {
        let server = small_server();
        assert!(server.publish("a.com/x", &[0u8; 63]).is_err());
        assert!(server.publish("a.com/x", &[0u8; 65]).is_err());
    }

    #[test]
    fn republish_same_key_is_update_not_collision() {
        let server = small_server();
        server.publish("a.com/x", &[1u8; 64]).unwrap();
        server.publish("a.com/x", &[2u8; 64]).unwrap();
        assert_eq!(server.num_blobs(), 1);
    }

    #[test]
    fn keyword_collision_reported() {
        // 1-slot universes collide immediately.
        let mut cfg = ServerConfig::small("tiny", 0);
        cfg.domain_bits = 1;
        cfg.term_bits = 0;
        cfg.blob_len = 8;
        let server = ZltpServer::new(cfg).unwrap();
        // With a 2-slot domain, 3 distinct keys must produce a collision.
        let mut collided = false;
        for k in ["a", "b", "c"] {
            if server.publish(k, &[0u8; 8]).is_err() {
                collided = true;
            }
        }
        assert!(collided, "three keys fit in a two-slot domain?");
    }

    #[test]
    fn stats_start_at_zero() {
        let server = small_server();
        assert_eq!(server.stats(), ServerStats::default());
    }

    #[test]
    fn one_engine_per_configured_mode() {
        let mut cfg = ServerConfig::small("modes", 0);
        cfg.blob_len = 32;
        cfg.modes = ModeSet::new([Mode::Enclave, Mode::SingleServerLwe]);
        let server = ZltpServer::new(cfg).unwrap();
        assert!(server.inner.engine_for(Mode::Enclave).is_some());
        assert!(server.inner.engine_for(Mode::SingleServerLwe).is_some());
        assert!(server.inner.engine_for(Mode::TwoServerPir).is_none());
    }
}
