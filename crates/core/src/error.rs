//! Error types for the ZLTP protocol engine.

use crate::config::Mode;

/// Every way a ZLTP interaction can fail.
#[derive(Debug)]
pub enum ZltpError {
    /// Underlying transport I/O failure.
    Io(std::io::Error),
    /// A frame violated the wire format.
    Wire(String),
    /// The peer spoke an incompatible protocol version.
    VersionMismatch {
        /// Our protocol version.
        ours: u16,
        /// The peer's claimed version.
        theirs: u16,
    },
    /// No mode acceptable to both sides.
    NoCommonMode,
    /// A message arrived that is invalid in the current session state.
    UnexpectedMessage {
        /// What the state machine was waiting for.
        expected: &'static str,
        /// What arrived instead.
        got: &'static str,
    },
    /// The server rejected a request.
    ServerError {
        /// Wire-level error code.
        code: u16,
        /// Human-readable detail from the server.
        message: String,
    },
    /// A query payload was malformed for the negotiated mode.
    BadQuery(String),
    /// Mode-specific engine failure (PIR/ORAM/LWE).
    Engine(String),
    /// The two servers of a pair disagree on session parameters.
    ServerPairMismatch(String),
    /// Operation attempted on the wrong mode.
    WrongMode {
        /// The session's negotiated mode.
        have: Mode,
        /// The mode the operation requires.
        need: Mode,
    },
    /// The session or server has shut down.
    Closed,
}

impl std::fmt::Display for ZltpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZltpError::Io(e) => write!(f, "transport I/O error: {e}"),
            ZltpError::Wire(m) => write!(f, "wire-format violation: {m}"),
            ZltpError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours {ours}, theirs {theirs}")
            }
            ZltpError::NoCommonMode => write!(f, "no mutually supported mode of operation"),
            ZltpError::UnexpectedMessage { expected, got } => {
                write!(f, "unexpected message: expected {expected}, got {got}")
            }
            ZltpError::ServerError { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ZltpError::BadQuery(m) => write!(f, "bad query: {m}"),
            ZltpError::Engine(m) => write!(f, "engine failure: {m}"),
            ZltpError::ServerPairMismatch(m) => write!(f, "server pair mismatch: {m}"),
            ZltpError::WrongMode { have, need } => {
                write!(
                    f,
                    "operation requires mode {need:?} but session uses {have:?}"
                )
            }
            ZltpError::Closed => write!(f, "session closed"),
        }
    }
}

impl std::error::Error for ZltpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZltpError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ZltpError {
    fn from(e: std::io::Error) -> Self {
        ZltpError::Io(e)
    }
}

impl From<lightweb_engine::EngineError> for ZltpError {
    fn from(e: lightweb_engine::EngineError) -> Self {
        match e {
            lightweb_engine::EngineError::BadQuery(m) => ZltpError::BadQuery(m),
            lightweb_engine::EngineError::Backend(m) => ZltpError::Engine(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ZltpError::ServerError {
            code: 404,
            message: "no such universe".into(),
        };
        assert!(e.to_string().contains("404"));
        assert!(e.to_string().contains("no such universe"));
        let v = ZltpError::VersionMismatch { ours: 1, theirs: 9 };
        assert!(v.to_string().contains('9'));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let e = ZltpError::from(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"));
        assert!(e.source().is_some());
    }
}
