//! The ZLTP wire format: length-prefixed binary frames.
//!
//! Every message travels as `u32 length (big-endian) || u8 type || payload`.
//! The length covers the type byte and payload. Frames are capped at
//! [`MAX_FRAME_LEN`] so a malicious peer cannot force unbounded allocation.
//!
//! Because ZLTP's privacy rests on *what* is inside the payloads (DPF keys,
//! LWE vectors, sealed keywords) rather than on hiding message boundaries,
//! the framing itself is deliberately plain. Response frames for a given
//! session are all the same size by construction (fixed blob size), which
//! is what the lightweb layer's traffic-shape argument relies on.
//!
//! ## Trace extension
//!
//! A frame may carry an optional 32-byte **trace extension** — an encoded
//! [`TraceContext`] — so a request's causal identity propagates to the
//! server. The extension is signaled by the [`TRACE_EXT_FLAG`] high bit
//! of the wire type byte and appended *after* the payload (covered by the
//! length word). This is backwards compatible in both directions: frames
//! without the flag decode exactly as before, and an old peer never sets
//! the flag (type bytes are small constants), so a new decoder treats its
//! frames as extension-free. Message payload encodings are untouched —
//! [`Message::from_frame`] still rejects trailing bytes, because the
//! extension is stripped at the framing layer before it runs.

use crate::error::ZltpError;
use bytes::{Buf, BufMut, BytesMut};
use lightweb_telemetry::trace::{TraceContext, TRACE_CONTEXT_LEN};

/// Protocol version spoken by this implementation.
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame's (type + payload) length: 64 MiB, comfortably
/// above the largest legitimate frame (an LWE hint for a big shard).
pub const MAX_FRAME_LEN: usize = 64 * 1024 * 1024;

/// Message type identifiers.
mod msg_type {
    pub const CLIENT_HELLO: u8 = 1;
    pub const SERVER_HELLO: u8 = 2;
    pub const GET: u8 = 3;
    pub const GET_RESPONSE: u8 = 4;
    pub const LWE_SETUP_REQUEST: u8 = 5;
    pub const LWE_SETUP_RESPONSE: u8 = 6;
    pub const ERROR: u8 = 7;
    pub const CLOSE: u8 = 8;
}

/// High bit of the wire type byte: set when the frame body ends with a
/// [`TRACE_EXT_LEN`]-byte trace extension. Real message types are small
/// constants, so the bit is never set by peers that predate tracing.
pub const TRACE_EXT_FLAG: u8 = 0x80;

/// Size of the encoded trace extension: a [`TraceContext`] (16-byte
/// trace id, 8-byte span id, 8-byte parent id, big-endian).
pub const TRACE_EXT_LEN: usize = TRACE_CONTEXT_LEN;

/// A raw frame: type byte plus payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Message type byte.
    pub msg_type: u8,
    /// Opaque payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Interpret a wire type byte and frame body: if `raw_type` carries
    /// [`TRACE_EXT_FLAG`], split the trailing [`TRACE_EXT_LEN`]-byte
    /// trace extension off `body` and decode it; otherwise the body is
    /// the payload unchanged. Errors when the flag is set but the body
    /// is too short to hold the extension.
    pub fn strip_trace_ext(
        raw_type: u8,
        mut body: Vec<u8>,
    ) -> Result<(Frame, Option<TraceContext>), ZltpError> {
        if raw_type & TRACE_EXT_FLAG == 0 {
            return Ok((
                Frame {
                    msg_type: raw_type,
                    payload: body,
                },
                None,
            ));
        }
        if body.len() < TRACE_EXT_LEN {
            return Err(ZltpError::Wire(format!(
                "frame body of {} bytes too short for trace extension",
                body.len()
            )));
        }
        let split = body.len() - TRACE_EXT_LEN;
        let ctx = TraceContext::from_bytes(&body[split..]).expect("length just checked");
        body.truncate(split);
        Ok((
            Frame {
                msg_type: raw_type & !TRACE_EXT_FLAG,
                payload: body,
            },
            Some(ctx),
        ))
    }
}

/// A decoded ZLTP protocol message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Client's opening message.
    ClientHello {
        /// Protocol version.
        version: u16,
        /// Supported mode identifiers, most preferred first.
        modes: Vec<u8>,
    },
    /// Server's reply fixing the session parameters.
    ServerHello {
        /// Protocol version.
        version: u16,
        /// Universe identifier.
        universe_id: String,
        /// Chosen mode identifier.
        mode: u8,
        /// Fixed blob size served on this session.
        blob_len: u32,
        /// log2 of the keyword slot domain.
        domain_bits: u8,
        /// DPF early-termination width.
        term_bits: u8,
        /// Keyword-hash key shared universe-wide.
        keyword_hash_key: [u8; 16],
        /// Mode-specific public metadata (e.g. the enclave session key, or
        /// the LWE public-matrix seed).
        extra: Vec<u8>,
    },
    /// One private-GET request.
    Get {
        /// Client-chosen id echoed in the response.
        request_id: u32,
        /// Mode-specific query payload.
        payload: Vec<u8>,
    },
    /// One private-GET response.
    GetResponse {
        /// Echoed request id.
        request_id: u32,
        /// Mode-specific response payload (fixed size per session).
        payload: Vec<u8>,
    },
    /// Client asks for the LWE offline material (manifest + hint).
    LweSetupRequest,
    /// LWE offline material.
    LweSetupResponse {
        /// Sorted 64-bit hashes of stored keys; the record index of a key
        /// is its rank in this list. Public metadata: reveals *what* is
        /// stored (which is public anyway), never what is queried.
        key_hashes: Vec<u64>,
        /// The hint matrix `DB·A`, row-major `record_len × n` u32s.
        hint: Vec<u32>,
    },
    /// Server-reported failure.
    Error {
        /// Numeric code.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Orderly shutdown.
    Close,
}

impl Message {
    /// Short name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Message::ClientHello { .. } => "ClientHello",
            Message::ServerHello { .. } => "ServerHello",
            Message::Get { .. } => "Get",
            Message::GetResponse { .. } => "GetResponse",
            Message::LweSetupRequest => "LweSetupRequest",
            Message::LweSetupResponse { .. } => "LweSetupResponse",
            Message::Error { .. } => "Error",
            Message::Close => "Close",
        }
    }

    /// Encode into a frame.
    pub fn to_frame(&self) -> Frame {
        let mut buf = BytesMut::new();
        let msg_type = match self {
            Message::ClientHello { version, modes } => {
                buf.put_u16(*version);
                buf.put_u8(modes.len() as u8);
                buf.put_slice(modes);
                msg_type::CLIENT_HELLO
            }
            Message::ServerHello {
                version,
                universe_id,
                mode,
                blob_len,
                domain_bits,
                term_bits,
                keyword_hash_key,
                extra,
            } => {
                buf.put_u16(*version);
                put_string(&mut buf, universe_id);
                buf.put_u8(*mode);
                buf.put_u32(*blob_len);
                buf.put_u8(*domain_bits);
                buf.put_u8(*term_bits);
                buf.put_slice(keyword_hash_key);
                buf.put_u32(extra.len() as u32);
                buf.put_slice(extra);
                msg_type::SERVER_HELLO
            }
            Message::Get {
                request_id,
                payload,
            } => {
                buf.put_u32(*request_id);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
                msg_type::GET
            }
            Message::GetResponse {
                request_id,
                payload,
            } => {
                buf.put_u32(*request_id);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload);
                msg_type::GET_RESPONSE
            }
            Message::LweSetupRequest => msg_type::LWE_SETUP_REQUEST,
            Message::LweSetupResponse { key_hashes, hint } => {
                buf.put_u32(key_hashes.len() as u32);
                for h in key_hashes {
                    buf.put_u64(*h);
                }
                buf.put_u32(hint.len() as u32);
                for v in hint {
                    buf.put_u32(*v);
                }
                msg_type::LWE_SETUP_RESPONSE
            }
            Message::Error { code, message } => {
                buf.put_u16(*code);
                put_string(&mut buf, message);
                msg_type::ERROR
            }
            Message::Close => msg_type::CLOSE,
        };
        Frame {
            msg_type,
            payload: buf.to_vec(),
        }
    }

    /// Decode a frame into a message.
    pub fn from_frame(frame: &Frame) -> Result<Message, ZltpError> {
        let mut buf = frame.payload.as_slice();
        let msg = match frame.msg_type {
            msg_type::CLIENT_HELLO => {
                let version = get_u16(&mut buf)?;
                let n = get_u8(&mut buf)? as usize;
                let modes = get_bytes(&mut buf, n)?;
                Message::ClientHello { version, modes }
            }
            msg_type::SERVER_HELLO => {
                let version = get_u16(&mut buf)?;
                let universe_id = get_string(&mut buf)?;
                let mode = get_u8(&mut buf)?;
                let blob_len = get_u32(&mut buf)?;
                let domain_bits = get_u8(&mut buf)?;
                let term_bits = get_u8(&mut buf)?;
                let kh = get_bytes(&mut buf, 16)?;
                let extra_len = get_u32(&mut buf)? as usize;
                let extra = get_bytes(&mut buf, extra_len)?;
                let mut keyword_hash_key = [0u8; 16];
                keyword_hash_key.copy_from_slice(&kh);
                Message::ServerHello {
                    version,
                    universe_id,
                    mode,
                    blob_len,
                    domain_bits,
                    term_bits,
                    keyword_hash_key,
                    extra,
                }
            }
            msg_type::GET => {
                let request_id = get_u32(&mut buf)?;
                let n = get_u32(&mut buf)? as usize;
                let payload = get_bytes(&mut buf, n)?;
                Message::Get {
                    request_id,
                    payload,
                }
            }
            msg_type::GET_RESPONSE => {
                let request_id = get_u32(&mut buf)?;
                let n = get_u32(&mut buf)? as usize;
                let payload = get_bytes(&mut buf, n)?;
                Message::GetResponse {
                    request_id,
                    payload,
                }
            }
            msg_type::LWE_SETUP_REQUEST => Message::LweSetupRequest,
            msg_type::LWE_SETUP_RESPONSE => {
                let n = get_u32(&mut buf)? as usize;
                if buf.remaining() < n * 8 {
                    return Err(ZltpError::Wire("truncated key-hash list".into()));
                }
                let mut key_hashes = Vec::with_capacity(n);
                for _ in 0..n {
                    key_hashes.push(buf.get_u64());
                }
                let m = get_u32(&mut buf)? as usize;
                if buf.remaining() < m * 4 {
                    return Err(ZltpError::Wire("truncated hint".into()));
                }
                let mut hint = Vec::with_capacity(m);
                for _ in 0..m {
                    hint.push(buf.get_u32());
                }
                Message::LweSetupResponse { key_hashes, hint }
            }
            msg_type::ERROR => {
                let code = get_u16(&mut buf)?;
                let message = get_string(&mut buf)?;
                Message::Error { code, message }
            }
            msg_type::CLOSE => Message::Close,
            t => return Err(ZltpError::Wire(format!("unknown message type {t}"))),
        };
        if !buf.is_empty() {
            return Err(ZltpError::Wire(format!(
                "{} trailing bytes after {}",
                buf.len(),
                msg.name()
            )));
        }
        Ok(msg)
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    debug_assert!(s.len() <= u16::MAX as usize);
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_u8(buf: &mut &[u8]) -> Result<u8, ZltpError> {
    if buf.remaining() < 1 {
        return Err(ZltpError::Wire("truncated frame".into()));
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut &[u8]) -> Result<u16, ZltpError> {
    if buf.remaining() < 2 {
        return Err(ZltpError::Wire("truncated frame".into()));
    }
    Ok(buf.get_u16())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32, ZltpError> {
    if buf.remaining() < 4 {
        return Err(ZltpError::Wire("truncated frame".into()));
    }
    Ok(buf.get_u32())
}

fn get_bytes(buf: &mut &[u8], n: usize) -> Result<Vec<u8>, ZltpError> {
    if buf.remaining() < n {
        return Err(ZltpError::Wire("truncated frame".into()));
    }
    let out = buf[..n].to_vec();
    buf.advance(n);
    Ok(out)
}

fn get_string(buf: &mut &[u8]) -> Result<String, ZltpError> {
    let n = get_u16(buf)? as usize;
    let bytes = get_bytes(buf, n)?;
    String::from_utf8(bytes).map_err(|_| ZltpError::Wire("invalid UTF-8 string".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let frame = msg.to_frame();
        let back = Message::from_frame(&frame).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Message::ClientHello {
            version: 1,
            modes: vec![1, 3],
        });
        roundtrip(Message::ServerHello {
            version: 1,
            universe_id: "main".into(),
            mode: 1,
            blob_len: 4096,
            domain_bits: 22,
            term_bits: 7,
            keyword_hash_key: [9; 16],
            extra: vec![1, 2, 3],
        });
        roundtrip(Message::Get {
            request_id: 7,
            payload: vec![0xAB; 357],
        });
        roundtrip(Message::GetResponse {
            request_id: 7,
            payload: vec![0xCD; 4096],
        });
        roundtrip(Message::LweSetupRequest);
        roundtrip(Message::LweSetupResponse {
            key_hashes: vec![u64::MAX, 0, 42],
            hint: vec![1, 2, 3, 4, u32::MAX],
        });
        roundtrip(Message::Error {
            code: 500,
            message: "boom".into(),
        });
        roundtrip(Message::Close);
    }

    #[test]
    fn empty_payload_messages_roundtrip() {
        roundtrip(Message::ClientHello {
            version: 0,
            modes: vec![],
        });
        roundtrip(Message::Get {
            request_id: 0,
            payload: vec![],
        });
        roundtrip(Message::LweSetupResponse {
            key_hashes: vec![],
            hint: vec![],
        });
    }

    #[test]
    fn unknown_message_type_rejected() {
        let frame = Frame {
            msg_type: 99,
            payload: vec![],
        };
        assert!(matches!(
            Message::from_frame(&frame),
            Err(ZltpError::Wire(_))
        ));
    }

    #[test]
    fn truncated_payload_rejected() {
        let good = Message::ServerHello {
            version: 1,
            universe_id: "u".into(),
            mode: 1,
            blob_len: 64,
            domain_bits: 10,
            term_bits: 3,
            keyword_hash_key: [0; 16],
            extra: vec![5; 10],
        }
        .to_frame();
        for len in 0..good.payload.len() {
            let bad = Frame {
                msg_type: good.msg_type,
                payload: good.payload[..len].to_vec(),
            };
            assert!(
                Message::from_frame(&bad).is_err(),
                "accepted truncation to {len} of {}",
                good.payload.len()
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = Message::Close.to_frame();
        frame.payload.push(0);
        assert!(matches!(
            Message::from_frame(&frame),
            Err(ZltpError::Wire(_))
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // Error message with non-UTF-8 bytes.
        let mut payload = Vec::new();
        payload.extend_from_slice(&500u16.to_be_bytes());
        payload.extend_from_slice(&2u16.to_be_bytes());
        payload.extend_from_slice(&[0xFF, 0xFE]);
        let frame = Frame {
            msg_type: 7,
            payload,
        };
        assert!(matches!(
            Message::from_frame(&frame),
            Err(ZltpError::Wire(_))
        ));
    }

    #[test]
    fn max_frame_payload_roundtrips() {
        // The largest legitimate frame: a response whose payload fills the
        // frame cap exactly (minus the type byte and the 8-byte
        // request-id/length header of a GetResponse).
        let payload = vec![0x5A; MAX_FRAME_LEN - 1 - 8];
        let msg = Message::GetResponse {
            request_id: u32::MAX,
            payload,
        };
        let frame = msg.to_frame();
        assert!(frame.payload.len() < MAX_FRAME_LEN, "within cap");
        assert_eq!(Message::from_frame(&frame).unwrap(), msg);
    }

    fn sample_ctx() -> TraceContext {
        TraceContext {
            trace_id: 0x1111_2222_3333_4444_5555_6666_7777_8888,
            span_id: 0x9999_AAAA_BBBB_CCCC,
            parent_id: 0xDDDD_EEEE_FFFF_0001,
        }
    }

    #[test]
    fn trace_ext_strips_and_decodes() {
        let msg = Message::Get {
            request_id: 7,
            payload: vec![0xAB; 64],
        };
        let frame = msg.to_frame();
        let ctx = sample_ctx();
        let mut body = frame.payload.clone();
        body.extend_from_slice(&ctx.to_bytes());
        let (stripped, trace) =
            Frame::strip_trace_ext(frame.msg_type | TRACE_EXT_FLAG, body).unwrap();
        assert_eq!(stripped, frame);
        assert_eq!(trace, Some(ctx));
        // The stripped frame decodes to the original message — the
        // extension never reaches the payload decoder.
        assert_eq!(Message::from_frame(&stripped).unwrap(), msg);
    }

    #[test]
    fn frames_without_flag_decode_as_before() {
        // Old-peer direction: no flag, body untouched even if it happens
        // to end with 32 bytes that could parse as a context.
        let mut payload = Message::Close.to_frame().payload;
        payload.extend_from_slice(&sample_ctx().to_bytes());
        let (frame, trace) = Frame::strip_trace_ext(8, payload.clone()).unwrap();
        assert_eq!(trace, None);
        assert_eq!(frame.payload, payload);
        // (Which then fails payload decoding as trailing bytes, as it
        // should — the bytes were never a sanctioned extension.)
        assert!(Message::from_frame(&frame).is_err());
    }

    #[test]
    fn flagged_frame_too_short_for_extension_rejected() {
        for n in 0..TRACE_EXT_LEN {
            let err = Frame::strip_trace_ext(3 | TRACE_EXT_FLAG, vec![0; n]);
            assert!(matches!(err, Err(ZltpError::Wire(_))), "len {n} accepted");
        }
    }

    #[test]
    fn get_responses_have_uniform_size_for_fixed_blobs() {
        // The traffic-shape property: responses for equal-size blobs encode
        // to equal-size frames regardless of content.
        let a = Message::GetResponse {
            request_id: 1,
            payload: vec![0x00; 1024],
        }
        .to_frame();
        let b = Message::GetResponse {
            request_id: 999,
            payload: vec![0xFF; 1024],
        }
        .to_frame();
        assert_eq!(a.payload.len(), b.payload.len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(msg: Message) -> Result<(), TestCaseError> {
        let frame = msg.to_frame();
        let back = Message::from_frame(&frame)
            .map_err(|e| TestCaseError::fail(format!("{} failed to decode: {e}", msg.name())))?;
        prop_assert_eq!(back, msg);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Every message variant round-trips for arbitrary field values,
        /// including zero-length payloads (the length ranges start at 0).
        #[test]
        fn any_message_roundtrips(
            version in any::<u16>(),
            modes in prop::collection::vec(any::<u8>(), 0..9),
            universe_id in "[a-z0-9\\-\\./]{0,32}",
            mode in any::<u8>(),
            blob_len in any::<u32>(),
            domain_bits in any::<u8>(),
            term_bits in any::<u8>(),
            khk in prop::collection::vec(any::<u8>(), 16..17),
            request_id in any::<u32>(),
            payload in prop::collection::vec(any::<u8>(), 0..4097),
            key_hashes in prop::collection::vec(any::<u64>(), 0..65),
            hint in prop::collection::vec(any::<u32>(), 0..65),
            code in any::<u16>(),
            error_text in "[ -~]{0,64}",
        ) {
            let mut keyword_hash_key = [0u8; 16];
            keyword_hash_key.copy_from_slice(&khk);
            roundtrip(Message::ClientHello { version, modes })?;
            roundtrip(Message::ServerHello {
                version,
                universe_id,
                mode,
                blob_len,
                domain_bits,
                term_bits,
                keyword_hash_key,
                extra: payload.clone(),
            })?;
            roundtrip(Message::Get { request_id, payload: payload.clone() })?;
            roundtrip(Message::GetResponse { request_id, payload })?;
            roundtrip(Message::LweSetupRequest)?;
            roundtrip(Message::LweSetupResponse { key_hashes, hint })?;
            roundtrip(Message::Error { code, message: error_text })?;
            roundtrip(Message::Close)?;
        }

        /// Decoding is total: arbitrary frames never panic, and whatever
        /// decodes must re-encode to the same frame (decode is injective
        /// on the valid subset).
        #[test]
        fn arbitrary_frames_never_panic_and_reencode(
            msg_type in any::<u8>(),
            payload in prop::collection::vec(any::<u8>(), 0..512),
        ) {
            let frame = Frame { msg_type, payload };
            if let Ok(msg) = Message::from_frame(&frame) {
                prop_assert_eq!(msg.to_frame(), frame);
            }
        }

        /// The trace extension round-trips at the framing layer for any
        /// payload and context, and its absence leaves the body alone:
        /// the with/without directions of the backwards-compat story.
        #[test]
        fn trace_extension_roundtrips_and_absence_is_identity(
            msg_type in 0u8..0x80,
            payload in prop::collection::vec(any::<u8>(), 0..256),
            trace_id in any::<u128>(),
            span_id in any::<u64>(),
            parent_id in any::<u64>(),
        ) {
            let ctx = TraceContext { trace_id, span_id, parent_id };
            // With the extension: flag set, body = payload ++ ctx.
            let mut body = payload.clone();
            body.extend_from_slice(&ctx.to_bytes());
            let (frame, got) = Frame::strip_trace_ext(msg_type | TRACE_EXT_FLAG, body)
                .map_err(|e| TestCaseError::fail(format!("strip failed: {e}")))?;
            prop_assert_eq!(got, Some(ctx));
            prop_assert_eq!(&frame.payload, &payload);
            prop_assert_eq!(frame.msg_type, msg_type);
            // Without: anything lacking the flag passes through whole.
            let (frame, got) = Frame::strip_trace_ext(msg_type, payload.clone())
                .map_err(|e| TestCaseError::fail(format!("plain strip failed: {e}")))?;
            prop_assert_eq!(got, None);
            prop_assert_eq!(frame.payload, payload);
            prop_assert_eq!(frame.msg_type, msg_type);
        }

        /// Strip never panics, whatever the type byte and body: flagged
        /// short bodies error cleanly.
        #[test]
        fn strip_trace_ext_is_total(
            raw_type in any::<u8>(),
            body in prop::collection::vec(any::<u8>(), 0..64),
        ) {
            let flagged = raw_type & TRACE_EXT_FLAG != 0;
            let too_short = body.len() < TRACE_EXT_LEN;
            match Frame::strip_trace_ext(raw_type, body) {
                Ok((_, trace)) => prop_assert_eq!(trace.is_some(), flagged),
                Err(_) => prop_assert!(flagged && too_short),
            }
        }
    }
}
