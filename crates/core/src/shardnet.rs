//! The §5.2 deployment taken out of one address space: data-server
//! shards behind TCP, and the front-end fan-out that drives them.
//!
//! [`ShardedDeployment`](lightweb_engine::ShardedDeployment) reproduces
//! the paper's front-end/data-server split in-process. This module puts
//! the hop on a real wire: a [`ShardNetServer`] hosts one
//! [`DataShard`] and answers `(ShardKey, TreeNode)` requests; a
//! [`ShardFanout`] holds one connection per shard, performs the
//! front-end prefix evaluation, ships each sub-tree root to its shard,
//! and XOR-combines the partial answers — the paper's "front-end
//! servers process the client's DPF key before sending the DPF key to
//! the data servers".
//!
//! The shard hop reuses the ZLTP frame format (`Get`/`GetResponse`
//! inside length-prefixed frames), so byte/frame accounting, trace
//! extensions, and the adversarial-framing defenses all carry over.
//! Every link — accepted and dialed — goes through
//! [`tune_zltp_socket`]: shard RPCs are small (a sub-tree root is 17
//! bytes, a shard key a few hundred) and latency-critical, exactly the
//! traffic Nagle's algorithm would sit on, so `TCP_NODELAY` is applied
//! and its failure counted rather than ignored.

use crate::error::ZltpError;
use crate::server::error_code;
use crate::transport::{tune_zltp_socket, FramedConn};
use crate::wire::Message;
use lightweb_dpf::{DpfKey, DpfParams, ShardKey, TreeNode};
use lightweb_engine::DataShard;
use lightweb_store::record::{get_bytes, put_bytes};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Encode one shard request: the shard key and the sub-tree root for
/// this shard, as a `Get` payload.
fn encode_shard_request(shard_key: &[u8], node: &TreeNode) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + shard_key.len() + TreeNode::SERIALIZED_LEN);
    put_bytes(&mut out, shard_key);
    put_bytes(&mut out, &node.to_bytes());
    out
}

/// Decode a shard request payload back into key material.
fn decode_shard_request(mut payload: &[u8]) -> Result<(ShardKey, TreeNode), String> {
    let key_bytes = get_bytes(&mut payload).map_err(|e| e.to_string())?;
    let node_bytes = get_bytes(&mut payload).map_err(|e| e.to_string())?;
    if !payload.is_empty() {
        return Err(format!("{} trailing bytes in shard request", payload.len()));
    }
    let shard_key = ShardKey::from_bytes(&key_bytes).map_err(|e| e.to_string())?;
    let node = TreeNode::from_bytes(&node_bytes).map_err(|e| e.to_string())?;
    Ok((shard_key, node))
}

/// Count a shard-session failure and surface it to the event sink —
/// the shardnet mirror of the core server's session-error logging.
fn log_shardnet_error(err: &str) {
    lightweb_telemetry::counter!("shardnet.session.errors").inc();
    lightweb_telemetry::events::emit(
        "shardnet.session.error",
        &[("error", lightweb_telemetry::events::Field::Str(err))],
    );
}

struct ShardNetInner {
    shard: DataShard,
    shutdown: AtomicBool,
}

/// One data server of a wire-distributed §5.2 deployment: accepts
/// front-end connections and answers shard requests against its slice.
#[derive(Clone)]
pub struct ShardNetServer {
    inner: Arc<ShardNetInner>,
}

impl ShardNetServer {
    /// Host `shard` behind a TCP front door.
    pub fn new(shard: DataShard) -> Self {
        Self {
            inner: Arc::new(ShardNetInner {
                shard,
                shutdown: AtomicBool::new(false),
            }),
        }
    }

    /// Stop accepting and wind down the accept thread.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
    }

    /// Serve front-end connections on `listener` until shutdown.
    /// Connections are few (one per front-end) and long-lived, so a
    /// blocking thread per connection is the right shape here — the
    /// 10k-session reactor problem lives on the client-facing side.
    pub fn serve(&self, listener: TcpListener) -> std::io::Result<std::thread::JoinHandle<()>> {
        listener.set_nonblocking(true)?;
        let inner = self.inner.clone();
        std::thread::Builder::new()
            .name("shardnet-accept".into())
            .spawn(move || loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        tune_zltp_socket(&stream, "shard-accept");
                        let inner = inner.clone();
                        let spawned = std::thread::Builder::new()
                            .name("shardnet-conn".into())
                            .spawn(move || {
                                if let Err(e) = serve_front_end(&inner, stream) {
                                    log_shardnet_error(&e.to_string());
                                }
                            });
                        if let Err(e) = spawned {
                            log_shardnet_error(&e.to_string());
                        }
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => return,
                }
            })
    }
}

/// One front-end connection's request loop on a shard server.
fn serve_front_end(inner: &ShardNetInner, stream: TcpStream) -> Result<(), ZltpError> {
    let mut conn = FramedConn::new(stream);
    loop {
        if inner.shutdown.load(Ordering::SeqCst) {
            let _ = conn.send(&Message::Close);
            return Ok(());
        }
        match conn.recv()? {
            Message::Get {
                request_id,
                payload,
            } => {
                lightweb_telemetry::counter!("shardnet.requests").inc();
                let _t = lightweb_telemetry::span!("zltp.shardnet.answer.ns");
                let reply = decode_shard_request(&payload)
                    .and_then(|(key, node)| {
                        inner.shard.answer(&key, &node).map_err(|e| e.to_string())
                    })
                    .map(|partial| Message::GetResponse {
                        request_id,
                        payload: partial,
                    })
                    .unwrap_or_else(|e| {
                        lightweb_telemetry::counter!("shardnet.request.errors").inc();
                        Message::Error {
                            code: error_code::BAD_QUERY,
                            message: e,
                        }
                    });
                conn.send(&reply)?;
            }
            Message::Close => {
                let _ = conn.send(&Message::Close);
                return Ok(());
            }
            other => {
                conn.send(&Message::Error {
                    code: error_code::STATE,
                    message: format!("unexpected {} on shard link", other.name()),
                })?;
                return Ok(());
            }
        }
    }
}

/// The front-end's side of the wire: one connection per data-server
/// shard, fan-out of the prefix split, XOR combination of the partials.
pub struct ShardFanout {
    links: Vec<FramedConn<TcpStream>>,
    params: DpfParams,
    prefix_bits: u32,
    next_request_id: u32,
}

impl ShardFanout {
    /// Dial every shard of a `2^prefix_bits`-way deployment.
    /// `shard_addrs[j]` must be the server holding slice `j` of the slot
    /// domain; the count must match the split exactly. Each link gets
    /// [`tune_zltp_socket`] (`TCP_NODELAY`) — the front-end↔shard hop
    /// sits inside the end-to-end latency budget of every private GET.
    pub fn connect<A: ToSocketAddrs>(
        shard_addrs: &[A],
        params: DpfParams,
        prefix_bits: u32,
    ) -> Result<Self, ZltpError> {
        if shard_addrs.len() != 1usize << prefix_bits {
            return Err(ZltpError::Wire(format!(
                "{} shard addresses for a 2^{prefix_bits}-way split",
                shard_addrs.len()
            )));
        }
        let links = shard_addrs
            .iter()
            .map(|addr| {
                let stream = TcpStream::connect(addr)?;
                tune_zltp_socket(&stream, "shard-link");
                Ok(FramedConn::new(stream))
            })
            .collect::<Result<Vec<_>, std::io::Error>>()?;
        Ok(Self {
            links,
            params,
            prefix_bits,
            next_request_id: 1,
        })
    }

    /// Number of shard links.
    pub fn shard_count(&self) -> usize {
        self.links.len()
    }

    /// `TCP_NODELAY` state of every shard link, in shard order. Exposed
    /// so deployments (and tests) can verify the option actually stuck
    /// rather than trusting that it was requested.
    pub fn nodelay_states(&self) -> std::io::Result<Vec<bool>> {
        self.links.iter().map(|l| l.get_ref().nodelay()).collect()
    }

    /// Answer one client key across the shards: evaluate the top
    /// `prefix_bits` levels here, ship sub-tree root `j` (plus the shared
    /// shard key) to shard `j`, and XOR the partial answers — the wire
    /// version of `ShardedDeployment::answer`.
    ///
    /// Requests go out on every link before any response is awaited, so
    /// the shards scan their slices concurrently; wall-clock stays at
    /// one shard's latency plus the fan-out round trip.
    pub fn answer(&mut self, key: &DpfKey) -> Result<Vec<u8>, ZltpError> {
        if key.params() != self.params {
            return Err(ZltpError::Wire("DPF parameters mismatch".into()));
        }
        let _t = lightweb_telemetry::span!("zltp.shardnet.fanout.ns");
        let (nodes, shard_key) = {
            let _fe = lightweb_telemetry::span!("zltp.shard.front_end.ns");
            (
                key.eval_prefix(self.prefix_bits),
                key.shard_key(self.prefix_bits),
            )
        };
        let key_bytes = shard_key.to_bytes();
        let request_id = self.next_request_id;
        self.next_request_id = self.next_request_id.wrapping_add(1);
        for (link, node) in self.links.iter_mut().zip(nodes.iter()) {
            link.send(&Message::Get {
                request_id,
                payload: encode_shard_request(&key_bytes, node),
            })?;
        }
        let mut acc: Option<Vec<u8>> = None;
        for (j, link) in self.links.iter_mut().enumerate() {
            match link.recv()? {
                Message::GetResponse {
                    request_id: rid,
                    payload,
                } => {
                    if rid != request_id {
                        return Err(ZltpError::Wire(format!(
                            "shard {j} answered request {rid}, expected {request_id}"
                        )));
                    }
                    match &mut acc {
                        None => acc = Some(payload),
                        Some(acc) => {
                            if acc.len() != payload.len() {
                                return Err(ZltpError::Wire(format!(
                                    "shard {j} answer length {} != {}",
                                    payload.len(),
                                    acc.len()
                                )));
                            }
                            lightweb_crypto::xor_in_place(acc, &payload);
                        }
                    }
                }
                Message::Error { code, message } => {
                    return Err(ZltpError::ServerError { code, message })
                }
                other => {
                    return Err(ZltpError::UnexpectedMessage {
                        expected: "GetResponse",
                        got: other.name(),
                    })
                }
            }
        }
        acc.ok_or_else(|| ZltpError::Wire("no shards".into()))
    }

    /// Orderly close of every shard link.
    pub fn close(mut self) -> Result<(), ZltpError> {
        for link in &mut self.links {
            link.send(&Message::Close)?;
            let _ = link.recv();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightweb_dpf::gen;
    use lightweb_engine::ShardedDeployment;

    fn entries(n: u64, domain: u64, record_len: usize) -> Vec<(u64, Vec<u8>)> {
        (0..n)
            .map(|i| {
                let slot = (i * 2654435761) % domain;
                let mut rec = vec![0u8; record_len];
                rec[..8].copy_from_slice(&i.to_le_bytes());
                (slot, rec)
            })
            .collect::<std::collections::BTreeMap<_, _>>()
            .into_iter()
            .collect()
    }

    fn spawn_shards(
        params: DpfParams,
        prefix_bits: u32,
        record_len: usize,
        es: &[(u64, Vec<u8>)],
    ) -> (Vec<ShardNetServer>, Vec<std::net::SocketAddr>) {
        let mut servers = Vec::new();
        let mut addrs = Vec::new();
        for j in 0..(1usize << prefix_bits) {
            let shard =
                DataShard::from_entries(params, prefix_bits, j, record_len, es.to_vec()).unwrap();
            let server = ShardNetServer::new(shard);
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            addrs.push(listener.local_addr().unwrap());
            server.serve(listener).unwrap();
            servers.push(server);
        }
        (servers, addrs)
    }

    #[test]
    fn fanout_matches_in_process_deployment() {
        let params = DpfParams::new(12, 3).unwrap();
        let es = entries(80, 1 << 12, 24);
        let dep = ShardedDeployment::from_entries(params, 2, 24, es.clone()).unwrap();
        let (servers, addrs) = spawn_shards(params, 2, 24, &es);
        let mut fanout = ShardFanout::connect(&addrs, params, 2).unwrap();
        assert_eq!(fanout.shard_count(), 4);
        for &(slot, _) in es.iter().take(6) {
            let (k0, k1) = gen(&params, slot);
            for k in [&k0, &k1] {
                assert_eq!(
                    fanout.answer(k).unwrap(),
                    dep.answer(k).unwrap().0,
                    "slot {slot}"
                );
            }
        }
        fanout.close().unwrap();
        for s in &servers {
            s.shutdown();
        }
    }

    #[test]
    fn shard_links_have_nodelay_applied() {
        // §5.2's front-end↔shard hop must not sit behind Nagle: assert
        // the option is actually set on the connected sockets, not just
        // requested.
        let params = DpfParams::new(12, 3).unwrap();
        let es = entries(16, 1 << 12, 8);
        let (servers, addrs) = spawn_shards(params, 1, 8, &es);
        let fanout = ShardFanout::connect(&addrs, params, 1).unwrap();
        let states = fanout.nodelay_states().unwrap();
        assert_eq!(states.len(), 2);
        assert!(
            states.iter().all(|&on| on),
            "TCP_NODELAY missing on shard links: {states:?}"
        );
        fanout.close().unwrap();
        for s in &servers {
            s.shutdown();
        }
    }

    #[test]
    fn shard_server_rejects_garbage_and_wrong_split() {
        let params = DpfParams::new(12, 3).unwrap();
        let es = entries(16, 1 << 12, 8);
        let (servers, addrs) = spawn_shards(params, 1, 8, &es);

        // Address-count mismatch is refused before any bytes move.
        assert!(ShardFanout::connect(&addrs, params, 2).is_err());

        // A garbage payload earns a BAD_QUERY error, not a hang.
        let mut conn = FramedConn::new(TcpStream::connect(addrs[0]).unwrap());
        conn.send(&Message::Get {
            request_id: 9,
            payload: vec![0xff; 10],
        })
        .unwrap();
        match conn.recv().unwrap() {
            Message::Error { code, .. } => assert_eq!(code, error_code::BAD_QUERY),
            other => panic!("expected Error, got {}", other.name()),
        }

        // A shard key split at the wrong depth is rejected by the shard.
        let (k0, _) = gen(&params, 0);
        let wrong_key = k0.shard_key(2).to_bytes();
        let node = k0.eval_prefix(1)[0];
        conn.send(&Message::Get {
            request_id: 10,
            payload: encode_shard_request(&wrong_key, &node),
        })
        .unwrap();
        match conn.recv().unwrap() {
            Message::Error { code, .. } => assert_eq!(code, error_code::BAD_QUERY),
            other => panic!("expected Error, got {}", other.name()),
        }

        // The connection survived both errors: a valid request works.
        let good_key = k0.shard_key(1).to_bytes();
        conn.send(&Message::Get {
            request_id: 11,
            payload: encode_shard_request(&good_key, &node),
        })
        .unwrap();
        assert!(matches!(
            conn.recv().unwrap(),
            Message::GetResponse { request_id: 11, .. }
        ));
        for s in &servers {
            s.shutdown();
        }
    }

    #[test]
    fn two_party_reconstruction_over_the_wire() {
        // Both parties' fan-outs against the same shard fleet: XOR of the
        // two combined answers is the record — §2.2 privacy reconstruction
        // across a real network hop.
        let params = DpfParams::new(12, 3).unwrap();
        let es = entries(48, 1 << 12, 16);
        let (servers, addrs) = spawn_shards(params, 2, 16, &es);
        let mut f0 = ShardFanout::connect(&addrs, params, 2).unwrap();
        let mut f1 = ShardFanout::connect(&addrs, params, 2).unwrap();
        let client = lightweb_pir::TwoServerClient::new(params, 16);
        for &(slot, ref rec) in es.iter().take(6) {
            let q = client.query_slot(slot);
            let a0 = f0.answer(&q.key0).unwrap();
            let a1 = f1.answer(&q.key1).unwrap();
            assert_eq!(
                &lightweb_pir::TwoServerClient::combine(&a0, &a1).unwrap(),
                rec,
                "slot {slot}"
            );
        }
        f0.close().unwrap();
        f1.close().unwrap();
        for s in &servers {
            s.shutdown();
        }
    }
}
