#![warn(missing_docs)]

//! # lightweb-browser
//!
//! The lightweb client: "essentially a minimal web browser that speaks the
//! ZLTP protocol" (paper §3.2).
//!
//! A browsing session works exactly as the paper lays out:
//!
//! 1. **Connect** — the browser opens *two* ZLTP session pairs with the
//!    CDN: one for the (large, rarely-changing) code blobs and one for the
//!    (small, per-page) data blobs.
//! 2. **Fetch code** — for a path like `nytimes.com/2023/06/25/uganda` the
//!    browser extracts the domain and private-GETs its code blob — unless
//!    it is already in the aggressively-kept client cache, in which case
//!    the network sees nothing.
//! 3. **Fetch data** — the domain's code runs with the path as argument
//!    and names a small number of data blobs; the browser fetches them and
//!    **pads with dummy queries to the universe's fixed per-page count**,
//!    so "the number of data blobs fetched per page view" is constant
//!    (§3.2) and the network learns only *that* a page was visited.
//! 4. **Render** — the fetched JSON data flows back into the code's
//!    template and the page body is produced. No further network traffic
//!    until the user navigates.
//!
//! The paper's code blobs contain JavaScript. Reproducing a JS engine is
//! out of scope; what the privacy argument actually requires of page code
//! is a *deterministic function from (path, local state) to a bounded list
//! of data-blob fetches plus a render of the results*. [`lwscript`] is a
//! tiny language that is exactly that function — see DESIGN.md's
//! substitution table.
//!
//! Dynamic content (§3.3) falls out of local state: a `prompt` statement
//! asks the user once and caches the answer in domain-separated
//! [`storage`], and later visits fetch personalized blobs (the paper's
//! per-postal-code weather example is `examples/weather.rs`).

pub mod browser;
pub mod lwscript;
pub mod pacer;
pub mod storage;

pub use browser::{BrowserError, LightwebBrowser, PageVisit, RenderedPage};
pub use lwscript::{parse_script, LwScript, ScriptError, ScriptPlan};
pub use pacer::{PacedSlot, Pacer};
pub use storage::LocalStorage;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The LWScript parser is total: arbitrary source text either
        /// parses or errors, never panics — code blobs come from
        /// publishers, who are not trusted by the client.
        #[test]
        fn parser_never_panics(source in "\\PC{0,256}") {
            let _ = parse_script(&source);
        }

        /// Structured-ish garbage built from real keywords also never
        /// panics (harder cases than uniform noise).
        #[test]
        fn parser_survives_keyword_soup(
            words in prop::collection::vec(
                prop_oneof![
                    Just("route"), Just("default"), Just("fetch"), Just("render"),
                    Just("prompt"), Just("store"), Just("title"), Just("{"),
                    Just("}"), Just("\"x\""), Just("\"/a/:b\""), Just("#c"),
                ],
                0..32,
            ),
        ) {
            let source = words.join(" ");
            let _ = parse_script(&source);
            let source_lines = words.join("\n");
            let _ = parse_script(&source_lines);
        }

        /// Any path made of safe segments either matches a route or falls
        /// through to default — the interpreter never panics.
        #[test]
        fn interpreter_total_on_arbitrary_paths(
            segs in prop::collection::vec("[a-z0-9]{1,8}", 0..5),
        ) {
            let script = parse_script(
                r#"
                route "/articles/:id" {
                    fetch "site.com/articles/{id}"
                    render "Article {id}"
                }
                default {
                    render "404"
                }
                "#,
            ).unwrap();
            let path = format!("/{}", segs.join("/"));
            let storage = std::collections::HashMap::new();
            let plan = script.plan(&path, &storage, &mut |_q| String::new());
            prop_assert!(plan.is_ok());
        }

        /// Template rendering never emits unresolved `{data.N}` slots when
        /// N is within the fetched set.
        #[test]
        fn render_substitutes_all_data_slots(n in 0usize..4) {
            let script = parse_script(&format!(
                "route \"/x\" {{\n fetch \"d.com/a\"\n render \"got {{data.{n}}}\"\n }}"
            )).unwrap();
            let storage = std::collections::HashMap::new();
            let plan = script.plan("/x", &storage, &mut |_q| String::new()).unwrap();
            let data: Vec<Option<String>> = (0..4).map(|i| Some(format!("v{i}"))).collect();
            let body = plan.render(&data).unwrap();
            prop_assert!(!body.contains("{data."), "{body}");
            let expected = format!("v{n}");
            prop_assert!(body.contains(&expected));
        }
    }
}
