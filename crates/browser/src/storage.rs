//! Domain-separated local storage.
//!
//! "As today, the lightweb browser enforces domain separation on local
//! storage and other client-side state" (§3.2). Page code only ever sees
//! the map for the domain being rendered — [`LocalStorage::domain_view`]
//! hands the browser a copy scoped to one domain, and writes flow back
//! through [`LocalStorage::set`] with the domain pinned by the browser,
//! not by the page.
//!
//! Storage optionally persists across browser restarts: [`LocalStorage::save_to`]
//! writes one checksummed file per domain through the store's atomic-file
//! helper (tmp → fsync → rename), and [`LocalStorage::load_from`] reads
//! them back, failing loudly on corruption. Domain separation extends to
//! disk — each domain's map lives in its own file, named by a keyed hash
//! of the domain so arbitrary domain strings map to safe file names.

use lightweb_store::atomic_file::{
    content_hash, read_checksummed, remove_stale_temps, write_checksummed,
};
use lightweb_store::record::{get_str, get_u32, put_str, put_u32};
use lightweb_store::StoreError;
use std::collections::HashMap;
use std::path::Path;

/// Prefix of per-domain storage files.
const FILE_PREFIX: &str = "ls-";
/// Suffix of per-domain storage files.
const FILE_SUFFIX: &str = ".db";

fn domain_file_name(domain: &str) -> String {
    format!(
        "{FILE_PREFIX}{:016x}{FILE_SUFFIX}",
        content_hash(domain.as_bytes())
    )
}

/// Client-side storage, partitioned by domain.
#[derive(Clone, Debug, Default)]
pub struct LocalStorage {
    by_domain: HashMap<String, HashMap<String, String>>,
}

impl LocalStorage {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read one key within a domain.
    pub fn get(&self, domain: &str, key: &str) -> Option<&str> {
        self.by_domain.get(domain)?.get(key).map(|s| s.as_str())
    }

    /// Write one key within a domain.
    pub fn set(&mut self, domain: &str, key: &str, value: &str) {
        self.by_domain
            .entry(domain.to_string())
            .or_default()
            .insert(key.to_string(), value.to_string());
    }

    /// Remove one key. Returns whether it existed.
    pub fn remove(&mut self, domain: &str, key: &str) -> bool {
        self.by_domain
            .get_mut(domain)
            .map(|m| m.remove(key).is_some())
            .unwrap_or(false)
    }

    /// Snapshot of one domain's map — what page code gets to see.
    pub fn domain_view(&self, domain: &str) -> HashMap<String, String> {
        self.by_domain.get(domain).cloned().unwrap_or_default()
    }

    /// Clear an entire domain (e.g. the user clears site data).
    pub fn clear_domain(&mut self, domain: &str) {
        self.by_domain.remove(domain);
    }

    /// Number of keys stored for a domain.
    pub fn domain_len(&self, domain: &str) -> usize {
        self.by_domain.get(domain).map(|m| m.len()).unwrap_or(0)
    }

    /// Persist every domain's map under `dir`, one atomic checksummed
    /// file per domain. Files for domains cleared since the last save are
    /// removed, so `load_from` always reflects exactly this state.
    pub fn save_to(&self, dir: &Path) -> Result<(), StoreError> {
        let _t = lightweb_telemetry::span!("browser.storage.save.ns");
        std::fs::create_dir_all(dir)?;
        remove_stale_temps(dir)?;
        let mut live = std::collections::HashSet::new();
        for (domain, map) in &self.by_domain {
            let name = domain_file_name(domain);
            let mut body = Vec::new();
            put_str(&mut body, domain);
            put_u32(&mut body, map.len() as u32);
            let mut entries: Vec<_> = map.iter().collect();
            entries.sort();
            for (k, v) in entries {
                put_str(&mut body, k);
                put_str(&mut body, v);
            }
            write_checksummed(&dir.join(&name), &body)?;
            live.insert(name);
        }
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with(FILE_PREFIX) && name.ends_with(FILE_SUFFIX) && !live.contains(&name)
            {
                std::fs::remove_file(entry.path())?;
            }
        }
        lightweb_telemetry::counter!("browser.storage.saves").inc();
        Ok(())
    }

    /// Load storage persisted by [`LocalStorage::save_to`]. A missing
    /// directory is an empty storage; a torn or bit-rotted file is a loud
    /// [`StoreError::Corrupt`], never silently dropped data.
    pub fn load_from(dir: &Path) -> Result<Self, StoreError> {
        let _t = lightweb_telemetry::span!("browser.storage.load.ns");
        let mut storage = Self::new();
        if !dir.is_dir() {
            return Ok(storage);
        }
        remove_stale_temps(dir)?;
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !name.starts_with(FILE_PREFIX) || !name.ends_with(FILE_SUFFIX) {
                continue;
            }
            let body = read_checksummed(&entry.path())?;
            let mut buf = body.as_slice();
            let domain = get_str(&mut buf)?;
            if domain_file_name(&domain) != name {
                return Err(StoreError::Corrupt(format!(
                    "storage file {name} claims domain {domain}"
                )));
            }
            let n = get_u32(&mut buf)?;
            let map = storage.by_domain.entry(domain).or_default();
            for _ in 0..n {
                let k = get_str(&mut buf)?;
                let v = get_str(&mut buf)?;
                map.insert(k, v);
            }
            if !buf.is_empty() {
                return Err(StoreError::Corrupt(format!(
                    "trailing bytes in storage file {name}"
                )));
            }
        }
        Ok(storage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut s = LocalStorage::new();
        s.set("weather.com", "postal", "94110");
        assert_eq!(s.get("weather.com", "postal"), Some("94110"));
        assert_eq!(s.get("weather.com", "other"), None);
    }

    #[test]
    fn domains_are_isolated() {
        let mut s = LocalStorage::new();
        s.set("a.com", "token", "secret-a");
        s.set("b.com", "token", "secret-b");
        assert_eq!(s.get("a.com", "token"), Some("secret-a"));
        assert_eq!(s.get("b.com", "token"), Some("secret-b"));
        // A domain view never includes another domain's keys.
        let view = s.domain_view("a.com");
        assert_eq!(view.len(), 1);
        assert_eq!(view.get("token").map(|s| s.as_str()), Some("secret-a"));
        assert!(s.domain_view("c.com").is_empty());
    }

    #[test]
    fn view_is_a_snapshot_not_a_handle() {
        let mut s = LocalStorage::new();
        s.set("a.com", "k", "v1");
        let mut view = s.domain_view("a.com");
        view.insert("k".into(), "tampered".into());
        // Mutating the view does not touch real storage.
        assert_eq!(s.get("a.com", "k"), Some("v1"));
    }

    #[test]
    fn remove_and_clear() {
        let mut s = LocalStorage::new();
        s.set("a.com", "x", "1");
        s.set("a.com", "y", "2");
        assert!(s.remove("a.com", "x"));
        assert!(!s.remove("a.com", "x"));
        assert!(!s.remove("nope.com", "x"));
        assert_eq!(s.domain_len("a.com"), 1);
        s.clear_domain("a.com");
        assert_eq!(s.domain_len("a.com"), 0);
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = LocalStorage::new();
        s.set("a.com", "k", "old");
        s.set("a.com", "k", "new");
        assert_eq!(s.get("a.com", "k"), Some("new"));
        assert_eq!(s.domain_len("a.com"), 1);
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lightweb-browser-storage-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_roundtrip_preserves_domain_separation() {
        let dir = scratch("roundtrip");
        let mut s = LocalStorage::new();
        s.set("a.com", "token", "secret-a");
        s.set("a.com", "theme", "dark");
        s.set("b.com", "token", "secret-b");
        s.save_to(&dir).unwrap();

        let loaded = LocalStorage::load_from(&dir).unwrap();
        assert_eq!(loaded.get("a.com", "token"), Some("secret-a"));
        assert_eq!(loaded.get("a.com", "theme"), Some("dark"));
        assert_eq!(loaded.get("b.com", "token"), Some("secret-b"));
        assert_eq!(loaded.domain_len("a.com"), 2);
        // One file per domain; names don't expose the domain string.
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 2);
        assert!(names.iter().all(|n| !n.contains("a.com")));
    }

    #[test]
    fn resave_drops_cleared_domains() {
        let dir = scratch("resave");
        let mut s = LocalStorage::new();
        s.set("a.com", "k", "v");
        s.set("b.com", "k", "v");
        s.save_to(&dir).unwrap();
        s.clear_domain("b.com");
        s.save_to(&dir).unwrap();
        let loaded = LocalStorage::load_from(&dir).unwrap();
        assert_eq!(loaded.domain_len("a.com"), 1);
        assert_eq!(loaded.domain_len("b.com"), 0);
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
    }

    #[test]
    fn load_from_missing_dir_is_empty() {
        let dir = scratch("missing");
        let loaded = LocalStorage::load_from(&dir).unwrap();
        assert_eq!(loaded.domain_len("a.com"), 0);
    }

    #[test]
    fn corrupted_file_fails_loudly_and_debris_is_ignored() {
        let dir = scratch("corrupt");
        let mut s = LocalStorage::new();
        s.set("a.com", "k", "v");
        s.save_to(&dir).unwrap();
        // Crash debris is swept, not loaded.
        std::fs::write(dir.join("ls-deadbeef.db.tmp"), b"half").unwrap();
        assert_eq!(
            LocalStorage::load_from(&dir).unwrap().get("a.com", "k"),
            Some("v")
        );
        // Bit rot in a real file is a loud error.
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "db"))
            .unwrap();
        let mut raw = std::fs::read(&file).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&file, &raw).unwrap();
        assert!(matches!(
            LocalStorage::load_from(&dir),
            Err(StoreError::Corrupt(_))
        ));
    }
}
