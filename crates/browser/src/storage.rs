//! Domain-separated local storage.
//!
//! "As today, the lightweb browser enforces domain separation on local
//! storage and other client-side state" (§3.2). Page code only ever sees
//! the map for the domain being rendered — [`LocalStorage::domain_view`]
//! hands the browser a copy scoped to one domain, and writes flow back
//! through [`LocalStorage::set`] with the domain pinned by the browser,
//! not by the page.

use std::collections::HashMap;

/// Client-side storage, partitioned by domain.
#[derive(Clone, Debug, Default)]
pub struct LocalStorage {
    by_domain: HashMap<String, HashMap<String, String>>,
}

impl LocalStorage {
    /// Empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read one key within a domain.
    pub fn get(&self, domain: &str, key: &str) -> Option<&str> {
        self.by_domain.get(domain)?.get(key).map(|s| s.as_str())
    }

    /// Write one key within a domain.
    pub fn set(&mut self, domain: &str, key: &str, value: &str) {
        self.by_domain
            .entry(domain.to_string())
            .or_default()
            .insert(key.to_string(), value.to_string());
    }

    /// Remove one key. Returns whether it existed.
    pub fn remove(&mut self, domain: &str, key: &str) -> bool {
        self.by_domain
            .get_mut(domain)
            .map(|m| m.remove(key).is_some())
            .unwrap_or(false)
    }

    /// Snapshot of one domain's map — what page code gets to see.
    pub fn domain_view(&self, domain: &str) -> HashMap<String, String> {
        self.by_domain.get(domain).cloned().unwrap_or_default()
    }

    /// Clear an entire domain (e.g. the user clears site data).
    pub fn clear_domain(&mut self, domain: &str) {
        self.by_domain.remove(domain);
    }

    /// Number of keys stored for a domain.
    pub fn domain_len(&self, domain: &str) -> usize {
        self.by_domain.get(domain).map(|m| m.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let mut s = LocalStorage::new();
        s.set("weather.com", "postal", "94110");
        assert_eq!(s.get("weather.com", "postal"), Some("94110"));
        assert_eq!(s.get("weather.com", "other"), None);
    }

    #[test]
    fn domains_are_isolated() {
        let mut s = LocalStorage::new();
        s.set("a.com", "token", "secret-a");
        s.set("b.com", "token", "secret-b");
        assert_eq!(s.get("a.com", "token"), Some("secret-a"));
        assert_eq!(s.get("b.com", "token"), Some("secret-b"));
        // A domain view never includes another domain's keys.
        let view = s.domain_view("a.com");
        assert_eq!(view.len(), 1);
        assert_eq!(view.get("token").map(|s| s.as_str()), Some("secret-a"));
        assert!(s.domain_view("c.com").is_empty());
    }

    #[test]
    fn view_is_a_snapshot_not_a_handle() {
        let mut s = LocalStorage::new();
        s.set("a.com", "k", "v1");
        let mut view = s.domain_view("a.com");
        view.insert("k".into(), "tampered".into());
        // Mutating the view does not touch real storage.
        assert_eq!(s.get("a.com", "k"), Some("v1"));
    }

    #[test]
    fn remove_and_clear() {
        let mut s = LocalStorage::new();
        s.set("a.com", "x", "1");
        s.set("a.com", "y", "2");
        assert!(s.remove("a.com", "x"));
        assert!(!s.remove("a.com", "x"));
        assert!(!s.remove("nope.com", "x"));
        assert_eq!(s.domain_len("a.com"), 1);
        s.clear_domain("a.com");
        assert_eq!(s.domain_len("a.com"), 0);
    }

    #[test]
    fn overwrite_replaces() {
        let mut s = LocalStorage::new();
        s.set("a.com", "k", "old");
        s.set("a.com", "k", "new");
        assert_eq!(s.get("a.com", "k"), Some("new"));
        assert_eq!(s.domain_len("a.com"), 1);
    }
}
