//! LWScript — the lightweb page-code language.
//!
//! The paper puts "a blob of JavaScript code and style information" in each
//! domain's code blob; the code receives the requested path and "can then
//! make a small, fixed number of private-GET requests" before rendering
//! (§3.2). LWScript distills that contract into a deterministic
//! mini-language (see the crate docs for why this substitution is
//! faithful). A program is a list of routes:
//!
//! ```text
//! # The weather.com code blob
//! route "/" {
//!     prompt postal "Enter your postal code:"
//!     fetch "weather.com/by-postal/{store.postal}"
//!     title "Weather for {store.postal}"
//!     render "Forecast: {data.0.forecast} High {data.0.high}"
//! }
//! route "/about" {
//!     fetch "weather.com/about"
//!     render "{data.0}"
//! }
//! default {
//!     render "No such page."
//! }
//! ```
//!
//! * `route "<pattern>"` — patterns match the path after the domain.
//!   `:name` captures one segment; `*name` captures the rest.
//! * `fetch "<template>"` — request a data blob; templates substitute
//!   `{var}` (path captures) and `{store.key}` (local storage).
//! * `prompt <key> "<question>"` — if local storage lacks `key`, ask the
//!   user and store the answer (the §3.3 dynamic-content hook).
//! * `store <key> "<template>"` — write local storage.
//! * `link "<label>" "<target>"` — offer a hyperlink to another lightweb
//!   path; following it is an ordinary (fixed-shape) page load.
//! * `title` / `render` — produce the page. Render templates additionally
//!   substitute `{data.N}` (fetch N's payload as text) and
//!   `{data.N.field.path}` (JSON member access, array indices allowed).
//!
//! Execution is two-phase so the interpreter stays pure: [`LwScript::plan`]
//! resolves routing, prompts, and fetch paths; the browser performs the
//! network I/O; [`ScriptPlan::render`] turns fetched payloads into the
//! final page.

use lightweb_universe::json::{parse_json, Value};
use std::collections::HashMap;

/// Hard cap on fetches a single route may request. The universe's
/// `fetches_per_page` may be lower; this bound just keeps parsing sane.
pub const MAX_FETCHES_PER_ROUTE: usize = 16;

/// Errors from parsing or executing LWScript.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptError {
    /// Parse failure, with line number.
    Parse {
        /// 1-based source line of the failure.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// No route matched and there is no `default`.
    NoRoute(String),
    /// A template referenced an unknown variable.
    UnknownVar(String),
    /// A template referenced fetch data out of range.
    DataOutOfRange(usize),
    /// A JSON path into fetch data did not resolve.
    BadDataPath(String),
    /// Route requests more fetches than allowed.
    TooManyFetches(usize),
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScriptError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            ScriptError::NoRoute(p) => write!(f, "no route matches '{p}'"),
            ScriptError::UnknownVar(v) => write!(f, "unknown template variable '{v}'"),
            ScriptError::DataOutOfRange(n) => write!(f, "data index {n} out of range"),
            ScriptError::BadDataPath(p) => write!(f, "JSON path '{p}' did not resolve"),
            ScriptError::TooManyFetches(n) => write!(
                f,
                "route requests {n} fetches (max {MAX_FETCHES_PER_ROUTE})"
            ),
        }
    }
}

impl std::error::Error for ScriptError {}

/// One statement inside a route body.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Stmt {
    Fetch(String),
    Prompt { key: String, question: String },
    Store { key: String, template: String },
    Title(String),
    Render(String),
    Link { label: String, target: String },
}

/// A route: pattern plus body.
#[derive(Clone, Debug)]
struct Route {
    pattern: Vec<PatSeg>,
    body: Vec<Stmt>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum PatSeg {
    Literal(String),
    Capture(String),
    Rest(String),
}

/// A parsed LWScript program.
#[derive(Clone, Debug)]
pub struct LwScript {
    routes: Vec<Route>,
    default: Option<Vec<Stmt>>,
}

/// The outcome of the planning phase: what to fetch and how to render.
#[derive(Clone, Debug, PartialEq)]
pub struct ScriptPlan {
    /// Resolved data-blob paths to fetch, in order.
    pub fetches: Vec<String>,
    /// Storage writes to apply (already resolved).
    pub stores: Vec<(String, String)>,
    /// Hyperlinks the page offers: `(label, lightweb path)`. Following one
    /// is the §3.2 "user visits a new page or follows a hyperlink" event —
    /// a fresh fixed-count page load, nothing more.
    pub links: Vec<(String, String)>,
    /// Page title template (data placeholders unresolved).
    title_template: String,
    /// Page body template (data placeholders unresolved).
    render_template: String,
}

/// Parse an LWScript program.
pub fn parse_script(source: &str) -> Result<LwScript, ScriptError> {
    let mut routes = Vec::new();
    let mut default = None;
    let lines: Vec<(usize, &str)> = source.lines().enumerate().collect();
    let mut i = 0;

    while i < lines.len() {
        let (ln, raw) = lines[i];
        i += 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let perr = |message: &str| ScriptError::Parse {
            line: ln + 1,
            message: message.into(),
        };
        if let Some(rest) = line.strip_prefix("route ") {
            let (pattern_str, brace) =
                split_quoted(rest).ok_or_else(|| perr("expected quoted pattern"))?;
            if brace.trim() != "{" {
                return Err(perr("expected '{' after pattern"));
            }
            let body = parse_body(&lines, &mut i)?;
            routes.push(Route {
                pattern: parse_pattern(&pattern_str),
                body,
            });
        } else if line.starts_with("default") {
            if !line.trim_start_matches("default").trim().starts_with('{') {
                return Err(perr("expected '{' after default"));
            }
            let body = parse_body(&lines, &mut i)?;
            if default.replace(body).is_some() {
                return Err(perr("duplicate default block"));
            }
        } else {
            return Err(perr(&format!(
                "expected 'route' or 'default', got '{line}'"
            )));
        }
    }
    Ok(LwScript { routes, default })
}

/// Parse statements until the closing `}` of a block. `i` points at the
/// first body line on entry and one past the `}` on exit.
fn parse_body(lines: &[(usize, &str)], i: &mut usize) -> Result<Vec<Stmt>, ScriptError> {
    let mut body = Vec::new();
    while *i < lines.len() {
        let (ln, raw) = lines[*i];
        *i += 1;
        let line = raw.trim();
        let perr = |message: &str| ScriptError::Parse {
            line: ln + 1,
            message: message.into(),
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "}" {
            return Ok(body);
        }
        if let Some(rest) = line.strip_prefix("fetch ") {
            let (tpl, tail) =
                split_quoted(rest).ok_or_else(|| perr("fetch needs a quoted template"))?;
            ensure_empty(&tail, perr)?;
            body.push(Stmt::Fetch(tpl));
        } else if let Some(rest) = line.strip_prefix("render ") {
            let (tpl, tail) =
                split_quoted(rest).ok_or_else(|| perr("render needs a quoted template"))?;
            ensure_empty(&tail, perr)?;
            body.push(Stmt::Render(tpl));
        } else if let Some(rest) = line.strip_prefix("title ") {
            let (tpl, tail) =
                split_quoted(rest).ok_or_else(|| perr("title needs a quoted template"))?;
            ensure_empty(&tail, perr)?;
            body.push(Stmt::Title(tpl));
        } else if let Some(rest) = line.strip_prefix("prompt ") {
            let rest = rest.trim_start();
            let (key, qrest) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| perr("prompt needs a key and a quoted question"))?;
            validate_key(key).map_err(|m| perr(&m))?;
            let (question, tail) =
                split_quoted(qrest).ok_or_else(|| perr("prompt needs a quoted question"))?;
            ensure_empty(&tail, perr)?;
            body.push(Stmt::Prompt {
                key: key.to_string(),
                question,
            });
        } else if let Some(rest) = line.strip_prefix("link ") {
            let (label, lrest) =
                split_quoted(rest).ok_or_else(|| perr("link needs a quoted label and target"))?;
            let (target, tail) =
                split_quoted(&lrest).ok_or_else(|| perr("link needs a quoted target"))?;
            ensure_empty(&tail, perr)?;
            body.push(Stmt::Link { label, target });
        } else if let Some(rest) = line.strip_prefix("store ") {
            let rest = rest.trim_start();
            let (key, trest) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| perr("store needs a key and a quoted template"))?;
            validate_key(key).map_err(|m| perr(&m))?;
            let (template, tail) =
                split_quoted(trest).ok_or_else(|| perr("store needs a quoted template"))?;
            ensure_empty(&tail, perr)?;
            body.push(Stmt::Store {
                key: key.to_string(),
                template,
            });
        } else {
            return Err(perr(&format!("unknown statement '{line}'")));
        }
    }
    Err(ScriptError::Parse {
        line: lines.len(),
        message: "unterminated block (missing '}')".into(),
    })
}

fn ensure_empty(tail: &str, perr: impl Fn(&str) -> ScriptError) -> Result<(), ScriptError> {
    let t = tail.trim();
    if t.is_empty() || t.starts_with('#') {
        Ok(())
    } else {
        Err(perr(&format!("unexpected trailing '{t}'")))
    }
}

fn validate_key(key: &str) -> Result<(), String> {
    if !key.is_empty()
        && key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        Ok(())
    } else {
        Err(format!("invalid storage key '{key}'"))
    }
}

/// Pull a leading quoted string off `s`, returning (contents, rest).
fn split_quoted(s: &str) -> Option<(String, String)> {
    let s = s.trim_start();
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return None,
    }
    let mut out = String::new();
    for (i, c) in chars {
        match c {
            '"' => return Some((out, s[i + 1..].to_string())),
            c => out.push(c),
        }
    }
    None
}

fn parse_pattern(pattern: &str) -> Vec<PatSeg> {
    pattern
        .split('/')
        .filter(|s| !s.is_empty())
        .map(|seg| {
            if let Some(name) = seg.strip_prefix(':') {
                PatSeg::Capture(name.to_string())
            } else if let Some(name) = seg.strip_prefix('*') {
                PatSeg::Rest(name.to_string())
            } else {
                PatSeg::Literal(seg.to_string())
            }
        })
        .collect()
}

impl LwScript {
    /// Number of routes (excluding default).
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Plan a page view: match `path` (the part after the domain, starting
    /// with `/`), resolve prompts against `storage` via `ask`, and produce
    /// the fetch list and render templates.
    pub fn plan(
        &self,
        path: &str,
        storage: &HashMap<String, String>,
        ask: &mut dyn FnMut(&str) -> String,
    ) -> Result<ScriptPlan, ScriptError> {
        let segs: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
        let (body, vars) = self
            .routes
            .iter()
            .find_map(|r| match_pattern(&r.pattern, &segs).map(|vars| (&r.body, vars)))
            .or_else(|| self.default.as_ref().map(|b| (b, HashMap::new())))
            .ok_or_else(|| ScriptError::NoRoute(path.to_string()))?;

        // Working copy of storage so `prompt`/`store` affect later
        // statements within the same plan.
        let mut store: HashMap<String, String> = storage.clone();
        let mut plan = ScriptPlan {
            fetches: Vec::new(),
            stores: Vec::new(),
            links: Vec::new(),
            title_template: String::new(),
            render_template: String::new(),
        };
        for stmt in body {
            match stmt {
                Stmt::Prompt { key, question } => {
                    if !store.contains_key(key) {
                        let answer = ask(question);
                        store.insert(key.clone(), answer.clone());
                        plan.stores.push((key.clone(), answer));
                    }
                }
                Stmt::Store { key, template } => {
                    let value = substitute(template, &vars, &store, None)?;
                    store.insert(key.clone(), value.clone());
                    plan.stores.push((key.clone(), value));
                }
                Stmt::Fetch(template) => {
                    plan.fetches
                        .push(substitute(template, &vars, &store, None)?);
                }
                Stmt::Title(t) => plan.title_template = substitute_keep_data(t, &vars, &store)?,
                Stmt::Render(t) => plan.render_template = substitute_keep_data(t, &vars, &store)?,
                Stmt::Link { label, target } => {
                    plan.links.push((
                        substitute(label, &vars, &store, None)?,
                        substitute(target, &vars, &store, None)?,
                    ));
                }
            }
        }
        if plan.fetches.len() > MAX_FETCHES_PER_ROUTE {
            return Err(ScriptError::TooManyFetches(plan.fetches.len()));
        }
        Ok(plan)
    }
}

impl ScriptPlan {
    /// Render the final page once the fetches have completed. `data[i]` is
    /// fetch `i`'s payload as UTF-8 text (or `None` if the blob was empty/
    /// missing).
    pub fn render(&self, data: &[Option<String>]) -> Result<String, ScriptError> {
        substitute_data(&self.render_template, data)
    }

    /// Render the page title.
    pub fn render_title(&self, data: &[Option<String>]) -> Result<String, ScriptError> {
        substitute_data(&self.title_template, data)
    }
}

fn match_pattern(pattern: &[PatSeg], segs: &[&str]) -> Option<HashMap<String, String>> {
    let mut vars = HashMap::new();
    let mut i = 0;
    for (pi, pat) in pattern.iter().enumerate() {
        match pat {
            PatSeg::Literal(lit) => {
                if segs.get(i) != Some(&lit.as_str()) {
                    return None;
                }
                i += 1;
            }
            PatSeg::Capture(name) => {
                let seg = segs.get(i)?;
                vars.insert(name.clone(), seg.to_string());
                i += 1;
            }
            PatSeg::Rest(name) => {
                debug_assert_eq!(pi, pattern.len() - 1, "rest capture must be last");
                vars.insert(name.clone(), segs[i..].join("/"));
                return Some(vars);
            }
        }
    }
    (i == segs.len()).then_some(vars)
}

/// Substitute `{var}` and `{store.key}`; `{data...}` is an error unless
/// deferred.
fn substitute(
    template: &str,
    vars: &HashMap<String, String>,
    store: &HashMap<String, String>,
    data: Option<&[Option<String>]>,
) -> Result<String, ScriptError> {
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    while let Some(start) = rest.find('{') {
        out.push_str(&rest[..start]);
        let after = &rest[start + 1..];
        let end = after
            .find('}')
            .ok_or_else(|| ScriptError::UnknownVar(after.to_string()))?;
        let name = &after[..end];
        if let Some(key) = name.strip_prefix("store.") {
            out.push_str(
                store
                    .get(key)
                    .ok_or_else(|| ScriptError::UnknownVar(name.to_string()))?,
            );
        } else if name == "data" || name.starts_with("data.") {
            match data {
                Some(d) => out.push_str(&resolve_data(name, d)?),
                None => return Err(ScriptError::UnknownVar(name.to_string())),
            }
        } else {
            out.push_str(
                vars.get(name)
                    .ok_or_else(|| ScriptError::UnknownVar(name.to_string()))?,
            );
        }
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

/// Substitute vars/store but pass `{data...}` placeholders through for the
/// render phase.
fn substitute_keep_data(
    template: &str,
    vars: &HashMap<String, String>,
    store: &HashMap<String, String>,
) -> Result<String, ScriptError> {
    let mut out = String::with_capacity(template.len());
    let mut rest = template;
    while let Some(start) = rest.find('{') {
        out.push_str(&rest[..start]);
        let after = &rest[start + 1..];
        let end = after
            .find('}')
            .ok_or_else(|| ScriptError::UnknownVar(after.to_string()))?;
        let name = &after[..end];
        if name == "data" || name.starts_with("data.") {
            out.push('{');
            out.push_str(name);
            out.push('}');
        } else if let Some(key) = name.strip_prefix("store.") {
            out.push_str(
                store
                    .get(key)
                    .ok_or_else(|| ScriptError::UnknownVar(name.to_string()))?,
            );
        } else {
            out.push_str(
                vars.get(name)
                    .ok_or_else(|| ScriptError::UnknownVar(name.to_string()))?,
            );
        }
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

fn substitute_data(template: &str, data: &[Option<String>]) -> Result<String, ScriptError> {
    substitute(template, &HashMap::new(), &HashMap::new(), Some(data))
}

/// Resolve `data.N` or `data.N.path.into.json`.
fn resolve_data(name: &str, data: &[Option<String>]) -> Result<String, ScriptError> {
    let mut parts = name.split('.');
    let _data = parts.next();
    let idx: usize = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ScriptError::BadDataPath(name.to_string()))?;
    let payload = data
        .get(idx)
        .ok_or(ScriptError::DataOutOfRange(idx))?
        .as_deref()
        .unwrap_or("");
    let json_path: Vec<&str> = parts.collect();
    if json_path.is_empty() {
        return Ok(payload.to_string());
    }
    let mut value = parse_json(payload).map_err(|_| ScriptError::BadDataPath(name.to_string()))?;
    for seg in json_path {
        value = if let Ok(i) = seg.parse::<usize>() {
            value.at(i).cloned()
        } else {
            value.get(seg).cloned()
        }
        .ok_or_else(|| ScriptError::BadDataPath(name.to_string()))?;
    }
    Ok(match value {
        Value::String(s) => s,
        other => other.to_json(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_prompt(_q: &str) -> String {
        panic!("unexpected prompt")
    }

    #[test]
    fn parse_and_route_literal() {
        let s = parse_script(
            r#"
            route "/" {
                fetch "d.com/home"
                render "home: {data.0}"
            }
            route "/about" {
                render "about"
            }
            "#,
        )
        .unwrap();
        assert_eq!(s.route_count(), 2);
        let st = HashMap::new();
        let plan = s.plan("/", &st, &mut no_prompt).unwrap();
        assert_eq!(plan.fetches, vec!["d.com/home"]);
        let plan2 = s.plan("/about", &st, &mut no_prompt).unwrap();
        assert!(plan2.fetches.is_empty());
        assert_eq!(plan2.render(&[]).unwrap(), "about");
    }

    #[test]
    fn captures_substitute_into_fetches() {
        let s = parse_script(
            r#"
            route "/articles/:year/:slug" {
                fetch "news.com/articles/{year}/{slug}"
                title "Article: {slug}"
                render "{data.0}"
            }
            "#,
        )
        .unwrap();
        let st = HashMap::new();
        let plan = s
            .plan("/articles/2023/uganda", &st, &mut no_prompt)
            .unwrap();
        assert_eq!(plan.fetches, vec!["news.com/articles/2023/uganda"]);
        assert_eq!(plan.render_title(&[]).unwrap(), "Article: uganda");
    }

    #[test]
    fn rest_capture_matches_remainder() {
        let s =
            parse_script("route \"/files/*rest\" {\n fetch \"d.com/{rest}\"\n render \"ok\"\n }")
                .unwrap();
        let st = HashMap::new();
        let plan = s.plan("/files/a/b/c", &st, &mut no_prompt).unwrap();
        assert_eq!(plan.fetches, vec!["d.com/a/b/c"]);
    }

    #[test]
    fn default_route_catches_unmatched() {
        let s = parse_script("route \"/x\" {\n render \"x\"\n }\ndefault {\n render \"404\"\n }")
            .unwrap();
        let st = HashMap::new();
        let plan = s.plan("/nope/nope", &st, &mut no_prompt).unwrap();
        assert_eq!(plan.render(&[]).unwrap(), "404");
    }

    #[test]
    fn no_route_no_default_errors() {
        let s = parse_script("route \"/x\" {\n render \"x\"\n }").unwrap();
        let st = HashMap::new();
        assert_eq!(
            s.plan("/y", &st, &mut no_prompt).unwrap_err(),
            ScriptError::NoRoute("/y".into())
        );
    }

    #[test]
    fn prompt_asks_once_and_stores() {
        let s = parse_script(
            r#"
            route "/" {
                prompt postal "Enter postal code:"
                fetch "weather.com/by-postal/{store.postal}"
                render "{data.0.forecast}"
            }
            "#,
        )
        .unwrap();
        // First visit: storage empty, prompt fires.
        let st = HashMap::new();
        let mut asked = 0;
        let plan = s
            .plan("/", &st, &mut |q| {
                asked += 1;
                assert!(q.contains("postal"));
                "94110".to_string()
            })
            .unwrap();
        assert_eq!(asked, 1);
        assert_eq!(plan.fetches, vec!["weather.com/by-postal/94110"]);
        assert_eq!(
            plan.stores,
            vec![("postal".to_string(), "94110".to_string())]
        );

        // Second visit: storage has the key, no prompt.
        let mut st2 = HashMap::new();
        st2.insert("postal".to_string(), "10001".to_string());
        let plan2 = s.plan("/", &st2, &mut no_prompt).unwrap();
        assert_eq!(plan2.fetches, vec!["weather.com/by-postal/10001"]);
        assert!(plan2.stores.is_empty());
    }

    #[test]
    fn store_statement_resolves_templates() {
        let s = parse_script(
            "route \"/tag/:t\" {\n store last_tag \"{t}\"\n render \"tag {store.last_tag}\"\n }",
        )
        .unwrap();
        let st = HashMap::new();
        let plan = s.plan("/tag/rust", &st, &mut no_prompt).unwrap();
        assert_eq!(
            plan.stores,
            vec![("last_tag".to_string(), "rust".to_string())]
        );
        assert_eq!(plan.render(&[]).unwrap(), "tag rust");
    }

    #[test]
    fn json_data_paths_resolve() {
        let s = parse_script(
            "route \"/\" {\n fetch \"d.com/x\"\n render \"{data.0.headlines.1} high={data.0.temp}\"\n }",
        )
        .unwrap();
        let st = HashMap::new();
        let plan = s.plan("/", &st, &mut no_prompt).unwrap();
        let payload = r#"{"headlines":["first","second"],"temp":72}"#.to_string();
        assert_eq!(plan.render(&[Some(payload)]).unwrap(), "second high=72");
    }

    #[test]
    fn bad_json_path_is_an_error() {
        let s = parse_script("route \"/\" {\n fetch \"d.com/x\"\n render \"{data.0.missing}\"\n }")
            .unwrap();
        let st = HashMap::new();
        let plan = s.plan("/", &st, &mut no_prompt).unwrap();
        assert!(matches!(
            plan.render(&[Some("{}".into())]),
            Err(ScriptError::BadDataPath(_))
        ));
    }

    #[test]
    fn data_out_of_range_is_an_error() {
        let s = parse_script("route \"/\" {\n render \"{data.3}\"\n }").unwrap();
        let st = HashMap::new();
        let plan = s.plan("/", &st, &mut no_prompt).unwrap();
        assert_eq!(
            plan.render(&[]).unwrap_err(),
            ScriptError::DataOutOfRange(3)
        );
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let s = parse_script("route \"/\" {\n fetch \"d.com/{nope}\"\n render \"x\"\n }").unwrap();
        let st = HashMap::new();
        assert!(matches!(
            s.plan("/", &st, &mut no_prompt),
            Err(ScriptError::UnknownVar(_))
        ));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_script("route \"/x\" {\n bogus \"statement\"\n }").unwrap_err();
        assert!(matches!(err, ScriptError::Parse { line: 2, .. }), "{err}");
        let err2 = parse_script("not-a-keyword").unwrap_err();
        assert!(matches!(err2, ScriptError::Parse { line: 1, .. }));
    }

    #[test]
    fn unterminated_block_rejected() {
        assert!(parse_script("route \"/x\" {\n render \"x\"").is_err());
    }

    #[test]
    fn routes_match_in_declaration_order() {
        let s = parse_script(
            "route \"/a/:x\" {\n render \"capture {x}\"\n }\nroute \"/a/b\" {\n render \"literal\"\n }",
        )
        .unwrap();
        let st = HashMap::new();
        // The capture route is declared first and wins.
        let plan = s.plan("/a/b", &st, &mut no_prompt).unwrap();
        assert_eq!(plan.render(&[]).unwrap(), "capture b");
    }

    #[test]
    fn links_resolve_and_surface() {
        let s = parse_script(
            r#"
            route "/story/:id" {
                fetch "news.com/story/{id}"
                link "Next story" "news.com/story/{id}-next"
                link "Home" "news.com/"
                render "{data.0}"
            }
            "#,
        )
        .unwrap();
        let st = HashMap::new();
        let plan = s.plan("/story/42", &st, &mut no_prompt).unwrap();
        assert_eq!(
            plan.links,
            vec![
                (
                    "Next story".to_string(),
                    "news.com/story/42-next".to_string()
                ),
                ("Home".to_string(), "news.com/".to_string()),
            ]
        );
    }

    #[test]
    fn malformed_link_rejected() {
        assert!(parse_script("route \"/\" {\n link \"only-label\"\n }").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = parse_script(
            "# header comment\n\nroute \"/\" {\n # body comment\n render \"ok\"\n }\n",
        )
        .unwrap();
        assert_eq!(s.route_count(), 1);
    }
}
