//! Constant-rate cover traffic: closing the paper's residual timing leak.
//!
//! ZLTP hides *which* page a user fetches but "does not hide the number or
//! timing of client requests" (§2.1), and §3.2 concedes an attacker can
//! "infer some limited information about the user's browsing behavior by
//! the number and timing of their page visits" — the user who fetches a
//! page every five minutes each morning is probably reading the news.
//!
//! The classical fix (and a natural lightweb extension) is to fetch at a
//! **constant rate**: the browser fires one page-load *slot* every fixed
//! interval; a slot carries the oldest queued real navigation if one is
//! waiting, otherwise a cover load — [`crate::LightwebBrowser::browse_cover`]
//! issues the same fixed number of dummy data GETs a real page view would,
//! so the two are indistinguishable on the wire. The price is latency
//! (real visits wait for the next slot) and bandwidth (idle slots still
//! burn a page-load of traffic); [`Pacer::schedule`] makes that trade
//! measurable.

/// One slot in a constant-rate schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PacedSlot {
    /// When the slot fires, seconds from schedule start.
    pub time_s: f64,
    /// `Some(i)` = serves the i-th real visit; `None` = cover load.
    pub real: Option<usize>,
    /// For real visits, how long the navigation waited in the queue.
    pub delay_s: f64,
}

/// A constant-rate page-load scheduler.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pacer {
    /// Seconds between consecutive page-load slots.
    pub interval_s: f64,
}

impl Pacer {
    /// A pacer firing every `interval_s` seconds.
    pub fn new(interval_s: f64) -> Self {
        assert!(interval_s > 0.0, "interval must be positive");
        Self { interval_s }
    }

    /// Build the slot schedule for `[0, horizon_s)` given the user's real
    /// navigation times (sorted ascending). Each slot serves the oldest
    /// real visit that has already arrived, FIFO; idle slots are cover.
    ///
    /// The returned schedule's *shape* (slot count and spacing) depends
    /// only on `horizon_s` and the interval — never on `visit_times` —
    /// which is the whole point.
    pub fn schedule(&self, visit_times: &[f64], horizon_s: f64) -> Vec<PacedSlot> {
        debug_assert!(
            visit_times.windows(2).all(|w| w[0] <= w[1]),
            "visit times must be sorted"
        );
        let slots = (horizon_s / self.interval_s).ceil() as usize;
        let mut out = Vec::with_capacity(slots);
        let mut next_visit = 0usize;
        let queue_gauge = lightweb_telemetry::registry().gauge("browser.pacer.queue.depth");
        let delay_hist = lightweb_telemetry::registry().histogram("browser.pacer.delay.ns");
        for s in 0..slots {
            let t = s as f64 * self.interval_s;
            // Queue depth at this slot: navigations that have arrived but
            // not yet been served (simulated time).
            let arrived = visit_times[next_visit..]
                .iter()
                .take_while(|&&v| v <= t)
                .count();
            queue_gauge.set(arrived as i64);
            let real = if next_visit < visit_times.len() && visit_times[next_visit] <= t {
                let idx = next_visit;
                next_visit += 1;
                Some(idx)
            } else {
                None
            };
            lightweb_telemetry::counter!("browser.pacer.slots").inc();
            if real.is_none() {
                lightweb_telemetry::counter!("browser.pacer.cover").inc();
            }
            let delay_s = real.map(|i| t - visit_times[i]).unwrap_or(0.0);
            if real.is_some() {
                // Simulated queue wait, recorded in ns to match the
                // duration-histogram convention.
                delay_hist.record((delay_s * 1e9) as u64);
            }
            out.push(PacedSlot {
                time_s: t,
                real,
                delay_s,
            });
        }
        out
    }

    /// The firing instants of this pacer in `[0, horizon_s)`, offset by
    /// `phase_s` — the pure think-time model, with no visit queue and no
    /// telemetry. Non-interactive drivers (the open-loop load harness)
    /// use this to give each simulated client the same constant-rate
    /// cadence the real browser enforces; distinct phases per client make
    /// a fleet aggregate to a smooth fixed offered rate instead of
    /// synchronized bursts.
    pub fn slot_times(&self, phase_s: f64, horizon_s: f64) -> Vec<f64> {
        assert!(phase_s >= 0.0, "phase must be non-negative");
        let mut out = Vec::new();
        let mut k = 0u64;
        loop {
            let t = phase_s + k as f64 * self.interval_s;
            if t >= horizon_s {
                return out;
            }
            out.push(t);
            k += 1;
        }
    }

    /// Fraction of slots carrying real visits (the bandwidth efficiency of
    /// the cover scheme).
    pub fn utilization(schedule: &[PacedSlot]) -> f64 {
        if schedule.is_empty() {
            return 0.0;
        }
        schedule.iter().filter(|s| s.real.is_some()).count() as f64 / schedule.len() as f64
    }

    /// Mean queueing delay of the real visits in a schedule.
    pub fn mean_delay(schedule: &[PacedSlot]) -> f64 {
        let reals: Vec<f64> = schedule
            .iter()
            .filter(|s| s.real.is_some())
            .map(|s| s.delay_s)
            .collect();
        if reals.is_empty() {
            0.0
        } else {
            reals.iter().sum::<f64>() / reals.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_count_depends_only_on_horizon() {
        let pacer = Pacer::new(10.0);
        let a = pacer.schedule(&[], 100.0);
        let b = pacer.schedule(&[1.0, 2.0, 3.0, 50.0], 100.0);
        let c = pacer.schedule(&[99.0], 100.0);
        assert_eq!(a.len(), 10);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.len(), c.len());
        // Identical firing times — the observable.
        let times = |s: &[PacedSlot]| s.iter().map(|x| x.time_s).collect::<Vec<_>>();
        assert_eq!(times(&a), times(&b));
        assert_eq!(times(&a), times(&c));
    }

    #[test]
    fn every_arrived_visit_is_served_fifo() {
        let pacer = Pacer::new(5.0);
        let visits = [0.0, 1.0, 12.0, 12.5];
        let sched = pacer.schedule(&visits, 60.0);
        let served: Vec<usize> = sched.iter().filter_map(|s| s.real).collect();
        assert_eq!(served, vec![0, 1, 2, 3], "all served, in order");
    }

    #[test]
    fn delays_are_queue_waits() {
        let pacer = Pacer::new(10.0);
        // Two visits arrive together at t=1: first served at t=10 (delay
        // 9), second at t=20 (delay 19).
        let sched = pacer.schedule(&[1.0, 1.0], 40.0);
        let delays: Vec<f64> = sched
            .iter()
            .filter(|s| s.real.is_some())
            .map(|s| s.delay_s)
            .collect();
        assert_eq!(delays, vec![9.0, 19.0]);
        assert!((Pacer::mean_delay(&sched) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_reflects_load() {
        let pacer = Pacer::new(10.0);
        let idle = pacer.schedule(&[], 100.0);
        assert_eq!(Pacer::utilization(&idle), 0.0);
        let busy = pacer.schedule(&[0.0, 5.0, 15.0, 25.0, 35.0], 100.0);
        assert!((Pacer::utilization(&busy) - 0.5).abs() < 1e-9);
        assert_eq!(Pacer::utilization(&[]), 0.0);
    }

    #[test]
    fn visit_at_slot_boundary_is_served_in_that_slot() {
        let pacer = Pacer::new(10.0);
        let sched = pacer.schedule(&[20.0], 40.0);
        let slot = sched.iter().find(|s| s.real == Some(0)).unwrap();
        assert_eq!(slot.time_s, 20.0);
        assert_eq!(slot.delay_s, 0.0);
    }

    #[test]
    fn slot_times_match_schedule_shape_and_stagger() {
        let pacer = Pacer::new(10.0);
        // Zero phase reproduces the schedule()'s firing times exactly.
        let times = pacer.slot_times(0.0, 100.0);
        let sched: Vec<f64> = pacer
            .schedule(&[], 100.0)
            .iter()
            .map(|s| s.time_s)
            .collect();
        assert_eq!(times, sched);
        // A staggered fleet interleaves without collisions: 4 clients at
        // interval 10 s, phases 0/2.5/5/7.5, aggregate one slot per 2.5 s.
        let mut all: Vec<f64> = (0..4)
            .flat_map(|i| pacer.slot_times(i as f64 * 2.5, 40.0))
            .collect();
        all.sort_by(f64::total_cmp);
        assert_eq!(all.len(), 16);
        for (k, t) in all.iter().enumerate() {
            assert!((t - k as f64 * 2.5).abs() < 1e-9, "slot {k}: {t}");
        }
        // Phase at or past the horizon yields an empty schedule.
        assert!(pacer.slot_times(100.0, 100.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_interval_rejected() {
        Pacer::new(0.0);
    }
}
