//! The lightweb browser engine.
//!
//! Owns the two ZLTP session pairs (code + data), the code-blob cache, the
//! domain-separated local storage, and — critically for the paper's threat
//! model — the **fixed fetch schedule**: every page view issues exactly
//! `fetches_per_page` data GETs, padding with dummy queries to uniformly
//! random slots when the page needs fewer. A network attacker therefore
//! learns only (a) which universe the user talks to, (b) when a code blob
//! was fetched (new/evicted domain), and (c) when a page was visited —
//! the §3.2 leakage inventory, nothing more.

use crate::lwscript::{parse_script, LwScript, ScriptError};
use crate::storage::LocalStorage;
use lightweb_core::{SessionStats, TwoServerZltp, ZltpError};
use lightweb_telemetry::trace::{TraceContext, TraceSpan};
use lightweb_universe::access::ClientAccessPass;
use lightweb_universe::blob::{continuation_path, decode_blob, BlobError};
use rand::Rng;
use std::collections::HashMap;
use std::io::{Read, Write};

/// Errors from a browsing session.
#[derive(Debug)]
pub enum BrowserError {
    /// Transport / protocol failure.
    Zltp(ZltpError),
    /// The path has no valid domain component.
    BadPath(String),
    /// The domain has no published code blob.
    NoCode(String),
    /// The domain's code failed to parse or run.
    Script(ScriptError),
    /// A data blob was malformed.
    Blob(BlobError),
    /// The page wants more fetches than the universe's fixed budget.
    FetchBudget {
        /// Fetches the page requested (chained parts included).
        wanted: usize,
        /// The universe's fixed per-page budget.
        budget: usize,
    },
    /// A protected blob could not be decrypted with the user's pass.
    Access(String),
}

impl std::fmt::Display for BrowserError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrowserError::Zltp(e) => write!(f, "ZLTP: {e}"),
            BrowserError::BadPath(p) => write!(f, "invalid lightweb path '{p}'"),
            BrowserError::NoCode(d) => write!(f, "no code blob published for domain '{d}'"),
            BrowserError::Script(e) => write!(f, "page code: {e}"),
            BrowserError::Blob(e) => write!(f, "data blob: {e}"),
            BrowserError::FetchBudget { wanted, budget } => {
                write!(
                    f,
                    "page wants {wanted} fetches; universe budget is {budget}"
                )
            }
            BrowserError::Access(m) => write!(f, "access control: {m}"),
        }
    }
}

impl std::error::Error for BrowserError {}

impl From<ZltpError> for BrowserError {
    fn from(e: ZltpError) -> Self {
        BrowserError::Zltp(e)
    }
}

impl From<ScriptError> for BrowserError {
    fn from(e: ScriptError) -> Self {
        BrowserError::Script(e)
    }
}

impl From<BlobError> for BrowserError {
    fn from(e: BlobError) -> Self {
        BrowserError::Blob(e)
    }
}

/// A rendered page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RenderedPage {
    /// Page title.
    pub title: String,
    /// Rendered body text.
    pub body: String,
    /// Hyperlinks the page offers (`(label, path)`); navigation targets
    /// for the next `browse` call.
    pub links: Vec<(String, String)>,
    /// Real data fetches the page used (≤ the fixed budget).
    pub real_fetches: usize,
    /// Dummy fetches added to reach the fixed budget.
    pub dummy_fetches: usize,
}

/// What the network observed for one page view — the browser's own record
/// of its traffic shape, used by tests and the traffic-analysis experiment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PageVisit {
    /// The visited path (client-side only, never sent anywhere).
    pub path: String,
    /// Code-blob GETs issued (0 on cache hit, 1 on miss).
    pub code_fetches: usize,
    /// Data-blob GETs issued (always the fixed budget).
    pub data_fetches: usize,
}

/// The lightweb browser.
pub struct LightwebBrowser<S: Read + Write> {
    code_session: TwoServerZltp<S>,
    data_session: TwoServerZltp<S>,
    code_cache: HashMap<String, LwScript>,
    storage: LocalStorage,
    passes: HashMap<String, ClientAccessPass>,
    prompt_handler: Box<dyn FnMut(&str) -> String + Send>,
    fetches_per_page: usize,
    max_chain_parts: usize,
    visits: Vec<PageVisit>,
}

impl<S: Read + Write> LightwebBrowser<S> {
    /// Connect a browser: `code` and `data` are the stream pairs to the
    /// CDN's code and data universes; `fetches_per_page` is the universe's
    /// fixed per-page budget and `max_chain_parts` its chaining cap.
    pub fn connect(
        code: (S, S),
        data: (S, S),
        fetches_per_page: usize,
        max_chain_parts: usize,
    ) -> Result<Self, BrowserError> {
        assert!(
            fetches_per_page >= 1,
            "budget must allow at least one fetch"
        );
        Ok(Self {
            code_session: TwoServerZltp::connect(code.0, code.1)?,
            data_session: TwoServerZltp::connect(data.0, data.1)?,
            code_cache: HashMap::new(),
            storage: LocalStorage::new(),
            passes: HashMap::new(),
            prompt_handler: Box::new(|_q| String::new()),
            fetches_per_page,
            max_chain_parts,
            visits: Vec::new(),
        })
    }

    /// Install the user-interaction handler for `prompt` statements.
    pub fn set_prompt_handler(&mut self, handler: impl FnMut(&str) -> String + Send + 'static) {
        self.prompt_handler = Box::new(handler);
    }

    /// Install an access pass (subscription keys) for a domain (§3.3).
    pub fn install_pass(&mut self, domain: &str, pass: ClientAccessPass) {
        self.passes.insert(domain.to_string(), pass);
    }

    /// Local storage (inspection / tests).
    pub fn storage(&self) -> &LocalStorage {
        &self.storage
    }

    /// The traffic log: one entry per page view.
    pub fn visits(&self) -> &[PageVisit] {
        &self.visits
    }

    /// Combined data-session traffic counters.
    pub fn data_stats(&self) -> SessionStats {
        self.data_session.stats()
    }

    /// Combined code-session traffic counters.
    pub fn code_stats(&self) -> SessionStats {
        self.code_session.stats()
    }

    /// Evict a domain's code blob from the cache (e.g. the publisher
    /// shipped an update; §3.2 expects this "once every few days at most").
    pub fn evict_code(&mut self, domain: &str) {
        self.code_cache.remove(domain);
    }

    /// Issue one *cover* page load: exactly the universe's fixed number of
    /// dummy data GETs, no code fetch — indistinguishable on the wire from
    /// a real visit to an already-cached domain. Used by the constant-rate
    /// scheduler ([`crate::pacer::Pacer`]) to fill idle slots so that
    /// visit *timing* stops carrying information (§2.1/§3.2's residual
    /// leak).
    pub fn browse_cover(&mut self) -> Result<(), BrowserError> {
        let _page = lightweb_telemetry::span!("browser.page.ns");
        let page_span = TraceSpan::root("browser.page");
        let page_ctx = page_span.ctx();
        lightweb_telemetry::counter!("browser.page.cover").inc();
        let mut rng = rand::thread_rng();
        let domain_size = 1u64 << self.data_session_params_bits();
        for _ in 0..self.fetches_per_page {
            let slot = rng.gen_range(0..domain_size);
            let _ = self
                .data_session
                .private_get_slot_traced(slot, Some(&page_ctx))?;
            lightweb_telemetry::counter!("browser.fetch.dummy").inc();
        }
        self.visits.push(PageVisit {
            path: "about:cover".to_string(),
            code_fetches: 0,
            data_fetches: self.fetches_per_page,
        });
        Ok(())
    }

    /// Browse to a lightweb path and render the page.
    pub fn browse(&mut self, path: &str) -> Result<RenderedPage, BrowserError> {
        let _page = lightweb_telemetry::span!("browser.page.ns");
        // One trace per page view: every code/data/dummy GET below hangs
        // off this root, so a trace tree shows the page's full fan-out.
        let page_span = TraceSpan::root("browser.page");
        let page_ctx = page_span.ctx();
        lightweb_telemetry::counter!("browser.page.real").inc();
        let domain = path
            .split('/')
            .next()
            .filter(|d| d.contains('.'))
            .ok_or_else(|| BrowserError::BadPath(path.to_string()))?
            .to_string();
        let sub_path = &path[domain.len()..];
        let sub_path = if sub_path.is_empty() { "/" } else { sub_path };

        // --- 1. Code blob (cached aggressively; §3.2) ---
        let mut code_fetches = 0;
        if !self.code_cache.contains_key(&domain) {
            code_fetches = 1;
            lightweb_telemetry::counter!("browser.fetch.code").inc();
            let blob = self
                .code_session
                .private_get_traced(&domain, Some(&page_ctx))?;
            let (_, payload) = decode_blob(&blob)?;
            if payload.is_empty() {
                return Err(BrowserError::NoCode(domain.clone()));
            }
            let text = String::from_utf8(payload.to_vec())
                .map_err(|_| BrowserError::NoCode(domain.clone()))?;
            let script = parse_script(&text)?;
            self.code_cache.insert(domain.clone(), script);
        }
        let script = self.code_cache.get(&domain).expect("just inserted").clone();

        // --- 2. Run the page code against path + local state ---
        let view = self.storage.domain_view(&domain);
        let handler = &mut self.prompt_handler;
        let plan = script.plan(sub_path, &view, &mut |q| handler(q))?;
        for (k, v) in &plan.stores {
            self.storage.set(&domain, k, v);
        }
        if plan.fetches.len() > self.fetches_per_page {
            return Err(BrowserError::FetchBudget {
                wanted: plan.fetches.len(),
                budget: self.fetches_per_page,
            });
        }

        // --- 3. Data fetches, chained parts included, padded to budget ---
        let mut data_fetches = 0usize;
        let mut payloads: Vec<Option<String>> = Vec::with_capacity(plan.fetches.len());
        for fetch_path in &plan.fetches {
            let value = self.fetch_chain(fetch_path, &mut data_fetches, &page_ctx)?;
            let value = match (&value, self.passes.get(&domain)) {
                (Some(v), Some(pass)) => Some(
                    pass.open(fetch_path, v)
                        .map_err(|e| BrowserError::Access(e.to_string()))?,
                ),
                (Some(v), None) => Some(v.clone()),
                (None, _) => None,
            };
            payloads.push(value.map(|v| String::from_utf8_lossy(&v).into_owned()));
        }
        if data_fetches > self.fetches_per_page {
            return Err(BrowserError::FetchBudget {
                wanted: data_fetches,
                budget: self.fetches_per_page,
            });
        }
        // Dummy padding: uniformly random slots, indistinguishable from
        // real queries by construction of the PIR scheme.
        let real = data_fetches;
        lightweb_telemetry::counter!("browser.fetch.real").add(real as u64);
        let mut rng = rand::thread_rng();
        let domain_size = 1u64 << self.data_session_params_bits();
        while data_fetches < self.fetches_per_page {
            let slot = rng.gen_range(0..domain_size);
            let _ = self
                .data_session
                .private_get_slot_traced(slot, Some(&page_ctx))?;
            data_fetches += 1;
            lightweb_telemetry::counter!("browser.fetch.dummy").inc();
        }

        // --- 4. Render ---
        let body = plan.render(&payloads)?;
        let title = plan.render_title(&payloads)?;
        self.visits.push(PageVisit {
            path: path.to_string(),
            code_fetches,
            data_fetches,
        });
        Ok(RenderedPage {
            title,
            body,
            links: plan.links.clone(),
            real_fetches: real,
            dummy_fetches: self.fetches_per_page - real,
        })
    }

    fn data_session_params_bits(&self) -> u32 {
        // The data universe's slot-domain bits, for dummy-slot sampling.
        self.data_session.params().domain_bits()
    }

    /// Fetch a possibly-chained value, spending budget per part. Returns
    /// `None` for an absent value (all-zero blob decodes to empty payload
    /// with no continuation).
    fn fetch_chain(
        &mut self,
        path: &str,
        fetch_count: &mut usize,
        page_ctx: &TraceContext,
    ) -> Result<Option<Vec<u8>>, BrowserError> {
        let mut assembled = Vec::new();
        for part in 0..self.max_chain_parts {
            let part_path = if part == 0 {
                path.to_string()
            } else {
                continuation_path(path, part)
            };
            let blob = self
                .data_session
                .private_get_traced(&part_path, Some(page_ctx))?;
            *fetch_count += 1;
            let (header, payload) = decode_blob(&blob)?;
            if part == 0 && header.payload_len == 0 && !header.has_next {
                // Absent key: servers return the zero blob.
                return Ok(None);
            }
            assembled.extend_from_slice(payload);
            if !header.has_next {
                return Ok(Some(assembled));
            }
        }
        Err(BrowserError::Blob(BlobError::Corrupt(format!(
            "chain at '{path}' exceeds {} parts",
            self.max_chain_parts
        ))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightweb_universe::access::AccessKeyring;
    use lightweb_universe::json::Value;
    use lightweb_universe::{Universe, UniverseConfig};

    fn news_universe() -> Universe {
        let u = Universe::new(UniverseConfig::small_test("cdn")).unwrap();
        u.register_domain("news.com", "News").unwrap();
        u.publish_code(
            "News",
            "news.com",
            r#"
            route "/" {
                fetch "news.com/frontpage"
                title "News"
                render "Front: {data.0.lead}"
            }
            route "/articles/:slug" {
                fetch "news.com/articles/{slug}"
                title "{slug}"
                render "{data.0.body}"
            }
            default {
                render "not found"
            }
            "#,
        )
        .unwrap();
        u.publish_json(
            "News",
            "news.com/frontpage",
            &Value::object([("lead", "Big story".into())]),
        )
        .unwrap();
        u.publish_json(
            "News",
            "news.com/articles/uganda",
            &Value::object([("body", "Article text about Uganda.".into())]),
        )
        .unwrap();
        u
    }

    fn browser_for(u: &Universe) -> LightwebBrowser<lightweb_core::MemDuplex> {
        LightwebBrowser::connect(
            u.connect_code(),
            u.connect_data(),
            u.config().fetches_per_page,
            u.config().max_chain_parts,
        )
        .unwrap()
    }

    #[test]
    fn browse_renders_pages() {
        let u = news_universe();
        let mut b = browser_for(&u);
        let page = b.browse("news.com/").unwrap();
        assert_eq!(page.title, "News");
        assert_eq!(page.body, "Front: Big story");
        let article = b.browse("news.com/articles/uganda").unwrap();
        assert_eq!(article.title, "uganda");
        assert!(article.body.contains("Uganda"));
        let missing = b.browse("news.com/no/such/page").unwrap();
        assert_eq!(missing.body, "not found");
    }

    #[test]
    fn every_page_view_issues_exactly_the_fixed_fetch_count() {
        let u = news_universe();
        let budget = u.config().fetches_per_page;
        let mut b = browser_for(&u);
        b.browse("news.com/").unwrap();
        b.browse("news.com/articles/uganda").unwrap();
        b.browse("news.com/no/such/page").unwrap(); // zero real fetches
        for visit in b.visits() {
            assert_eq!(visit.data_fetches, budget, "visit {:?}", visit.path);
        }
        // And the session-level request counter agrees: 3 pages × budget.
        assert_eq!(b.data_stats().requests, (3 * budget) as u64);
    }

    #[test]
    fn code_blob_is_cached_after_first_visit() {
        let u = news_universe();
        let mut b = browser_for(&u);
        b.browse("news.com/").unwrap();
        b.browse("news.com/articles/uganda").unwrap();
        let visits = b.visits();
        assert_eq!(visits[0].code_fetches, 1);
        assert_eq!(visits[1].code_fetches, 0, "cache miss on second visit");
        assert_eq!(b.code_stats().requests, 1);
        // Eviction forces a refetch.
        b.evict_code("news.com");
        b.browse("news.com/").unwrap();
        assert_eq!(b.visits()[2].code_fetches, 1);
    }

    #[test]
    fn unknown_domain_reports_no_code() {
        let u = news_universe();
        let mut b = browser_for(&u);
        assert!(matches!(
            b.browse("ghost.com/x"),
            Err(BrowserError::NoCode(d)) if d == "ghost.com"
        ));
    }

    #[test]
    fn bad_path_rejected() {
        let u = news_universe();
        let mut b = browser_for(&u);
        assert!(matches!(
            b.browse("nodomain"),
            Err(BrowserError::BadPath(_))
        ));
    }

    #[test]
    fn prompt_flow_personalizes_content() {
        let u = Universe::new(UniverseConfig::small_test("cdn")).unwrap();
        u.register_domain("weather.com", "Wx").unwrap();
        u.publish_code(
            "Wx",
            "weather.com",
            r#"
            route "/" {
                prompt postal "Enter postal code:"
                fetch "weather.com/by-postal/{store.postal}"
                render "Forecast: {data.0.forecast}"
            }
            "#,
        )
        .unwrap();
        u.publish_json(
            "Wx",
            "weather.com/by-postal/94110",
            &Value::object([("forecast", "fog".into())]),
        )
        .unwrap();

        let mut b = browser_for(&u);
        b.set_prompt_handler(|_q| "94110".to_string());
        let page = b.browse("weather.com/").unwrap();
        assert_eq!(page.body, "Forecast: fog");
        assert_eq!(b.storage().get("weather.com", "postal"), Some("94110"));
        // Second visit uses the stored code without prompting.
        b.set_prompt_handler(|_q| panic!("should not prompt again"));
        let page2 = b.browse("weather.com/").unwrap();
        assert_eq!(page2.body, "Forecast: fog");
    }

    #[test]
    fn chained_values_consume_budget() {
        let u = Universe::new(UniverseConfig::small_test("cdn")).unwrap();
        u.register_domain("long.com", "L").unwrap();
        u.publish_code(
            "L",
            "long.com",
            "route \"/\" {\n fetch \"long.com/epic\"\n render \"{data.0}\"\n }",
        )
        .unwrap();
        let long_text = "A".repeat(2500); // 3 parts in a 1 KiB universe
        u.publish_data("L", "long.com/epic", long_text.as_bytes())
            .unwrap();

        let mut b = browser_for(&u);
        let page = b.browse("long.com/").unwrap();
        assert_eq!(page.body.len(), 2500);
        assert_eq!(page.real_fetches, 3);
        assert_eq!(page.dummy_fetches, u.config().fetches_per_page - 3);
    }

    #[test]
    fn paywalled_content_requires_a_pass() {
        let u = Universe::new(UniverseConfig::small_test("cdn")).unwrap();
        u.register_domain("paid.com", "Paid").unwrap();
        u.publish_code(
            "Paid",
            "paid.com",
            "route \"/premium\" {\n fetch \"paid.com/premium-data\"\n render \"{data.0}\"\n }",
        )
        .unwrap();
        let ring = AccessKeyring::new();
        let protected = ring.protect("paid.com/premium-data", b"exclusive scoop");
        u.publish_data("Paid", "paid.com/premium-data", &protected)
            .unwrap();

        // Without a pass the browser sees ciphertext and has no pass
        // installed — it renders the raw (garbled) payload.
        let mut anon = browser_for(&u);
        let page = anon.browse("paid.com/premium").unwrap();
        assert!(!page.body.contains("exclusive scoop"));

        // With the pass, plaintext.
        let mut subscriber = browser_for(&u);
        subscriber.install_pass("paid.com", ring.issue_pass(0));
        let page = subscriber.browse("paid.com/premium").unwrap();
        assert_eq!(page.body, "exclusive scoop");
    }

    #[test]
    fn revoked_pass_fails_after_rotation() {
        let u = Universe::new(UniverseConfig::small_test("cdn")).unwrap();
        u.register_domain("paid.com", "Paid").unwrap();
        u.publish_code(
            "Paid",
            "paid.com",
            "route \"/p\" {\n fetch \"paid.com/d\"\n render \"{data.0}\"\n }",
        )
        .unwrap();
        let mut ring = AccessKeyring::new();
        let old_pass = ring.issue_pass(0);
        ring.rotate();
        u.publish_data("Paid", "paid.com/d", &ring.protect("paid.com/d", b"v2"))
            .unwrap();

        let mut b = browser_for(&u);
        b.install_pass("paid.com", old_pass);
        assert!(matches!(
            b.browse("paid.com/p"),
            Err(BrowserError::Access(_))
        ));
    }

    #[test]
    fn following_links_navigates_like_a_user() {
        let u = Universe::new(UniverseConfig::small_test("cdn")).unwrap();
        u.register_domain("serial.com", "S").unwrap();
        u.publish_code(
            "S",
            "serial.com",
            r#"
            route "/part/:n" {
                fetch "serial.com/part/{n}"
                link "Next" "serial.com/part/{n}x"
                render "{data.0}"
            }
            "#,
        )
        .unwrap();
        u.publish_data("S", "serial.com/part/1", b"chapter one")
            .unwrap();
        u.publish_data("S", "serial.com/part/1x", b"chapter two")
            .unwrap();

        let mut b = browser_for(&u);
        let page = b.browse("serial.com/part/1").unwrap();
        assert_eq!(page.body, "chapter one");
        let (label, target) = &page.links[0];
        assert_eq!(label, "Next");
        let next = b.browse(target).unwrap();
        assert_eq!(next.body, "chapter two");
        // Both hops had the identical traffic shape.
        assert_eq!(b.visits()[0].data_fetches, b.visits()[1].data_fetches);
    }

    #[test]
    fn cover_loads_match_cached_visits_on_the_wire() {
        let u = news_universe();
        // Browser A: warms the code cache, then one real visit.
        let mut a = browser_for(&u);
        a.browse("news.com/").unwrap();
        let before = a.data_stats();
        a.browse("news.com/articles/uganda").unwrap();
        let real_bytes = (
            a.data_stats().bytes_sent - before.bytes_sent,
            a.data_stats().bytes_received - before.bytes_received,
        );

        // Browser B: same warmup, then one cover load.
        let mut b = browser_for(&u);
        b.browse("news.com/").unwrap();
        let before = b.data_stats();
        b.browse_cover().unwrap();
        let cover_bytes = (
            b.data_stats().bytes_sent - before.bytes_sent,
            b.data_stats().bytes_received - before.bytes_received,
        );

        assert_eq!(real_bytes, cover_bytes, "cover load is distinguishable");
        assert_eq!(b.visits()[1].data_fetches, u.config().fetches_per_page);
        assert_eq!(b.visits()[1].code_fetches, 0);
    }

    #[test]
    fn paced_session_shape_is_visit_independent() {
        use crate::pacer::Pacer;
        let u = news_universe();
        let pacer = Pacer::new(1.0);

        // Two very different browsing patterns over the same horizon.
        let run = |visits: &[f64]| {
            let mut b = browser_for(&u);
            b.browse("news.com/").unwrap(); // cache warmup (code fetch)
            let schedule = pacer.schedule(visits, 6.0);
            for slot in &schedule {
                match slot.real {
                    Some(_) => {
                        b.browse("news.com/articles/uganda").unwrap();
                    }
                    None => b.browse_cover().unwrap(),
                }
            }
            (b.data_stats(), schedule.len())
        };
        let (busy, n1) = run(&[0.0, 0.5, 1.0, 2.0, 3.0]);
        let (idle, n2) = run(&[]);
        assert_eq!(n1, n2);
        assert_eq!(busy.requests, idle.requests);
        assert_eq!(busy.bytes_sent, idle.bytes_sent);
        assert_eq!(busy.bytes_received, idle.bytes_received);
    }

    #[test]
    fn over_budget_page_rejected() {
        let u = Universe::new(UniverseConfig::small_test("cdn")).unwrap();
        u.register_domain("greedy.com", "G").unwrap();
        let fetches: String = (0..6)
            .map(|i| format!(" fetch \"greedy.com/d{i}\"\n"))
            .collect();
        u.publish_code(
            "G",
            "greedy.com",
            &format!("route \"/\" {{\n{fetches} render \"x\"\n }}"),
        )
        .unwrap();
        let mut b = browser_for(&u);
        assert!(matches!(
            b.browse("greedy.com/"),
            Err(BrowserError::FetchBudget {
                wanted: 6,
                budget: 5
            })
        ));
    }
}
