//! Regression coverage for the workload generators the load harness
//! feeds on: fixed-seed determinism (a sweep must be replayable
//! bit-for-bit from its recorded seed) and distribution sanity (the
//! Zipf sampler actually produces the skew its exponent promises).

use lightweb_workload::{ArrivalProcess, OpenLoopPlan, PageSource, UserModel, Zipf};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn zipf_sampling_is_deterministic_for_a_fixed_seed() {
    let zipf = Zipf::new(100, 1.0);
    let draw = |seed: u64| -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..1000).map(|_| zipf.sample(&mut rng)).collect()
    };
    assert_eq!(draw(7), draw(7), "same seed must replay the same ranks");
    assert_ne!(draw(7), draw(8), "different seeds should diverge");
}

#[test]
fn trace_generation_is_deterministic_for_a_fixed_seed() {
    let model = UserModel::default();
    let a = model.generate_trace(200, 3, 99);
    let b = model.generate_trace(200, 3, 99);
    assert_eq!(a.visits, b.visits, "same seed must replay the same trace");
    assert_eq!(a.gets_per_page, b.gets_per_page);
    let c = model.generate_trace(200, 3, 100);
    assert_ne!(a.visits, c.visits, "different seeds should diverge");
}

#[test]
fn head_rank_frequency_matches_the_zipf_exponent() {
    // For s = 1.0 over n = 100 ranks, pmf(0) = 1/H_100 ≈ 0.1928. A
    // sampler that ignored the exponent (uniform: 0.01) or overshot it
    // lands far outside the ±15% band at this sample size.
    let n = 100;
    let zipf = Zipf::new(n, 1.0);
    let expected = zipf.pmf(0);
    assert!((0.18..0.21).contains(&expected), "pmf(0) = {expected}");

    let mut rng = StdRng::seed_from_u64(4242);
    let draws = 50_000;
    let head = (0..draws).filter(|_| zipf.sample(&mut rng) == 0).count();
    let observed = head as f64 / draws as f64;
    let rel = (observed - expected).abs() / expected;
    assert!(
        rel < 0.15,
        "head-rank frequency {observed:.4} deviates {rel:.1}% from pmf(0) {expected:.4}"
    );
}

#[test]
fn open_loop_plans_draw_pages_with_the_same_skew() {
    // The open-loop planner routes page choice through the same Zipf
    // sampler; its head-rank share must show the same skew.
    let zipf = Zipf::new(100, 1.0);
    let plan = OpenLoopPlan::generate(
        ArrivalProcess::Poisson { rate_per_s: 2000.0 },
        PageSource::Zipf(&zipf),
        10.0,
        1,
        31,
    );
    let head = plan.views.iter().filter(|v| v.page_rank == 0).count();
    let observed = head as f64 / plan.views.len() as f64;
    let rel = (observed - zipf.pmf(0)).abs() / zipf.pmf(0);
    assert!(
        rel < 0.15,
        "planner head-rank share {observed:.4} deviates {rel:.1}% from pmf(0)"
    );
}
