//! Open-loop arrival schedules for the load harness.
//!
//! Closed-loop drivers (a fixed pool of clients, each issuing its next
//! request only after the previous one returns) cannot see queueing
//! collapse: when the server slows down, the offered load politely slows
//! with it, and measured latency stays flat while real users would be
//! stacking up behind the queue. The load harness therefore generates
//! arrivals *open loop*: request start times are fixed in advance by an
//! arrival process, independent of how the server is coping, and each
//! request's latency is measured from its **intended** start time — the
//! coordinated-omission correction.
//!
//! [`ArrivalProcess`] generates intended start times; [`OpenLoopPlan`]
//! joins them with page choice from this crate's Zipf/trace generators
//! ([`crate::zipf::Zipf`], [`crate::trace::BrowsingTrace`]) into a
//! concrete per-page-view plan a client fleet can execute.

use crate::trace::BrowsingTrace;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An open-loop arrival process: intended page-view start times over a
/// horizon, independent of service times.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: exponential inter-arrival gaps at the given
    /// mean rate, the classic model of many independent users.
    Poisson {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// Deterministic arrivals, one every `1/rate_per_s` seconds — the
    /// aggregate shape of a fleet of constant-rate paced browsers.
    FixedRate {
        /// Arrivals per second.
        rate_per_s: f64,
    },
}

impl ArrivalProcess {
    /// The process's mean arrival rate (per second).
    pub fn rate_per_s(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } | ArrivalProcess::FixedRate { rate_per_s } => {
                rate_per_s
            }
        }
    }

    /// Intended start times in `[0, horizon_s)`, ascending. Deterministic
    /// for a given seed (the seed is unused by [`ArrivalProcess::FixedRate`]).
    pub fn arrival_times(&self, horizon_s: f64, seed: u64) -> Vec<f64> {
        let rate = self.rate_per_s();
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        assert!(horizon_s > 0.0, "horizon must be positive");
        let mut out = Vec::with_capacity((rate * horizon_s) as usize + 1);
        match *self {
            ArrivalProcess::Poisson { .. } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut t = 0.0f64;
                loop {
                    // Inverse-transform exponential gap; 1-u is in (0, 1]
                    // so ln never sees zero.
                    let u: f64 = rng.gen_range(0.0..1.0);
                    t += -(1.0 - u).ln() / rate;
                    if t >= horizon_s {
                        break;
                    }
                    out.push(t);
                }
            }
            ArrivalProcess::FixedRate { .. } => {
                let mut k = 0u64;
                loop {
                    let t = k as f64 / rate;
                    if t >= horizon_s {
                        break;
                    }
                    out.push(t);
                    k += 1;
                }
            }
        }
        out
    }
}

/// Where an open-loop plan draws its page choices from.
#[derive(Clone, Copy, Debug)]
pub enum PageSource<'a> {
    /// Independent Zipf draws per page view.
    Zipf(&'a Zipf),
    /// Replay the page-rank sequence of a generated browsing trace,
    /// cycling when the plan is longer than the trace. The trace's own
    /// timestamps (days-scale) are ignored — only its popularity
    /// sequence matters here.
    Trace(&'a BrowsingTrace),
}

/// One planned page view: `gets_per_page` GETs, all intended at
/// `intended_s` (a page view fires its blob fetches together, so every
/// GET of the view is measured from the view's arrival).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannedView {
    /// Intended start, seconds from plan epoch.
    pub intended_s: f64,
    /// Popularity rank of the visited page (0 = most popular).
    pub page_rank: usize,
}

/// A concrete open-loop request plan: time-ordered page views plus the
/// fixed GET fan-out per view.
#[derive(Clone, Debug)]
pub struct OpenLoopPlan {
    /// Time-ordered planned page views.
    pub views: Vec<PlannedView>,
    /// Data GETs each view expands into.
    pub gets_per_page: usize,
}

impl OpenLoopPlan {
    /// Generate a plan: `process` fixes the view start times over
    /// `[0, horizon_s)`, `source` picks each view's page. Deterministic
    /// for a given seed.
    pub fn generate(
        process: ArrivalProcess,
        source: PageSource<'_>,
        horizon_s: f64,
        gets_per_page: usize,
        seed: u64,
    ) -> OpenLoopPlan {
        assert!(gets_per_page > 0, "a page view issues at least one GET");
        let times = process.arrival_times(horizon_s, seed);
        // Independent stream for page choice so changing the arrival
        // process does not reshuffle popularity.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let views = times
            .into_iter()
            .enumerate()
            .map(|(i, intended_s)| {
                let page_rank = match source {
                    PageSource::Zipf(z) => z.sample(&mut rng),
                    PageSource::Trace(t) => {
                        assert!(!t.visits.is_empty(), "trace must have visits");
                        t.visits[i % t.visits.len()].page_rank
                    }
                };
                PlannedView {
                    intended_s,
                    page_rank,
                }
            })
            .collect();
        OpenLoopPlan {
            views,
            gets_per_page,
        }
    }

    /// Total GETs the plan will issue.
    pub fn total_gets(&self) -> usize {
        self.views.len() * self.gets_per_page
    }

    /// Offered GET rate of the plan over its horizon (requests/second).
    pub fn offered_gets_per_s(&self, horizon_s: f64) -> f64 {
        assert!(horizon_s > 0.0);
        self.total_gets() as f64 / horizon_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::UserModel;

    #[test]
    fn fixed_rate_is_evenly_spaced_and_exact() {
        let p = ArrivalProcess::FixedRate { rate_per_s: 10.0 };
        let times = p.arrival_times(2.0, 99);
        assert_eq!(times.len(), 20);
        for (k, t) in times.iter().enumerate() {
            assert!((t - k as f64 * 0.1).abs() < 1e-12, "slot {k}: {t}");
        }
        // Seed is irrelevant for the deterministic process.
        assert_eq!(times, p.arrival_times(2.0, 7));
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_hits_the_rate() {
        let p = ArrivalProcess::Poisson { rate_per_s: 200.0 };
        let a = p.arrival_times(5.0, 42);
        let b = p.arrival_times(5.0, 42);
        assert_eq!(a, b);
        assert_ne!(a, p.arrival_times(5.0, 43));
        // ~1000 expected arrivals; allow ±15% (σ ≈ √1000 ≈ 32).
        assert!(
            (850..=1150).contains(&a.len()),
            "poisson count {} far from 1000",
            a.len()
        );
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "not time-ordered");
        assert!(a.iter().all(|&t| (0.0..5.0).contains(&t)));
    }

    #[test]
    fn poisson_gaps_have_exponential_spread() {
        // A deterministic schedule has zero gap variance; Poisson gaps
        // have coefficient of variation ≈ 1. Guard the distinction.
        let p = ArrivalProcess::Poisson { rate_per_s: 500.0 };
        let times = p.arrival_times(10.0, 1);
        let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((0.8..1.2).contains(&cv), "cv {cv} not exponential-like");
    }

    #[test]
    fn plan_expands_views_into_gets() {
        let zipf = Zipf::new(50, 1.0);
        let plan = OpenLoopPlan::generate(
            ArrivalProcess::FixedRate { rate_per_s: 20.0 },
            PageSource::Zipf(&zipf),
            1.0,
            5,
            3,
        );
        assert_eq!(plan.views.len(), 20);
        assert_eq!(plan.total_gets(), 100);
        assert!((plan.offered_gets_per_s(1.0) - 100.0).abs() < 1e-9);
        assert!(plan.views.iter().all(|v| v.page_rank < 50));
    }

    #[test]
    fn plan_is_deterministic_and_zipf_skewed() {
        let zipf = Zipf::new(100, 1.0);
        let gen = || {
            OpenLoopPlan::generate(
                ArrivalProcess::Poisson { rate_per_s: 300.0 },
                PageSource::Zipf(&zipf),
                4.0,
                1,
                11,
            )
        };
        let a = gen();
        assert_eq!(a.views, gen().views);
        // Rank 0 must dominate any mid-tail rank under Zipf(1.0).
        let count = |r: usize| a.views.iter().filter(|v| v.page_rank == r).count();
        assert!(count(0) > count(50), "head {} tail {}", count(0), count(50));
    }

    #[test]
    fn trace_source_replays_the_trace_popularity_sequence() {
        let trace = UserModel::default().generate_trace(200, 2, 5);
        let plan = OpenLoopPlan::generate(
            ArrivalProcess::FixedRate { rate_per_s: 50.0 },
            PageSource::Trace(&trace),
            1.0,
            2,
            0,
        );
        assert_eq!(plan.views.len(), 50);
        for (i, v) in plan.views.iter().enumerate() {
            assert_eq!(v.page_rank, trace.visits[i % trace.visits.len()].page_rank);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_rejected() {
        ArrivalProcess::Poisson { rate_per_s: 0.0 }.arrival_times(1.0, 0);
    }
}
