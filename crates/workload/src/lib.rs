#![warn(missing_docs)]

//! # lightweb-workload
//!
//! Workload generation for the lightweb experiments.
//!
//! The paper evaluates against the C4 dataset ("a cleaned version of the
//! common crawl … roughly 305 GiB compressed, contains 360M pages, and the
//! average compressed page size is roughly 0.9 KiB") and a Wikipedia
//! corpus (21 GiB, 60M pages, 0.4 KiB average). Neither corpus's *content*
//! matters to a ZLTP server — per-request cost depends only on blob count
//! and size — so this crate provides synthetic corpora matching those
//! published statistics at any scale ([`corpus`]), Zipf popularity and
//! browsing-trace generation for the §4 user model ([`trace`]), and the
//! website-fingerprinting attacker from the paper's §1 motivation
//! ([`fingerprint`]), and open-loop arrival schedules for the
//! latency-under-load harness ([`openloop`]).

pub mod corpus;
pub mod fingerprint;
pub mod openloop;
pub mod timing;
pub mod trace;
pub mod zipf;

pub use corpus::{CorpusSpec, SyntheticPage};
pub use fingerprint::{
    simulate_lightweb_flow, simulate_proxy_flow, synthetic_site, FlowObservation, NearestCentroid,
};
pub use openloop::{ArrivalProcess, OpenLoopPlan, PageSource, PlannedView};
pub use timing::{extract_features, Archetype, TimingClassifier, TimingFeatures};
pub use trace::{BrowsingTrace, UserModel};
pub use zipf::Zipf;
