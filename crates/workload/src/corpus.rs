//! Synthetic corpora matching the paper's dataset statistics.
//!
//! Page sizes follow a log-normal distribution (the classic fit for web
//! object sizes) parameterized to hit the corpus's published mean. Pages
//! are generated deterministically from a seed, so servers, clients, and
//! benchmarks can reproduce the same corpus without storing it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape of a corpus: how many pages, how big.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorpusSpec {
    /// Human name for reports.
    pub name: &'static str,
    /// Total pages at full (paper) scale.
    pub full_scale_pages: u64,
    /// Mean compressed page size in bytes.
    pub mean_page_bytes: f64,
    /// Log-normal sigma controlling the size spread.
    pub sigma: f64,
}

impl CorpusSpec {
    /// The C4 corpus of §5: 360M pages, 0.9 KiB average (305 GiB total).
    pub fn c4() -> Self {
        Self {
            name: "C4",
            full_scale_pages: 360_000_000,
            mean_page_bytes: 0.9 * 1024.0,
            sigma: 0.8,
        }
    }

    /// The Wikipedia corpus of Table 2: 60M pages, 0.4 KiB average
    /// (21 GiB total).
    pub fn wikipedia() -> Self {
        Self {
            name: "Wikipedia",
            full_scale_pages: 60_000_000,
            mean_page_bytes: 0.4 * 1024.0,
            sigma: 0.6,
        }
    }

    /// Full-scale corpus size in bytes (pages × mean).
    pub fn full_scale_bytes(&self) -> f64 {
        self.full_scale_pages as f64 * self.mean_page_bytes
    }

    /// Generate `n` synthetic pages deterministically from `seed`.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<SyntheticPage> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6c69_6768_7477_6562);
        // Log-normal with mean = mean_page_bytes: mu = ln(mean) - sigma²/2.
        let mu = self.mean_page_bytes.ln() - self.sigma * self.sigma / 2.0;
        (0..n)
            .map(|i| {
                let z: f64 = sample_standard_normal(&mut rng);
                let size = (mu + self.sigma * z).exp().round().max(16.0) as usize;
                let path = format!("site-{:03}.example/page/{:08}", i % 997, i);
                let body = deterministic_body(i as u64 ^ seed, size);
                SyntheticPage { path, body }
            })
            .collect()
    }
}

/// One generated page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyntheticPage {
    /// Its lightweb path (domain + page path).
    pub path: String,
    /// Compressed-page stand-in bytes.
    pub body: Vec<u8>,
}

/// Box–Muller standard normal.
fn sample_standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Filler bytes that are cheap to generate and deterministic.
fn deterministic_body(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state & 0xFF) as u8
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_statistics_encoded() {
        let c4 = CorpusSpec::c4();
        assert_eq!(c4.full_scale_pages, 360_000_000);
        // 360M × 0.9 KiB ≈ 309 GiB — the paper rounds to 305 GiB.
        let gib = c4.full_scale_bytes() / (1024.0 * 1024.0 * 1024.0);
        assert!((300.0..320.0).contains(&gib), "{gib}");

        let wiki = CorpusSpec::wikipedia();
        let wiki_gib = wiki.full_scale_bytes() / (1024.0 * 1024.0 * 1024.0);
        assert!((20.0..25.0).contains(&wiki_gib), "{wiki_gib}");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CorpusSpec::c4();
        let a = spec.generate(50, 7);
        let b = spec.generate(50, 7);
        assert_eq!(a, b);
        let c = spec.generate(50, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn mean_size_matches_spec() {
        let spec = CorpusSpec::c4();
        let pages = spec.generate(4000, 1);
        let mean: f64 = pages.iter().map(|p| p.body.len() as f64).sum::<f64>() / pages.len() as f64;
        let target = spec.mean_page_bytes;
        assert!(
            (mean - target).abs() < target * 0.15,
            "mean {mean:.0} vs target {target:.0}"
        );
    }

    #[test]
    fn sizes_are_heterogeneous() {
        // The fingerprinting experiment needs a real size spread.
        let pages = CorpusSpec::c4().generate(1000, 2);
        let min = pages.iter().map(|p| p.body.len()).min().unwrap();
        let max = pages.iter().map(|p| p.body.len()).max().unwrap();
        assert!(max > min * 4, "spread too small: {min}..{max}");
    }

    #[test]
    fn paths_are_unique() {
        let pages = CorpusSpec::wikipedia().generate(2000, 3);
        let set: std::collections::HashSet<_> = pages.iter().map(|p| &p.path).collect();
        assert_eq!(set.len(), pages.len());
    }

    #[test]
    fn paths_have_valid_domains() {
        for p in CorpusSpec::c4().generate(100, 4) {
            let domain = p.path.split('/').next().unwrap();
            assert!(domain.contains('.'), "{}", p.path);
        }
    }
}
