//! Timing-pattern analysis: the leak lightweb *doesn't* close, quantified.
//!
//! §3.2 admits: "It is possible in principle to infer some limited
//! information about the user's browsing behavior by the number and timing
//! of their page visits. For example, a user fetching a page every five
//! minutes in the morning might be most likely to be reading the news."
//!
//! This module makes that sentence measurable. It generates visit-time
//! series for distinct user archetypes, extracts the features a passive
//! observer sees (rate, burstiness, time-of-day mass), and classifies —
//! then shows that running the same users through the constant-rate pacer
//! (`lightweb-browser::pacer`) collapses every archetype onto the same
//! observable, pushing the classifier back to chance. This is the
//! quantitative companion to the paper's "even this leakage is modest".

use rand::rngs::StdRng;
use rand::Rng;
#[cfg(test)]
use rand::SeedableRng;

/// A user archetype with a characteristic visit-timing pattern.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Archetype {
    /// Reads news in a tight morning cluster, ~every 5 minutes (the
    /// paper's example).
    MorningNewsReader,
    /// Browses sporadically all day.
    AllDayBrowser,
    /// A burst of research activity in the evening.
    EveningResearcher,
}

impl Archetype {
    /// All archetypes.
    pub fn all() -> [Archetype; 3] {
        [
            Archetype::MorningNewsReader,
            Archetype::AllDayBrowser,
            Archetype::EveningResearcher,
        ]
    }

    /// Generate one day of visit times (seconds since midnight).
    pub fn day_of_visits(&self, rng: &mut StdRng) -> Vec<f64> {
        let mut visits = Vec::new();
        match self {
            Archetype::MorningNewsReader => {
                // 7:30–9:00, one visit every ~5 minutes.
                let mut t = 7.5 * 3600.0 + rng.gen_range(0.0..600.0);
                while t < 9.0 * 3600.0 {
                    visits.push(t);
                    t += 300.0 * rng.gen_range(0.7..1.3);
                }
            }
            Archetype::AllDayBrowser => {
                // ~20 visits uniform over 8:00–23:00.
                for _ in 0..20 {
                    visits.push(rng.gen_range(8.0 * 3600.0..23.0 * 3600.0));
                }
                visits.sort_by(|a, b| a.partial_cmp(b).unwrap());
            }
            Archetype::EveningResearcher => {
                // A dense 20:00–22:00 burst, ~every 90 seconds.
                let mut t = 20.0 * 3600.0 + rng.gen_range(0.0..300.0);
                while t < 22.0 * 3600.0 && visits.len() < 60 {
                    visits.push(t);
                    t += 90.0 * rng.gen_range(0.5..1.5);
                }
            }
        }
        visits
    }
}

/// Timing features visible to a passive network observer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimingFeatures {
    /// Total page loads seen.
    pub count: f64,
    /// Mean inter-arrival time (s).
    pub mean_gap: f64,
    /// Fraction of loads before noon.
    pub morning_fraction: f64,
}

/// Extract features from a day of observed page-load times.
pub fn extract_features(times: &[f64]) -> TimingFeatures {
    if times.is_empty() {
        return TimingFeatures {
            count: 0.0,
            mean_gap: 0.0,
            morning_fraction: 0.0,
        };
    }
    let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
    let mean_gap = if gaps.is_empty() {
        0.0
    } else {
        gaps.iter().sum::<f64>() / gaps.len() as f64
    };
    let morning = times.iter().filter(|&&t| t < 12.0 * 3600.0).count() as f64;
    TimingFeatures {
        count: times.len() as f64,
        mean_gap,
        morning_fraction: morning / times.len() as f64,
    }
}

/// Nearest-centroid classification over timing features.
#[derive(Clone, Debug)]
pub struct TimingClassifier {
    centroids: Vec<(usize, [f64; 3])>,
}

fn feature_vec(f: &TimingFeatures) -> [f64; 3] {
    // Normalize scales: counts ~tens, gaps ~hundreds of seconds.
    [
        f.count / 10.0,
        (f.mean_gap + 1.0).ln(),
        f.morning_fraction * 5.0,
    ]
}

impl TimingClassifier {
    /// Train on `(archetype index, features)` pairs.
    pub fn train(samples: &[(usize, TimingFeatures)]) -> Self {
        use std::collections::BTreeMap;
        let mut acc: BTreeMap<usize, ([f64; 3], f64)> = BTreeMap::new();
        for (label, f) in samples {
            let e = acc.entry(*label).or_insert(([0.0; 3], 0.0));
            for (a, v) in e.0.iter_mut().zip(feature_vec(f)) {
                *a += v;
            }
            e.1 += 1.0;
        }
        Self {
            centroids: acc
                .into_iter()
                .map(|(l, (s, n))| (l, [s[0] / n, s[1] / n, s[2] / n]))
                .collect(),
        }
    }

    /// Classify one observed day.
    pub fn classify(&self, f: &TimingFeatures) -> usize {
        let v = feature_vec(f);
        self.centroids
            .iter()
            .min_by(|(_, a), (_, b)| {
                let da: f64 = a.iter().zip(&v).map(|(x, y)| (x - y) * (x - y)).sum();
                let db: f64 = b.iter().zip(&v).map(|(x, y)| (x - y) * (x - y)).sum();
                da.partial_cmp(&db).expect("finite")
            })
            .map(|(l, _)| *l)
            .expect("trained")
    }

    /// Accuracy over labelled samples.
    pub fn accuracy(&self, samples: &[(usize, TimingFeatures)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples
            .iter()
            .filter(|(l, f)| self.classify(f) == *l)
            .count() as f64
            / samples.len() as f64
    }
}

/// What the observer sees when the same user runs behind a constant-rate
/// pacer firing every `interval_s` for `hours` a day: one page load per
/// slot, every slot, regardless of the real visit pattern.
pub fn paced_observation(interval_s: f64, hours: f64) -> Vec<f64> {
    let slots = (hours * 3600.0 / interval_s) as usize;
    (0..slots)
        .map(|i| 8.0 * 3600.0 + i as f64 * interval_s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(per_class: usize, seed: u64) -> Vec<(usize, TimingFeatures)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::new();
        for (label, arche) in Archetype::all().iter().enumerate() {
            for _ in 0..per_class {
                out.push((label, extract_features(&arche.day_of_visits(&mut rng))));
            }
        }
        out
    }

    #[test]
    fn archetypes_are_distinguishable_from_timing() {
        let train = dataset(20, 1);
        let test = dataset(10, 2);
        let clf = TimingClassifier::train(&train);
        let acc = clf.accuracy(&test);
        // 3 classes, chance = 1/3; timing should separate them well —
        // this is the §3.2 leak, demonstrated.
        assert!(acc > 0.8, "timing attack only reached {acc}");
    }

    #[test]
    fn pacing_collapses_archetypes_to_one_observation() {
        // Every archetype behind the pacer produces the *identical*
        // observation, so features coincide exactly.
        let obs = paced_observation(300.0, 15.0);
        let f1 = extract_features(&obs);
        let f2 = extract_features(&paced_observation(300.0, 15.0));
        assert_eq!(f1, f2);
        // And a classifier trained on paced data cannot beat chance: all
        // classes have identical centroids, so accuracy equals the share
        // of whichever class wins ties (1/3 of a balanced test set).
        let train: Vec<(usize, TimingFeatures)> =
            (0..3).flat_map(|l| (0..10).map(move |_| (l, f1))).collect();
        let clf = TimingClassifier::train(&train);
        let test: Vec<(usize, TimingFeatures)> = (0..3).map(|l| (l, f1)).collect();
        let acc = clf.accuracy(&test);
        assert!(acc <= 1.0 / 3.0 + 1e-9, "paced accuracy {acc}");
    }

    #[test]
    fn features_capture_the_paper_example() {
        // The "page every five minutes in the morning" user has a ~300 s
        // mean gap and morning_fraction 1.0.
        let mut rng = StdRng::seed_from_u64(3);
        let f = extract_features(&Archetype::MorningNewsReader.day_of_visits(&mut rng));
        assert!((200.0..400.0).contains(&f.mean_gap), "{f:?}");
        assert_eq!(f.morning_fraction, 1.0);
    }

    #[test]
    fn empty_observation_is_handled() {
        let f = extract_features(&[]);
        assert_eq!(f.count, 0.0);
    }
}
