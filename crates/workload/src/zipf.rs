//! A Zipf sampler for page popularity.
//!
//! §4's economics point — "the cost of adding a page … is independent of
//! the popularity of a page: adding a page to cnn.com is as costly to the
//! system as adding a page to poodleclubofamerica.org, even if one site
//! receives 1000× more traffic" — only bites because real traffic is
//! heavily skewed. Browsing traces therefore sample pages Zipf-distributed,
//! the standard model for web popularity.

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`.
#[derive(Clone, Debug)]
pub struct Zipf {
    /// Cumulative mass, normalized to 1.0 at the end.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build for `n` items with exponent `s` (s = 1.0 is classic Zipf).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        Self { cdf }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is empty (never: `new` requires n > 0).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        let prev = if k == 0 { 0.0 } else { self.cdf[k - 1] };
        self.cdf[k] - prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mass_sums_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        // Classic Zipf: p(0)/p(9) ≈ 10.
        let ratio = z.pmf(0) / z.pmf(9);
        assert!((8.0..12.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn samples_match_distribution() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        let n = 20_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let expected = z.pmf(k) * n as f64;
            let got = count as f64;
            assert!(
                (got - expected).abs() < expected.mulf_max(0.15, 40.0),
                "rank {k}: got {got}, expected {expected:.0}"
            );
        }
    }

    trait MulfMax {
        fn mulf_max(self, f: f64, floor: f64) -> f64;
    }
    impl MulfMax for f64 {
        fn mulf_max(self, f: f64, floor: f64) -> f64 {
            (self * f).max(floor)
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        for k in 0..4 {
            assert!((z.pmf(k) - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_rejected() {
        Zipf::new(0, 1.0);
    }
}
