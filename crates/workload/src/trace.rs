//! Browsing-trace generation: the paper's §4 user model.
//!
//! "For users who make on average 50 daily page requests where each page
//! request results in 5 GET requests for data blobs, we estimate that the
//! monthly per-user cost … to be roughly $15." [`UserModel`] encodes those
//! constants and produces concrete visit sequences for benchmarks — with
//! Zipf-skewed page choice and clustered visit times, so the §3.2 remark
//! about timing leakage ("a user fetching a page every five minutes in the
//! morning might be … reading the news") has something to bite on.

use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's user model constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UserModel {
    /// Average page views per day (paper: 50).
    pub pages_per_day: f64,
    /// Data-blob GETs per page view (paper: 5).
    pub gets_per_page: usize,
    /// Zipf exponent for page popularity.
    pub zipf_exponent: f64,
}

impl Default for UserModel {
    fn default() -> Self {
        Self {
            pages_per_day: 50.0,
            gets_per_page: 5,
            zipf_exponent: 1.0,
        }
    }
}

impl UserModel {
    /// Total data GETs per 30-day month — the number the §4 cost estimate
    /// multiplies by the per-request price.
    pub fn monthly_gets(&self) -> f64 {
        self.pages_per_day * 30.0 * self.gets_per_page as f64
    }

    /// Generate a `days`-long trace over a catalog of `num_pages` pages.
    pub fn generate_trace(&self, num_pages: usize, days: usize, seed: u64) -> BrowsingTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let zipf = Zipf::new(num_pages, self.zipf_exponent);
        let mut visits = Vec::new();
        for day in 0..days {
            // Poisson-ish: sample a per-day count around the mean.
            let count = ((self.pages_per_day + rng.gen_range(-0.2..0.2) * self.pages_per_day)
                .round() as usize)
                .max(1);
            for _ in 0..count {
                // Cluster visit times into morning/evening humps.
                let hump = if rng.gen_bool(0.5) {
                    8.0 * 3600.0
                } else {
                    20.0 * 3600.0
                };
                let jitter: f64 = rng.gen_range(-2.0 * 3600.0..2.0 * 3600.0);
                let t = day as f64 * 86_400.0 + hump + jitter;
                visits.push(Visit {
                    time_s: t,
                    page_rank: zipf.sample(&mut rng),
                });
            }
        }
        visits.sort_by(|a, b| a.time_s.partial_cmp(&b.time_s).unwrap());
        BrowsingTrace {
            visits,
            gets_per_page: self.gets_per_page,
        }
    }
}

/// One page visit in a trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Visit {
    /// Seconds since trace start.
    pub time_s: f64,
    /// Popularity rank of the visited page (0 = most popular).
    pub page_rank: usize,
}

/// A generated browsing trace.
#[derive(Clone, Debug)]
pub struct BrowsingTrace {
    /// Time-ordered visits.
    pub visits: Vec<Visit>,
    /// Fixed GETs per page view.
    pub gets_per_page: usize,
}

impl BrowsingTrace {
    /// Total data GETs in this trace.
    pub fn total_gets(&self) -> usize {
        self.visits.len() * self.gets_per_page
    }

    /// Pages per day actually realized.
    pub fn pages_per_day(&self, days: usize) -> f64 {
        self.visits.len() as f64 / days as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_default() {
        let m = UserModel::default();
        assert_eq!(m.pages_per_day, 50.0);
        assert_eq!(m.gets_per_page, 5);
        // 50 × 30 × 5 = 7500 GETs/month — the §4 multiplier.
        assert_eq!(m.monthly_gets(), 7500.0);
    }

    #[test]
    fn trace_matches_model_rates() {
        let m = UserModel::default();
        let trace = m.generate_trace(1000, 30, 42);
        let rate = trace.pages_per_day(30);
        assert!((40.0..60.0).contains(&rate), "pages/day {rate}");
        assert_eq!(trace.total_gets(), trace.visits.len() * 5);
    }

    #[test]
    fn trace_is_time_ordered_and_deterministic() {
        let m = UserModel::default();
        let a = m.generate_trace(100, 3, 7);
        let b = m.generate_trace(100, 3, 7);
        assert_eq!(a.visits, b.visits);
        assert!(a.visits.windows(2).all(|w| w[0].time_s <= w[1].time_s));
    }

    #[test]
    fn popular_pages_dominate() {
        let m = UserModel::default();
        let trace = m.generate_trace(500, 60, 9);
        let top10 = trace.visits.iter().filter(|v| v.page_rank < 10).count();
        // Under Zipf(1.0) over 500 items, ranks 0..10 carry ~43% of mass.
        let frac = top10 as f64 / trace.visits.len() as f64;
        assert!(frac > 0.25, "top-10 fraction {frac}");
    }
}
