//! The website-fingerprinting attacker from the paper's motivation (§1).
//!
//! "Even if an attacker cannot identify the precise destination of a
//! particular user's flow, the attacker can use low-cost traffic-analysis
//! attacks to determine what a user is watching or reading: … a visit to
//! the media-rich New York Times homepage — even over an encrypted link —
//! exhibits a very different traffic signature than a visit to an article
//! page." (citing Herrmann et al.'s classifier-based fingerprinting.)
//!
//! This module builds both sides of that argument:
//!
//! * flow simulators — what the network sees when a page is loaded through
//!   an encrypting proxy ([`simulate_proxy_flow`]: per-object sizes leak)
//!   versus through lightweb ([`simulate_lightweb_flow`]: a constant shape
//!   by construction);
//! * a nearest-centroid classifier over flow features
//!   ([`NearestCentroid`]), standing in for the naïve-Bayes classifier of
//!   the cited attack. Against the proxy it identifies pages far above
//!   chance; against lightweb it *cannot* beat chance, because every page
//!   produces the identical observation.

use rand::Rng;

/// What a passive network attacker records for one page load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowObservation {
    /// Number of request/response exchanges.
    pub num_requests: f64,
    /// Total bytes downstream.
    pub total_bytes: f64,
    /// Largest single response.
    pub max_response: f64,
}

impl FlowObservation {
    fn features(&self) -> [f64; 3] {
        // Log-scale sizes: web object sizes are heavy-tailed.
        [
            self.num_requests,
            (self.total_bytes + 1.0).ln(),
            (self.max_response + 1.0).ln(),
        ]
    }
}

/// The traffic signature of loading `page_objects` (object sizes in bytes)
/// through an encrypting proxy: the attacker sees one exchange per object
/// and the (padded-to-cell, but still size-revealing) byte counts, with
/// small multiplicative jitter for TLS record framing.
pub fn simulate_proxy_flow(page_objects: &[usize], rng: &mut impl Rng) -> FlowObservation {
    let mut total = 0.0;
    let mut max = 0.0f64;
    for &obj in page_objects {
        let jitter: f64 = rng.gen_range(0.97..1.03);
        let seen = obj as f64 * jitter + 64.0; // headers
        total += seen;
        max = max.max(seen);
    }
    FlowObservation {
        num_requests: page_objects.len() as f64,
        total_bytes: total,
        max_response: max,
    }
}

/// The traffic signature of loading *any* lightweb page: exactly
/// `fetches_per_page` exchanges of exactly `blob_len` bytes (plus the
/// fixed frame overhead), regardless of the page. Content does not enter
/// the function signature — that is the point.
pub fn simulate_lightweb_flow(fetches_per_page: usize, blob_len: usize) -> FlowObservation {
    let per_response = (blob_len + 9) as f64; // frame header + response id
    FlowObservation {
        num_requests: fetches_per_page as f64,
        total_bytes: per_response * fetches_per_page as f64 * 2.0, // two servers
        max_response: per_response,
    }
}

/// A nearest-centroid classifier: train on labelled observations, classify
/// by closest class centroid in feature space.
#[derive(Clone, Debug, Default)]
pub struct NearestCentroid {
    centroids: Vec<(usize, [f64; 3])>,
}

impl NearestCentroid {
    /// Train from `(label, observation)` pairs.
    pub fn train(samples: &[(usize, FlowObservation)]) -> Self {
        use std::collections::BTreeMap;
        let mut sums: BTreeMap<usize, ([f64; 3], f64)> = BTreeMap::new();
        for (label, obs) in samples {
            let entry = sums.entry(*label).or_insert(([0.0; 3], 0.0));
            for (a, f) in entry.0.iter_mut().zip(obs.features()) {
                *a += f;
            }
            entry.1 += 1.0;
        }
        let centroids = sums
            .into_iter()
            .map(|(label, (sum, n))| (label, [sum[0] / n, sum[1] / n, sum[2] / n]))
            .collect();
        Self { centroids }
    }

    /// Predict the label of an observation.
    pub fn classify(&self, obs: &FlowObservation) -> usize {
        let f = obs.features();
        self.centroids
            .iter()
            .min_by(|(_, a), (_, b)| {
                dist(a, &f)
                    .partial_cmp(&dist(b, &f))
                    .expect("finite features")
            })
            .map(|(label, _)| *label)
            .expect("classifier trained on at least one class")
    }

    /// Accuracy over a labelled test set.
    pub fn accuracy(&self, samples: &[(usize, FlowObservation)]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let correct = samples
            .iter()
            .filter(|(label, obs)| self.classify(obs) == *label)
            .count();
        correct as f64 / samples.len() as f64
    }
}

fn dist(a: &[f64; 3], b: &[f64; 3]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// A page as a set of object sizes (HTML + subresources), for the proxy
/// simulation. Generates `n` pages of diverse richness, from text-only
/// article pages to media-heavy front pages.
pub fn synthetic_site(n: usize, rng: &mut impl Rng) -> Vec<Vec<usize>> {
    (0..n)
        .map(|i| {
            // Page archetype varies with index: some rich, some sparse.
            let objects = 1 + (i % 30);
            (0..objects)
                .map(|_| {
                    let base: f64 = rng.gen_range(7.0..13.0); // ln bytes
                    base.exp() as usize
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn labelled_proxy_samples(
        site: &[Vec<usize>],
        per_page: usize,
        rng: &mut StdRng,
    ) -> Vec<(usize, FlowObservation)> {
        let mut out = Vec::new();
        for (label, objects) in site.iter().enumerate() {
            for _ in 0..per_page {
                out.push((label, simulate_proxy_flow(objects, rng)));
            }
        }
        out
    }

    #[test]
    fn proxy_flows_are_fingerprintable() {
        let mut rng = StdRng::seed_from_u64(1);
        let site = synthetic_site(20, &mut rng);
        let train = labelled_proxy_samples(&site, 8, &mut rng);
        let test = labelled_proxy_samples(&site, 4, &mut rng);
        let clf = NearestCentroid::train(&train);
        let acc = clf.accuracy(&test);
        // 20 classes, chance = 5%. The attack should do far better.
        assert!(acc > 0.5, "proxy fingerprinting accuracy only {acc}");
    }

    #[test]
    fn lightweb_flows_are_identical_across_pages() {
        let a = simulate_lightweb_flow(5, 1024);
        let b = simulate_lightweb_flow(5, 1024);
        assert_eq!(a, b, "two different pages produced different flows?");
    }

    #[test]
    fn lightweb_defeats_the_classifier() {
        // Train the classifier on lightweb flows "labelled" with the page
        // being visited; every observation is identical, so accuracy must
        // collapse to (at best) guessing one fixed class.
        let classes = 20usize;
        let train: Vec<(usize, FlowObservation)> = (0..classes)
            .flat_map(|label| (0..8).map(move |_| (label, simulate_lightweb_flow(5, 1024))))
            .collect();
        let test: Vec<(usize, FlowObservation)> = (0..classes)
            .map(|label| (label, simulate_lightweb_flow(5, 1024)))
            .collect();
        let clf = NearestCentroid::train(&train);
        let acc = clf.accuracy(&test);
        assert!(
            acc <= 1.0 / classes as f64 + 1e-9,
            "lightweb should cap accuracy at chance; got {acc}"
        );
    }

    #[test]
    fn homepage_vs_article_is_distinguishable_over_proxy() {
        // The paper's concrete example: media-rich homepage vs article.
        let mut rng = StdRng::seed_from_u64(2);
        let homepage: Vec<usize> = (0..60).map(|_| rng.gen_range(5_000..200_000)).collect();
        let article: Vec<usize> = (0..4).map(|_| rng.gen_range(2_000..30_000)).collect();
        let train: Vec<_> = (0..10)
            .flat_map(|_| {
                vec![
                    (0usize, simulate_proxy_flow(&homepage, &mut rng)),
                    (1usize, simulate_proxy_flow(&article, &mut rng)),
                ]
            })
            .collect();
        let clf = NearestCentroid::train(&train);
        let mut correct = 0;
        for _ in 0..20 {
            if clf.classify(&simulate_proxy_flow(&homepage, &mut rng)) == 0 {
                correct += 1;
            }
            if clf.classify(&simulate_proxy_flow(&article, &mut rng)) == 1 {
                correct += 1;
            }
        }
        assert!(
            correct >= 38,
            "homepage/article separation failed: {correct}/40"
        );
    }

    #[test]
    fn classifier_handles_single_class() {
        let samples = vec![(7usize, simulate_lightweb_flow(5, 64))];
        let clf = NearestCentroid::train(&samples);
        assert_eq!(clf.classify(&simulate_lightweb_flow(5, 64)), 7);
        assert_eq!(clf.accuracy(&samples), 1.0);
        assert_eq!(clf.accuracy(&[]), 0.0);
    }

    #[test]
    fn synthetic_site_has_diverse_pages() {
        let mut rng = StdRng::seed_from_u64(3);
        let site = synthetic_site(30, &mut rng);
        let counts: std::collections::HashSet<usize> = site.iter().map(|p| p.len()).collect();
        assert!(counts.len() > 10, "object-count diversity too low");
    }
}
