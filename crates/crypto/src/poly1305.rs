//! The Poly1305 one-time authenticator (RFC 8439), implemented from scratch.
//!
//! Poly1305 evaluates the message, split into 16-byte blocks, as a polynomial
//! at a secret point `r` modulo the prime `2^130 - 5`, then adds a one-time
//! pad `s`. This implementation uses the classic five-limb radix-2^26
//! representation so every limb product fits comfortably in a `u64`.

/// Length of a Poly1305 key (r || s).
pub const POLY1305_KEY_LEN: usize = 32;
/// Length of a Poly1305 tag.
pub const POLY1305_TAG_LEN: usize = 16;

/// Incremental Poly1305 state.
///
/// Feed message bytes with [`Poly1305::update`] and produce the 16-byte tag
/// with [`Poly1305::finalize`]. A state must not be reused after
/// finalization — Poly1305 keys are strictly one-time.
#[derive(Clone)]
pub struct Poly1305 {
    r: [u32; 5],
    h: [u32; 5],
    pad: [u32; 4],
    buffer: [u8; 16],
    leftover: usize,
}

impl Poly1305 {
    /// Initialize from a 32-byte one-time key: the first half is the
    /// polynomial point `r` (clamped per the RFC), the second half the final
    /// pad `s`.
    pub fn new(key: &[u8; POLY1305_KEY_LEN]) -> Self {
        let le = |i: usize| u32::from_le_bytes(key[i..i + 4].try_into().unwrap());
        // r &= 0xffffffc0ffffffc0ffffffc0fffffff, split into 26-bit limbs.
        let r = [
            le(0) & 0x03ff_ffff,
            (le(3) >> 2) & 0x03ff_ff03,
            (le(6) >> 4) & 0x03ff_c0ff,
            (le(9) >> 6) & 0x03f0_3fff,
            (le(12) >> 8) & 0x000f_ffff,
        ];
        let pad = [le(16), le(20), le(24), le(28)];
        Self {
            r,
            h: [0; 5],
            pad,
            buffer: [0; 16],
            leftover: 0,
        }
    }

    /// Process one 16-byte block. `hibit` is `1 << 24` for full blocks and 0
    /// for the padded final partial block (whose 2^128 term is encoded in the
    /// buffer itself).
    fn block(&mut self, m: &[u8], hibit: u32) {
        let le = |i: usize| u32::from_le_bytes(m[i..i + 4].try_into().unwrap());

        let mut h0 = self.h[0].wrapping_add(le(0) & 0x03ff_ffff) as u64;
        let mut h1 = self.h[1].wrapping_add((le(3) >> 2) & 0x03ff_ffff) as u64;
        let mut h2 = self.h[2].wrapping_add((le(6) >> 4) & 0x03ff_ffff) as u64;
        let mut h3 = self.h[3].wrapping_add((le(9) >> 6) & 0x03ff_ffff) as u64;
        let mut h4 = self.h[4].wrapping_add((le(12) >> 8) | hibit) as u64;

        let [r0, r1, r2, r3, r4] = self.r.map(|x| x as u64);
        let (s1, s2, s3, s4) = (r1 * 5, r2 * 5, r3 * 5, r4 * 5);

        // h *= r  (mod 2^130 - 5), schoolbook with the 5x folding trick.
        let d0 = h0 * r0 + h1 * s4 + h2 * s3 + h3 * s2 + h4 * s1;
        let d1 = h0 * r1 + h1 * r0 + h2 * s4 + h3 * s3 + h4 * s2;
        let d2 = h0 * r2 + h1 * r1 + h2 * r0 + h3 * s4 + h4 * s3;
        let d3 = h0 * r3 + h1 * r2 + h2 * r1 + h3 * r0 + h4 * s4;
        let d4 = h0 * r4 + h1 * r3 + h2 * r2 + h3 * r1 + h4 * r0;

        // Partial carry propagation back to 26-bit limbs.
        let mut c;
        c = d0 >> 26;
        h0 = d0 & 0x03ff_ffff;
        let d1 = d1 + c;
        c = d1 >> 26;
        h1 = d1 & 0x03ff_ffff;
        let d2 = d2 + c;
        c = d2 >> 26;
        h2 = d2 & 0x03ff_ffff;
        let d3 = d3 + c;
        c = d3 >> 26;
        h3 = d3 & 0x03ff_ffff;
        let d4 = d4 + c;
        c = d4 >> 26;
        h4 = d4 & 0x03ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        self.h = [h0 as u32, h1 as u32, h2 as u32, h3 as u32, h4 as u32];
    }

    /// Absorb message bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        if self.leftover > 0 {
            let want = (16 - self.leftover).min(data.len());
            self.buffer[self.leftover..self.leftover + want].copy_from_slice(&data[..want]);
            self.leftover += want;
            data = &data[want..];
            if self.leftover == 16 {
                let buf = self.buffer;
                self.block(&buf, 1 << 24);
                self.leftover = 0;
            }
        }
        let mut chunks = data.chunks_exact(16);
        for chunk in &mut chunks {
            // Copy out to satisfy the borrow checker; 16 bytes, negligible.
            let mut m = [0u8; 16];
            m.copy_from_slice(chunk);
            self.block(&m, 1 << 24);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            self.buffer[..rem.len()].copy_from_slice(rem);
            self.leftover = rem.len();
        }
    }

    /// Consume the state and produce the authentication tag.
    pub fn finalize(mut self) -> [u8; POLY1305_TAG_LEN] {
        if self.leftover > 0 {
            let mut m = [0u8; 16];
            m[..self.leftover].copy_from_slice(&self.buffer[..self.leftover]);
            m[self.leftover] = 1; // 2^128 term for the padded final block
            self.block(&m, 0);
        }

        let [mut h0, mut h1, mut h2, mut h3, mut h4] = self.h;

        // Fully propagate carries.
        let mut c;
        c = h1 >> 26;
        h1 &= 0x03ff_ffff;
        h2 += c;
        c = h2 >> 26;
        h2 &= 0x03ff_ffff;
        h3 += c;
        c = h3 >> 26;
        h3 &= 0x03ff_ffff;
        h4 += c;
        c = h4 >> 26;
        h4 &= 0x03ff_ffff;
        h0 += c * 5;
        c = h0 >> 26;
        h0 &= 0x03ff_ffff;
        h1 += c;

        // Compute h + -p = h - (2^130 - 5) and constant-time select.
        let mut g0 = h0.wrapping_add(5);
        c = g0 >> 26;
        g0 &= 0x03ff_ffff;
        let mut g1 = h1.wrapping_add(c);
        c = g1 >> 26;
        g1 &= 0x03ff_ffff;
        let mut g2 = h2.wrapping_add(c);
        c = g2 >> 26;
        g2 &= 0x03ff_ffff;
        let mut g3 = h3.wrapping_add(c);
        c = g3 >> 26;
        g3 &= 0x03ff_ffff;
        let g4 = h4.wrapping_add(c).wrapping_sub(1 << 26);

        // mask = all-ones if h >= p (g4 had no borrow), else zero.
        let mask = (g4 >> 31).wrapping_sub(1);
        h0 = (h0 & !mask) | (g0 & mask);
        h1 = (h1 & !mask) | (g1 & mask);
        h2 = (h2 & !mask) | (g2 & mask);
        h3 = (h3 & !mask) | (g3 & mask);
        h4 = (h4 & !mask) | (g4 & mask);

        // Repack limbs into 4 little-endian 32-bit words.
        let w0 = h0 | (h1 << 26);
        let w1 = (h1 >> 6) | (h2 << 20);
        let w2 = (h2 >> 12) | (h3 << 14);
        let w3 = (h3 >> 18) | (h4 << 8);

        // tag = (h + s) mod 2^128
        let mut f: u64;
        let mut tag = [0u8; 16];
        f = w0 as u64 + self.pad[0] as u64;
        tag[0..4].copy_from_slice(&(f as u32).to_le_bytes());
        f = w1 as u64 + self.pad[1] as u64 + (f >> 32);
        tag[4..8].copy_from_slice(&(f as u32).to_le_bytes());
        f = w2 as u64 + self.pad[2] as u64 + (f >> 32);
        tag[8..12].copy_from_slice(&(f as u32).to_le_bytes());
        f = w3 as u64 + self.pad[3] as u64 + (f >> 32);
        tag[12..16].copy_from_slice(&(f as u32).to_le_bytes());
        tag
    }

    /// One-shot convenience: MAC `data` under `key`.
    pub fn mac(key: &[u8; POLY1305_KEY_LEN], data: &[u8]) -> [u8; POLY1305_TAG_LEN] {
        let mut st = Self::new(key);
        st.update(data);
        st.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{hex_decode, hex_encode};

    /// RFC 8439 §2.5.2 test vector.
    #[test]
    fn rfc8439_mac_vector() {
        let key: [u8; 32] =
            hex_decode("85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b")
                .unwrap()
                .try_into()
                .unwrap();
        let tag = Poly1305::mac(&key, b"Cryptographic Forum Research Group");
        assert_eq!(hex_encode(&tag), "a8061dc1305136c6c22b8baf0c0127a9");
    }

    /// RFC 8439 §A.3 vector #1: all-zero key and message give an all-zero tag.
    #[test]
    fn rfc8439_a3_vector_1() {
        let tag = Poly1305::mac(&[0u8; 32], &[0u8; 64]);
        assert_eq!(tag, [0u8; 16]);
    }

    /// RFC 8439 §A.3 vector #2: r = 0, s = nonzero; tag equals s.
    #[test]
    fn rfc8439_a3_vector_2() {
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&hex_decode("36e5f6b5c5e06070f0efca96227a863e").unwrap());
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, msg);
        assert_eq!(hex_encode(&tag), "36e5f6b5c5e06070f0efca96227a863e");
    }

    /// RFC 8439 §A.3 vector #3: s = 0.
    #[test]
    fn rfc8439_a3_vector_3() {
        let mut key = [0u8; 32];
        key[..16].copy_from_slice(&hex_decode("36e5f6b5c5e06070f0efca96227a863e").unwrap());
        let msg = b"Any submission to the IETF intended by the Contributor for publication as all or part of an IETF Internet-Draft or RFC and any statement made within the context of an IETF activity is considered an \"IETF Contribution\". Such statements include oral statements in IETF sessions, as well as written and electronic communications made at any time or place, which are addressed to";
        let tag = Poly1305::mac(&key, msg);
        assert_eq!(hex_encode(&tag), "f3477e7cd95417af89a6b8794c310cf0");
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let key = crate::random_key();
        let data: Vec<u8> = (0..259u32).map(|i| (i * 7 % 256) as u8).collect();
        let one_shot = Poly1305::mac(&key, &data);
        // Feed in awkward chunk sizes crossing block boundaries.
        for chunk_len in [1usize, 3, 15, 16, 17, 33, 100] {
            let mut st = Poly1305::new(&key);
            for chunk in data.chunks(chunk_len) {
                st.update(chunk);
            }
            assert_eq!(st.finalize(), one_shot, "chunk_len={chunk_len}");
        }
    }

    #[test]
    fn different_messages_give_different_tags() {
        let key = crate::random_key();
        assert_ne!(Poly1305::mac(&key, b"hello"), Poly1305::mac(&key, b"hellp"));
    }

    #[test]
    fn empty_message_is_pad_only() {
        // With no blocks processed, h stays 0 and the tag is exactly s.
        let mut key = [0u8; 32];
        key[16..].copy_from_slice(&[0xAA; 16]);
        assert_eq!(Poly1305::mac(&key, b""), [0xAA; 16]);
    }
}
