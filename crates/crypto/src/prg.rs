//! The pseudorandom generator used to expand DPF tree nodes.
//!
//! A distributed point function (paper §2.2, citing Boyle-Gilboa-Ishai) is a
//! binary tree of 128-bit seeds. At every internal node the evaluator calls a
//! length-doubling PRG `G : {0,1}^128 → {0,1}^(2·128+2)` producing a left
//! seed, a right seed, and two control bits. At the leaves, a *conversion*
//! PRG stretches the final seed into a block of output bits so that one leaf
//! can cover many consecutive domain points ("early termination") — this is
//! what makes full-domain evaluation over a 2^22-slot domain affordable and
//! is the half of the per-request cost the paper attributes to "DPF
//! evaluation" (64 of 167 ms in §5.1).
//!
//! We instantiate `G` with the ChaCha8 block function keyed by the seed.
//! One 64-byte ChaCha block yields both child seeds and the control bits;
//! leaf conversion draws as many blocks as the requested output width needs.

use crate::chacha::{chacha_permute, CHACHA_BLOCK_LEN};

/// DPF seeds are 128 bits, the security parameter λ the paper uses when
/// reporting the key size (λ + 2)·d in §5.1.
pub const SEED_LEN: usize = 16;

/// A 128-bit DPF seed.
pub type Seed = [u8; SEED_LEN];

/// Result of a node expansion: child seeds and control bits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Expanded {
    /// Seed for the left child.
    pub left_seed: Seed,
    /// Control bit for the left child.
    pub left_bit: bool,
    /// Seed for the right child.
    pub right_seed: Seed,
    /// Control bit for the right child.
    pub right_bit: bool,
}

/// Deterministic PRG used by every party evaluating a DPF.
///
/// The PRG is *unkeyed* apart from the seed (all parties must expand nodes
/// identically); distinct invocation contexts (node expansion vs leaf
/// conversion vs block index) are separated through the ChaCha nonce.
#[derive(Clone, Copy, Debug, Default)]
pub struct DpfPrg;

/// Nonce domain-separation tags.
const TAG_EXPAND: u8 = 1;
const TAG_CONVERT: u8 = 2;

impl DpfPrg {
    /// Create the (stateless) PRG.
    pub fn new() -> Self {
        Self
    }

    #[inline(always)]
    fn block(seed: &Seed, tag: u8, counter: u32, out: &mut [u8; CHACHA_BLOCK_LEN]) {
        // Build the ChaCha state directly: constants, key = seed || seed,
        // counter, nonce = [tag, 0, 0].
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..4 {
            let w = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
            state[4 + i] = w;
            state[8 + i] = w ^ 0x5c5c_5c5c; // second key half: tweaked copy
        }
        state[12] = counter;
        state[13] = tag as u32;
        state[14] = 0;
        state[15] = 0;
        chacha_permute(&state, 8, out);
    }

    /// Expand one node seed into two child seeds plus control bits.
    #[inline]
    pub fn expand(&self, seed: &Seed) -> Expanded {
        let mut out = [0u8; CHACHA_BLOCK_LEN];
        Self::block(seed, TAG_EXPAND, 0, &mut out);
        let mut left_seed = [0u8; SEED_LEN];
        let mut right_seed = [0u8; SEED_LEN];
        left_seed.copy_from_slice(&out[0..16]);
        right_seed.copy_from_slice(&out[16..32]);
        Expanded {
            left_seed,
            left_bit: out[32] & 1 == 1,
            right_seed,
            right_bit: out[33] & 1 == 1,
        }
    }

    /// Leaf conversion: stretch `seed` into `out.len()` pseudorandom bytes.
    ///
    /// `out.len()` determines the early-termination width: a leaf covering
    /// 2^ν domain points needs 2^ν bits, i.e. `out.len() = 2^ν / 8`.
    pub fn convert(&self, seed: &Seed, out: &mut [u8]) {
        let mut block = [0u8; CHACHA_BLOCK_LEN];
        for (i, chunk) in out.chunks_mut(CHACHA_BLOCK_LEN).enumerate() {
            Self::block(seed, TAG_CONVERT, i as u32, &mut block);
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic() {
        let prg = DpfPrg::new();
        let seed = [42u8; 16];
        assert_eq!(prg.expand(&seed), prg.expand(&seed));
    }

    #[test]
    fn children_differ_from_parent_and_each_other() {
        let prg = DpfPrg::new();
        let seed = [7u8; 16];
        let e = prg.expand(&seed);
        assert_ne!(e.left_seed, seed);
        assert_ne!(e.right_seed, seed);
        assert_ne!(e.left_seed, e.right_seed);
    }

    #[test]
    fn distinct_seeds_expand_differently() {
        let prg = DpfPrg::new();
        let a = prg.expand(&[1u8; 16]);
        let b = prg.expand(&[2u8; 16]);
        assert_ne!(a.left_seed, b.left_seed);
        assert_ne!(a.right_seed, b.right_seed);
    }

    #[test]
    fn convert_is_deterministic_and_prefix_consistent() {
        let prg = DpfPrg::new();
        let seed = [9u8; 16];
        let mut long = vec![0u8; 200];
        let mut short = vec![0u8; 64];
        prg.convert(&seed, &mut long);
        prg.convert(&seed, &mut short);
        assert_eq!(&long[..64], &short[..]);
    }

    #[test]
    fn convert_differs_from_expand_output() {
        // Domain separation: the conversion stream must not equal the
        // expansion stream for the same seed.
        let prg = DpfPrg::new();
        let seed = [5u8; 16];
        let e = prg.expand(&seed);
        let mut conv = [0u8; 16];
        prg.convert(&seed, &mut conv);
        assert_ne!(conv, e.left_seed);
    }

    #[test]
    fn convert_handles_odd_lengths() {
        let prg = DpfPrg::new();
        for len in [1usize, 16, 63, 64, 65, 127, 128, 513] {
            let mut out = vec![0u8; len];
            prg.convert(&[3u8; 16], &mut out);
            // Pseudorandom output of length >= 8 should never be all zeros.
            if len >= 8 {
                assert!(out.iter().any(|&b| b != 0), "len={len}");
            }
        }
    }

    #[test]
    fn control_bits_are_roughly_balanced() {
        // Over 1024 random seeds each control bit should be ~50/50.
        let prg = DpfPrg::new();
        let mut left = 0usize;
        let mut right = 0usize;
        for i in 0..1024u32 {
            let mut seed = [0u8; 16];
            seed[..4].copy_from_slice(&i.to_le_bytes());
            let e = prg.expand(&seed);
            left += e.left_bit as usize;
            right += e.right_bit as usize;
        }
        assert!((350..=674).contains(&left), "left bit biased: {left}/1024");
        assert!(
            (350..=674).contains(&right),
            "right bit biased: {right}/1024"
        );
    }
}
