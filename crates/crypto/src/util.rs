//! Small shared utilities: hex, constant-time comparison, XOR helpers.

/// Encode bytes as lowercase hex.
pub fn hex_encode(data: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(data.len() * 2);
    for &b in data {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

/// Decode a hex string (case-insensitive). Returns `None` on odd length or
/// non-hex characters.
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Some(out)
}

/// Constant-time equality for equal-length byte slices.
///
/// Returns `false` immediately on length mismatch (lengths are public in
/// every lightweb use — tags and seeds are fixed-size).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Map 0 -> true without a data-dependent branch on the bytes.
    diff == 0
}

/// XOR `src` into `dst` in place. Panics if lengths differ: XOR-accumulation
/// over mismatched buffers is always a logic error in the PIR scan.
pub fn xor_in_place(dst: &mut [u8], src: &[u8]) {
    xor_in_place_masked(dst, src, 0xFF);
}

/// XOR `src & broadcast(mask)` into `dst`: the branch-free conditional
/// accumulate at the heart of the PIR linear scan (§5.1 of the paper).
/// `mask` must be 0x00 or 0xFF.
///
/// Word-at-a-time via unaligned 64-bit loads (`from_ne_bytes` compiles to a
/// single unaligned load on every mainstream target), so `dst` and `src`
/// need not share alignment — records in the scan buffer usually don't.
pub fn xor_in_place_masked(dst: &mut [u8], src: &[u8], mask: u8) {
    debug_assert!(mask == 0 || mask == 0xFF);
    assert_eq!(dst.len(), src.len(), "xor_in_place length mismatch");
    let wide = u64::from_ne_bytes([mask; 8]);
    let mut d_chunks = dst.chunks_exact_mut(8);
    let mut s_chunks = src.chunks_exact(8);
    for (d, s) in (&mut d_chunks).zip(&mut s_chunks) {
        let dv = u64::from_ne_bytes(d.as_ref().try_into().unwrap());
        let sv = u64::from_ne_bytes(s.try_into().unwrap());
        d.copy_from_slice(&(dv ^ (sv & wide)).to_ne_bytes());
    }
    for (d, s) in d_chunks
        .into_remainder()
        .iter_mut()
        .zip(s_chunks.remainder().iter())
    {
        *d ^= *s & mask;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
    }

    #[test]
    fn hex_decode_rejects_bad_input() {
        assert!(hex_decode("abc").is_none(), "odd length");
        assert!(hex_decode("zz").is_none(), "non-hex chars");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn hex_decode_accepts_uppercase() {
        assert_eq!(
            hex_decode("DEADBEEF").unwrap(),
            vec![0xde, 0xad, 0xbe, 0xef]
        );
    }

    #[test]
    fn ct_eq_basic() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"abcd"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn xor_in_place_is_involution() {
        let a: Vec<u8> = (0..100).collect();
        let b: Vec<u8> = (0..100u8).map(|i| i.wrapping_mul(3)).collect();
        let mut c = a.clone();
        xor_in_place(&mut c, &b);
        xor_in_place(&mut c, &b);
        assert_eq!(c, a);
    }

    #[test]
    fn xor_masked_zero_is_identity() {
        let mut dst = vec![0x55u8; 37];
        let src = vec![0xFFu8; 37];
        xor_in_place_masked(&mut dst, &src, 0x00);
        assert_eq!(dst, vec![0x55u8; 37]);
    }

    #[test]
    fn xor_masked_ff_equals_plain_xor() {
        let mut a = vec![0x55u8; 37];
        let mut b = a.clone();
        let src: Vec<u8> = (0..37).collect();
        xor_in_place(&mut a, &src);
        xor_in_place_masked(&mut b, &src, 0xFF);
        assert_eq!(a, b);
    }

    #[test]
    fn xor_handles_unaligned_lengths() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65] {
            let mut dst = vec![0u8; len];
            let src: Vec<u8> = (0..len as u8).collect();
            xor_in_place(&mut dst, &src);
            assert_eq!(dst, src, "len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn xor_length_mismatch_panics() {
        xor_in_place(&mut [0u8; 3], &[0u8; 4]);
    }
}
