//! SipHash-2-4, a fast keyed pseudorandom function over short inputs.
//!
//! ZLTP's two-server PIR mode retrieves key-value pairs "by keyword"
//! (paper §2.2, citing Chor-Gilboa-Naor): the client and servers share a
//! public hash that maps an arbitrary path string such as
//! `nytimes.com/world/africa/headlines.json` onto a slot in the DPF output
//! domain of size 2^d. §5.1 sizes that domain at 2^22 for ~2^20 stored pairs
//! so the collision probability for a fresh key stays below 1/4.
//!
//! SipHash is the right tool: keyed (each universe epoch can re-seed to
//! resolve collisions), fast on short strings, and trivially portable.

/// A SipHash-2-4 instance with a fixed 128-bit key.
#[derive(Clone, Copy, Debug)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

#[inline(always)]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

impl SipHash24 {
    /// Create an instance from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        Self {
            k0: u64::from_le_bytes(key[..8].try_into().unwrap()),
            k1: u64::from_le_bytes(key[8..].try_into().unwrap()),
        }
    }

    /// Create an instance from two 64-bit key halves.
    pub fn from_halves(k0: u64, k1: u64) -> Self {
        Self { k0, k1 }
    }

    /// Hash a byte string to 64 bits.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v = [
            self.k0 ^ 0x736f_6d65_7073_6575,
            self.k1 ^ 0x646f_7261_6e64_6f6d,
            self.k0 ^ 0x6c79_6765_6e65_7261,
            self.k1 ^ 0x7465_6462_7974_6573,
        ];

        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let m = u64::from_le_bytes(chunk.try_into().unwrap());
            v[3] ^= m;
            sipround(&mut v);
            sipround(&mut v);
            v[0] ^= m;
        }

        // Final block: remaining bytes plus the length byte in the MSB.
        let rem = chunks.remainder();
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        last[7] = data.len() as u8;
        let m = u64::from_le_bytes(last);
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;

        v[2] ^= 0xff;
        sipround(&mut v);
        sipround(&mut v);
        sipround(&mut v);
        sipround(&mut v);

        v[0] ^ v[1] ^ v[2] ^ v[3]
    }

    /// Hash a string onto a domain of size `2^domain_bits`.
    ///
    /// This is the keyword→slot map used by keyword PIR. `domain_bits` must
    /// be at most 64.
    pub fn hash_to_domain(&self, data: &[u8], domain_bits: u32) -> u64 {
        assert!(domain_bits <= 64, "domain too large");
        let h = self.hash(data);
        if domain_bits == 64 {
            h
        } else {
            h & ((1u64 << domain_bits) - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference test vectors from the SipHash paper / reference
    /// implementation (`vectors_sip64`), key = 00 01 02 ... 0f and messages
    /// 00, 00 01, 00 01 02, ...
    #[test]
    fn reference_vectors() {
        let mut key = [0u8; 16];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let sip = SipHash24::new(&key);
        let expected: [u64; 8] = [
            0x726f_db47_dd0e_0e31,
            0x74f8_39c5_93dc_67fd,
            0x0d6c_8009_d9a9_4f5a,
            0x8567_6696_d7fb_7e2d,
            0xcf27_94e0_2771_87b7,
            0x1876_5564_cd99_a68d,
            0xcbc9_466e_58fe_e3ce,
            0xab02_00f5_8b01_d137,
        ];
        let msg: Vec<u8> = (0..8).collect();
        for (len, want) in expected.iter().enumerate() {
            assert_eq!(sip.hash(&msg[..len]), *want, "message length {len}");
        }
    }

    #[test]
    fn different_keys_give_different_hashes() {
        let a = SipHash24::from_halves(1, 2);
        let b = SipHash24::from_halves(3, 4);
        assert_ne!(a.hash(b"lightweb"), b.hash(b"lightweb"));
    }

    #[test]
    fn hash_to_domain_is_in_range() {
        let sip = SipHash24::from_halves(42, 43);
        for bits in [1u32, 8, 22, 63, 64] {
            for i in 0..100u32 {
                let h = sip.hash_to_domain(&i.to_le_bytes(), bits);
                if bits < 64 {
                    assert!(h < (1u64 << bits), "bits={bits} h={h}");
                }
            }
        }
    }

    #[test]
    fn hash_to_domain_roughly_uniform() {
        // Hash 4096 keys into 4 buckets; each bucket should get 1024 ± a
        // generous slack. Catches e.g. masking the wrong bits.
        let sip = SipHash24::from_halves(7, 11);
        let mut counts = [0usize; 4];
        for i in 0..4096u32 {
            counts[sip.hash_to_domain(format!("page-{i}").as_bytes(), 2) as usize] += 1;
        }
        for c in counts {
            assert!((700..1400).contains(&c), "badly skewed bucket: {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "domain too large")]
    fn oversized_domain_rejected() {
        SipHash24::from_halves(0, 0).hash_to_domain(b"x", 65);
    }
}
