//! ChaCha20-Poly1305 AEAD (RFC 8439), composed from the primitives in this
//! crate.
//!
//! Lightweb's access-control story (paper §3.3) is encryption-at-rest: the
//! CDN stores only ciphertext data blobs for paywalled domains, and the
//! publisher distributes decryption keys out of band to paying users,
//! rotating keys to revoke access. That requires an authenticated cipher so
//! that a client can detect blobs encrypted under a rotated-out key (or a
//! tampering CDN) instead of rendering garbage; this module provides it.

use crate::chacha::{ChaCha, CHACHA_KEY_LEN, CHACHA_NONCE_LEN};
use crate::poly1305::{Poly1305, POLY1305_TAG_LEN};
use crate::util::ct_eq;

/// AEAD key length (32 bytes).
pub const AEAD_KEY_LEN: usize = CHACHA_KEY_LEN;
/// AEAD nonce length (12 bytes).
pub const AEAD_NONCE_LEN: usize = CHACHA_NONCE_LEN;
/// AEAD tag length (16 bytes).
pub const AEAD_TAG_LEN: usize = POLY1305_TAG_LEN;

/// Errors returned by AEAD operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AeadError {
    /// The ciphertext is shorter than a tag, or the tag failed to verify.
    /// Deliberately carries no detail: distinguishing "truncated" from
    /// "forged" would be an oracle.
    InvalidCiphertext,
}

impl std::fmt::Display for AeadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEAD ciphertext rejected")
    }
}

impl std::error::Error for AeadError {}

/// A ChaCha20-Poly1305 AEAD instance bound to one key.
#[derive(Clone)]
pub struct ChaCha20Poly1305 {
    key: [u8; AEAD_KEY_LEN],
}

impl ChaCha20Poly1305 {
    /// Create an AEAD instance from a 256-bit key.
    pub fn new(key: &[u8; AEAD_KEY_LEN]) -> Self {
        Self { key: *key }
    }

    /// Derive the one-time Poly1305 key for `nonce` (RFC 8439 §2.6): the
    /// first 32 bytes of ChaCha20 keystream block 0.
    fn poly_key(&self, nonce: &[u8; AEAD_NONCE_LEN]) -> [u8; 32] {
        let cipher = ChaCha::chacha20(&self.key, nonce);
        let mut block = [0u8; 64];
        cipher.keystream_block(0, &mut block);
        let mut pk = [0u8; 32];
        pk.copy_from_slice(&block[..32]);
        pk
    }

    /// Compute the RFC 8439 MAC over `aad` and `ciphertext`.
    fn tag(
        &self,
        nonce: &[u8; AEAD_NONCE_LEN],
        aad: &[u8],
        ciphertext: &[u8],
    ) -> [u8; AEAD_TAG_LEN] {
        let pk = self.poly_key(nonce);
        let mut mac = Poly1305::new(&pk);
        let zeros = [0u8; 16];
        mac.update(aad);
        mac.update(&zeros[..(16 - aad.len() % 16) % 16]);
        mac.update(ciphertext);
        mac.update(&zeros[..(16 - ciphertext.len() % 16) % 16]);
        mac.update(&(aad.len() as u64).to_le_bytes());
        mac.update(&(ciphertext.len() as u64).to_le_bytes());
        mac.finalize()
    }

    /// Encrypt `plaintext` with associated data `aad`, returning
    /// `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8; AEAD_NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = plaintext.to_vec();
        ChaCha::chacha20(&self.key, nonce).apply_keystream(1, &mut out);
        let tag = self.tag(nonce, aad, &out);
        out.extend_from_slice(&tag);
        out
    }

    /// Verify and decrypt `ciphertext || tag`. Returns the plaintext, or an
    /// error if the tag does not verify.
    pub fn open(
        &self,
        nonce: &[u8; AEAD_NONCE_LEN],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
    ) -> Result<Vec<u8>, AeadError> {
        if ciphertext_and_tag.len() < AEAD_TAG_LEN {
            return Err(AeadError::InvalidCiphertext);
        }
        let split = ciphertext_and_tag.len() - AEAD_TAG_LEN;
        let (ct, tag) = ciphertext_and_tag.split_at(split);
        let expected = self.tag(nonce, aad, ct);
        if !ct_eq(&expected, tag) {
            return Err(AeadError::InvalidCiphertext);
        }
        let mut out = ct.to_vec();
        ChaCha::chacha20(&self.key, nonce).apply_keystream(1, &mut out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{hex_decode, hex_encode};

    /// RFC 8439 §2.8.2 AEAD test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let key: [u8; 32] = (0x80u8..0xa0).collect::<Vec<_>>().try_into().unwrap();
        let nonce: [u8; 12] = hex_decode("070000004041424344454647")
            .unwrap()
            .try_into()
            .unwrap();
        let aad = hex_decode("50515253c0c1c2c3c4c5c6c7").unwrap();
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it.";
        let aead = ChaCha20Poly1305::new(&key);
        let out = aead.seal(&nonce, &aad, plaintext);
        let (ct, tag) = out.split_at(out.len() - 16);
        let expected_ct = hex_decode(
            "d31a8d34648e60db7b86afbc53ef7ec2a4aded51296e08fea9e2b5a736ee62d6\
             3dbea45e8ca9671282fafb69da92728b1a71de0a9e060b2905d6a5b67ecd3b36\
             92ddbd7f2d778b8c9803aee328091b58fab324e4fad675945585808b4831d7bc\
             3ff4def08e4b7a9de576d26586cec64b6116",
        )
        .unwrap();
        assert_eq!(ct.to_vec(), expected_ct);
        assert_eq!(hex_encode(tag), "1ae10b594f09e26a7e902ecbd0600691");

        // And decryption succeeds.
        let pt = aead.open(&nonce, &aad, &out).unwrap();
        assert_eq!(pt, plaintext);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let key = crate::random_key();
        let aead = ChaCha20Poly1305::new(&key);
        let nonce = [1u8; 12];
        for len in [0usize, 1, 15, 16, 17, 64, 100, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
            let ct = aead.seal(&nonce, b"blob-path", &pt);
            assert_eq!(ct.len(), len + AEAD_TAG_LEN);
            assert_eq!(
                aead.open(&nonce, b"blob-path", &ct).unwrap(),
                pt,
                "len={len}"
            );
        }
    }

    #[test]
    fn tampered_ciphertext_is_rejected() {
        let aead = ChaCha20Poly1305::new(&crate::random_key());
        let nonce = [2u8; 12];
        let mut ct = aead.seal(&nonce, b"", b"secret page body");
        for i in 0..ct.len() {
            let mut bad = ct.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                aead.open(&nonce, b"", &bad),
                Err(AeadError::InvalidCiphertext),
                "flip at byte {i} accepted"
            );
        }
        // Untampered still opens (ct unchanged).
        ct.truncate(ct.len());
        assert!(aead.open(&nonce, b"", &ct).is_ok());
    }

    #[test]
    fn wrong_aad_is_rejected() {
        let aead = ChaCha20Poly1305::new(&crate::random_key());
        let nonce = [3u8; 12];
        let ct = aead.seal(&nonce, b"path-a", b"body");
        assert!(aead.open(&nonce, b"path-b", &ct).is_err());
    }

    #[test]
    fn wrong_key_is_rejected() {
        let nonce = [4u8; 12];
        let ct = ChaCha20Poly1305::new(&crate::random_key()).seal(&nonce, b"", b"body");
        assert!(ChaCha20Poly1305::new(&crate::random_key())
            .open(&nonce, b"", &ct)
            .is_err());
    }

    #[test]
    fn wrong_nonce_is_rejected() {
        let aead = ChaCha20Poly1305::new(&crate::random_key());
        let ct = aead.seal(&[5u8; 12], b"", b"body");
        assert!(aead.open(&[6u8; 12], b"", &ct).is_err());
    }

    #[test]
    fn truncated_ciphertext_is_rejected() {
        let aead = ChaCha20Poly1305::new(&crate::random_key());
        let nonce = [7u8; 12];
        let ct = aead.seal(&nonce, b"", b"body");
        for len in 0..ct.len() {
            assert!(aead.open(&nonce, b"", &ct[..len]).is_err(), "len={len}");
        }
    }
}
