//! The ChaCha family of stream ciphers (RFC 8439), implemented from scratch.
//!
//! ZLTP uses ChaCha in two places: ChaCha20 is the stream-cipher half of the
//! [`crate::aead`] construction used for lightweb's access-control layer, and
//! a reduced-round ChaCha8 block function is the core of the DPF node PRG
//! ([`crate::prg`]). Reduced-round ChaCha is the standard PRG choice in
//! production function-secret-sharing code because a full-domain DPF
//! evaluation performs one PRG call per tree node and the PRG dominates the
//! "DPF evaluation" half of the per-request cost the paper measures in §5.1.

/// Length in bytes of a ChaCha key.
pub const CHACHA_KEY_LEN: usize = 32;
/// Length in bytes of a ChaCha (IETF) nonce.
pub const CHACHA_NONCE_LEN: usize = 12;
/// Length in bytes of one ChaCha output block.
pub const CHACHA_BLOCK_LEN: usize = 64;

/// The ChaCha constants `"expand 32-byte k"` as little-endian words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

#[inline(always)]
fn double_round(state: &mut [u32; 16]) {
    quarter_round(state, 0, 4, 8, 12);
    quarter_round(state, 1, 5, 9, 13);
    quarter_round(state, 2, 6, 10, 14);
    quarter_round(state, 3, 7, 11, 15);
    quarter_round(state, 0, 5, 10, 15);
    quarter_round(state, 1, 6, 11, 12);
    quarter_round(state, 2, 7, 8, 13);
    quarter_round(state, 3, 4, 9, 14);
}

/// Run the ChaCha permutation with `rounds` rounds over `input`, writing the
/// feed-forward result into `out` as 16 little-endian words.
///
/// `rounds` must be even (ChaCha is specified in double rounds).
#[inline]
pub fn chacha_permute(input: &[u32; 16], rounds: usize, out: &mut [u8; CHACHA_BLOCK_LEN]) {
    debug_assert!(rounds.is_multiple_of(2), "ChaCha round count must be even");
    let mut state = *input;
    for _ in 0..rounds / 2 {
        double_round(&mut state);
    }
    for (i, word) in state.iter_mut().enumerate() {
        *word = word.wrapping_add(input[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
}

/// Build the initial ChaCha state matrix from key / counter / nonce.
#[inline]
fn init_state(
    key: &[u8; CHACHA_KEY_LEN],
    counter: u32,
    nonce: &[u8; CHACHA_NONCE_LEN],
) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state
}

/// A ChaCha stream cipher instance with a configurable round count.
///
/// `ChaCha::chacha20` is the RFC 8439 cipher; `ChaCha::chacha8` is the
/// reduced-round variant used as the DPF PRG. The instance is positioned with
/// an explicit 32-bit block counter, matching the IETF flavour (96-bit nonce,
/// 32-bit counter, 256 GiB max stream length — far beyond any ZLTP message).
#[derive(Clone)]
pub struct ChaCha {
    key: [u8; CHACHA_KEY_LEN],
    nonce: [u8; CHACHA_NONCE_LEN],
    rounds: usize,
}

impl ChaCha {
    /// Create a ChaCha instance with an explicit round count (must be even).
    pub fn new(key: &[u8; CHACHA_KEY_LEN], nonce: &[u8; CHACHA_NONCE_LEN], rounds: usize) -> Self {
        assert!(
            rounds >= 2 && rounds.is_multiple_of(2),
            "invalid ChaCha round count {rounds}"
        );
        Self {
            key: *key,
            nonce: *nonce,
            rounds,
        }
    }

    /// RFC 8439 ChaCha20.
    pub fn chacha20(key: &[u8; CHACHA_KEY_LEN], nonce: &[u8; CHACHA_NONCE_LEN]) -> Self {
        Self::new(key, nonce, 20)
    }

    /// Reduced-round ChaCha8 (PRG use only).
    pub fn chacha8(key: &[u8; CHACHA_KEY_LEN], nonce: &[u8; CHACHA_NONCE_LEN]) -> Self {
        Self::new(key, nonce, 8)
    }

    /// Generate the keystream block at `counter` into `out`.
    pub fn keystream_block(&self, counter: u32, out: &mut [u8; CHACHA_BLOCK_LEN]) {
        let state = init_state(&self.key, counter, &self.nonce);
        chacha_permute(&state, self.rounds, out);
    }

    /// XOR the keystream starting at block `counter` into `data` in place.
    ///
    /// Encrypt and decrypt are the same operation. Returns the counter value
    /// one past the last block consumed, so callers can continue the stream.
    pub fn apply_keystream(&self, mut counter: u32, data: &mut [u8]) -> u32 {
        let mut block = [0u8; CHACHA_BLOCK_LEN];
        for chunk in data.chunks_mut(CHACHA_BLOCK_LEN) {
            self.keystream_block(counter, &mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
            counter = counter
                .checked_add(1)
                .expect("ChaCha 32-bit block counter overflow (message too long)");
        }
        counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::hex_decode;

    fn key_0_31() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    /// RFC 8439 §2.3.2: ChaCha20 block function test vector.
    #[test]
    fn rfc8439_block_function_vector() {
        let key = key_0_31();
        let nonce = hex_decode("000000090000004a00000000").unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let cipher = ChaCha::chacha20(&key, &nonce);
        let mut out = [0u8; 64];
        cipher.keystream_block(1, &mut out);
        let expected = hex_decode(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        )
        .unwrap();
        assert_eq!(out.to_vec(), expected);
    }

    /// RFC 8439 §2.4.2: ChaCha20 encryption test vector.
    #[test]
    fn rfc8439_encryption_vector() {
        let key = key_0_31();
        let nonce = hex_decode("000000000000004a00000000").unwrap();
        let nonce: [u8; 12] = nonce.try_into().unwrap();
        let cipher = ChaCha::chacha20(&key, &nonce);
        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
only one tip for the future, sunscreen would be it."
            .to_vec();
        cipher.apply_keystream(1, &mut data);
        let expected = hex_decode(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42874d",
        )
        .unwrap();
        assert_eq!(data, expected);
    }

    #[test]
    fn encrypt_then_decrypt_roundtrips() {
        let key = crate::random_key();
        let nonce = [7u8; 12];
        let cipher = ChaCha::chacha20(&key, &nonce);
        let plaintext: Vec<u8> = (0..1000).map(|i| (i % 251) as u8).collect();
        let mut data = plaintext.clone();
        cipher.apply_keystream(0, &mut data);
        assert_ne!(data, plaintext);
        cipher.apply_keystream(0, &mut data);
        assert_eq!(data, plaintext);
    }

    #[test]
    fn distinct_counters_give_distinct_blocks() {
        let cipher = ChaCha::chacha20(&[1u8; 32], &[2u8; 12]);
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        cipher.keystream_block(0, &mut a);
        cipher.keystream_block(1, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn chacha8_differs_from_chacha20() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        ChaCha::chacha8(&key, &nonce).keystream_block(0, &mut a);
        ChaCha::chacha20(&key, &nonce).keystream_block(0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn apply_keystream_returns_next_counter() {
        let cipher = ChaCha::chacha20(&[0u8; 32], &[0u8; 12]);
        let mut data = vec![0u8; 130]; // 3 blocks (2 full + 1 partial)
        assert_eq!(cipher.apply_keystream(5, &mut data), 8);
    }

    #[test]
    fn streaming_matches_one_shot() {
        // Applying the keystream in two chunks at block-aligned offsets must
        // equal applying it in one call.
        let cipher = ChaCha::chacha20(&[9u8; 32], &[1u8; 12]);
        let mut whole = vec![0xAB; 256];
        cipher.apply_keystream(0, &mut whole);

        let mut parts = vec![0xAB; 256];
        let next = cipher.apply_keystream(0, &mut parts[..128]);
        cipher.apply_keystream(next, &mut parts[128..]);
        assert_eq!(whole, parts);
    }

    #[test]
    #[should_panic(expected = "invalid ChaCha round count")]
    fn odd_round_count_rejected() {
        let _ = ChaCha::new(&[0u8; 32], &[0u8; 12], 7);
    }
}
