#![warn(missing_docs)]

//! # lightweb-crypto
//!
//! From-scratch cryptographic substrates for the lightweb reproduction.
//!
//! The lightweb paper (Dauterman & Corrigan-Gibbs, HotNets '23) builds its
//! zero-leakage transfer protocol (ZLTP) out of a small number of symmetric
//! primitives:
//!
//! * a **pseudorandom generator** used to expand distributed-point-function
//!   (DPF) tree nodes ([`prg`]),
//! * a **keyed hash** that maps keyword keys onto the DPF output domain
//!   ([`siphash`]),
//! * an **AEAD** used for the access-control / paywall mechanism of §3.3–3.4,
//!   where the CDN stores only ciphertexts and publishers hand decryption
//!   keys to authorized clients ([`aead`]).
//!
//! Everything here is implemented from scratch on top of `std` (plus `rand`
//! for entropy), with RFC 8439 test vectors where they exist. The
//! implementations favour clarity and portability over raw speed; the
//! benchmark harness documents the measured throughput so that the paper's
//! AVX-accelerated numbers can be compared on equal footing.
//!
//! None of this code has been audited; it exists to reproduce a research
//! system, not to protect production traffic.

pub mod aead;
pub mod chacha;
pub mod poly1305;
pub mod prg;
pub mod siphash;
pub mod util;

pub use aead::{AeadError, ChaCha20Poly1305, AEAD_KEY_LEN, AEAD_NONCE_LEN, AEAD_TAG_LEN};
pub use chacha::{ChaCha, CHACHA_KEY_LEN, CHACHA_NONCE_LEN};
pub use prg::{DpfPrg, Seed, SEED_LEN};
pub use siphash::SipHash24;
pub use util::{ct_eq, hex_decode, hex_encode, xor_in_place};

/// Fill `buf` with cryptographically secure random bytes.
///
/// Thin wrapper over the operating-system RNG so that the rest of the
/// workspace has a single entropy entry point that can be swapped for a
/// deterministic source in tests.
pub fn fill_random(buf: &mut [u8]) {
    use rand::RngCore;
    rand::rngs::OsRng.fill_bytes(buf);
}

/// Sample a fresh random 128-bit DPF seed.
pub fn random_seed() -> Seed {
    let mut s = [0u8; SEED_LEN];
    fill_random(&mut s);
    s
}

/// Sample a fresh random 256-bit symmetric key.
pub fn random_key() -> [u8; 32] {
    let mut k = [0u8; 32];
    fill_random(&mut k);
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_seed_is_not_constant() {
        // Astronomically unlikely to collide; guards against a stubbed RNG.
        assert_ne!(random_seed(), random_seed());
    }

    #[test]
    fn random_key_is_not_constant() {
        assert_ne!(random_key(), random_key());
    }

    #[test]
    fn fill_random_covers_whole_buffer() {
        let mut buf = [0u8; 1024];
        fill_random(&mut buf);
        // With 1024 random bytes the chance that any 64-byte window is all
        // zero is negligible.
        assert!(buf.chunks(64).all(|c| c.iter().any(|&b| b != 0)));
    }
}
