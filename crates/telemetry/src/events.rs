//! Optional JSON-lines event sink.
//!
//! When no sink is installed (the default), [`emit`] is a no-op guarded
//! by one relaxed atomic load, so instrumented code pays nothing in
//! normal operation. Installing a sink (e.g. stdout for
//! `reproduce --json`) turns every [`emit`] — and every [`crate::span!`]
//! exit — into one JSON object per line:
//!
//! ```text
//! {"ts_us":123456,"event":"pir.scan.ns","ns":104857600}
//! ```
//!
//! Events are formatted into a per-thread buffer and flushed to the
//! shared writer when the buffer passes a size threshold, on [`flush`],
//! or when the thread exits — so concurrent emitters contend on the
//! writer lock only once per ~8 KiB, and lines are never interleaved
//! mid-record. `ts_us` is microseconds since sink installation.
//!
//! The buffer is **bounded**: threshold flushes only `try_lock` the
//! writer, and if the writer stays contended (or stuck) until a
//! thread's buffer reaches [`MAX_BUFFER`], further events on that
//! thread are dropped and counted in the `telemetry.events.dropped`
//! counter rather than growing memory without limit. Buffered events
//! are flushed when the thread exits (blocking, at most one buffer).

use parking_lot::Mutex;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Flush a thread's buffer to the writer once it exceeds this size.
const FLUSH_THRESHOLD: usize = 8 * 1024;

/// Hard cap on one thread's event buffer. Events emitted while the
/// buffer is at the cap (because the writer is contended or stuck) are
/// dropped and counted in `telemetry.events.dropped`.
pub const MAX_BUFFER: usize = 64 * 1024;

struct Sink {
    writer: Mutex<Box<dyn Write + Send>>,
    epoch: Instant,
}

static SINK: OnceLock<Mutex<Option<Arc<Sink>>>> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static Mutex<Option<Arc<Sink>>> {
    SINK.get_or_init(|| Mutex::new(None))
}

fn current_sink() -> Option<Arc<Sink>> {
    if !enabled() {
        return None;
    }
    sink_slot().lock().clone()
}

/// Whether a sink is installed. One relaxed load — cheap enough to guard
/// hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `writer` as the process-wide event sink, replacing any
/// previous one (whose buffered events are flushed first).
pub fn install(writer: Box<dyn Write + Send>) {
    flush();
    *sink_slot().lock() = Some(Arc::new(Sink {
        writer: Mutex::new(writer),
        epoch: Instant::now(),
    }));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove the sink (flushing buffered events). Subsequent [`emit`] calls
/// are no-ops again.
pub fn uninstall() {
    flush();
    ENABLED.store(false, Ordering::Relaxed);
    *sink_slot().lock() = None;
}

/// One typed event field value.
pub enum Field<'a> {
    /// Unsigned integer (rendered as a JSON number).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as null).
    F64(f64),
    /// String (JSON-escaped).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = const { RefCell::new(ThreadBuffer { buf: Vec::new() }) };
}

struct ThreadBuffer {
    buf: Vec<u8>,
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            if let Some(sink) = current_sink() {
                let mut w = sink.writer.lock();
                let _ = w.write_all(&self.buf);
                let _ = w.flush();
            }
        }
    }
}

fn escape_into(out: &mut Vec<u8>, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            c if (c as u32) < 0x20 => {
                out.extend_from_slice(format!("\\u{:04x}", c as u32).as_bytes());
            }
            c => {
                let mut b = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut b).as_bytes());
            }
        }
    }
}

/// Emit one event with the given fields. No-op unless a sink is
/// installed. Field names must be plain identifiers (they are not
/// escaped).
pub fn emit(event: &str, fields: &[(&str, Field<'_>)]) {
    let Some(sink) = current_sink() else { return };
    let ts_us = sink.epoch.elapsed().as_micros() as u64;
    BUFFER.with(|cell| {
        let mut tb = cell.borrow_mut();
        let buf = &mut tb.buf;
        if buf.len() >= MAX_BUFFER {
            crate::counter!("telemetry.events.dropped").inc();
            return;
        }
        buf.extend_from_slice(b"{\"ts_us\":");
        buf.extend_from_slice(ts_us.to_string().as_bytes());
        buf.extend_from_slice(b",\"event\":\"");
        escape_into(buf, event);
        buf.push(b'"');
        for (k, v) in fields {
            buf.push(b',');
            buf.push(b'"');
            buf.extend_from_slice(k.as_bytes());
            buf.extend_from_slice(b"\":");
            match v {
                Field::U64(n) => buf.extend_from_slice(n.to_string().as_bytes()),
                Field::I64(n) => buf.extend_from_slice(n.to_string().as_bytes()),
                Field::F64(f) if f.is_finite() => buf.extend_from_slice(format!("{f}").as_bytes()),
                Field::F64(_) => buf.extend_from_slice(b"null"),
                Field::Str(s) => {
                    buf.push(b'"');
                    escape_into(buf, s);
                    buf.push(b'"');
                }
                Field::Bool(b) => buf.extend_from_slice(if *b { b"true" } else { b"false" }),
            }
        }
        buf.extend_from_slice(b"}\n");
        if buf.len() >= FLUSH_THRESHOLD {
            // Never block the emitting thread on the writer: if the
            // lock is contended, keep buffering — the MAX_BUFFER gate
            // above bounds memory and counts drops once the writer
            // stays stuck.
            if let Some(mut w) = sink.writer.try_lock() {
                let _ = w.write_all(buf);
                buf.clear();
            }
        }
    });
}

/// Flush this thread's buffered events to the writer.
pub fn flush() {
    let Some(sink) = current_sink() else { return };
    BUFFER.with(|cell| {
        let mut tb = cell.borrow_mut();
        if !tb.buf.is_empty() {
            let mut w = sink.writer.lock();
            let _ = w.write_all(&tb.buf);
            let _ = w.flush();
            tb.buf.clear();
        } else {
            let _ = sink.writer.lock().flush();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global; tests that install one must not
    /// interleave.
    static TEST_SINK_LOCK: Mutex<()> = Mutex::new(());

    /// Shared Vec<u8> writer for capturing output in tests.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emit_writes_json_lines_and_escapes() {
        let _serial = TEST_SINK_LOCK.lock();
        let cap = Capture::default();
        install(Box::new(cap.clone()));
        emit(
            "test.event",
            &[
                ("n", Field::U64(7)),
                ("neg", Field::I64(-3)),
                ("f", Field::F64(1.5)),
                ("s", Field::Str("a\"b\\c\nd")),
                ("ok", Field::Bool(true)),
            ],
        );
        flush();
        let text = String::from_utf8(cap.0.lock().clone()).unwrap();
        uninstall();
        let line = text.lines().last().unwrap();
        assert!(line.starts_with("{\"ts_us\":"), "line = {line}");
        assert!(line.contains("\"event\":\"test.event\""));
        assert!(line.contains("\"n\":7"));
        assert!(line.contains("\"neg\":-3"));
        assert!(line.contains("\"f\":1.5"));
        assert!(line.contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(line.contains("\"ok\":true"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn emit_without_sink_is_noop() {
        // Must not panic or allocate a sink.
        emit("ignored", &[("x", Field::U64(1))]);
    }

    /// A writer that blocks inside `write` (holding the writer lock)
    /// until released, to simulate a stuck/contended sink.
    struct BlockingWriter {
        entered: Arc<AtomicBool>,
        release: Arc<AtomicBool>,
    }

    impl Write for BlockingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.entered.store(true, Ordering::SeqCst);
            while !self.release.load(Ordering::SeqCst) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stuck_writer_bounds_buffer_and_counts_drops() {
        let _serial = TEST_SINK_LOCK.lock();
        let entered = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        install(Box::new(BlockingWriter {
            entered: entered.clone(),
            release: release.clone(),
        }));

        // A helper thread fills its own buffer to the flush threshold;
        // its (uncontended) try_lock succeeds and it blocks inside
        // write, holding the writer lock for the rest of the test.
        let blocker = {
            let entered = entered.clone();
            std::thread::spawn(move || {
                let pad = "x".repeat(200);
                while !entered.load(Ordering::SeqCst) {
                    emit("blocked.event", &[("pad", Field::Str(&pad))]);
                }
            })
        };
        while !entered.load(Ordering::SeqCst) {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }

        // With the writer lock held elsewhere, this thread's threshold
        // flushes fail their try_lock, the buffer grows to MAX_BUFFER,
        // and further events are dropped and counted — emit never
        // blocks and memory never exceeds the cap.
        let dropped = crate::registry().counter("telemetry.events.dropped");
        let before = dropped.get();
        let pad = "y".repeat(200);
        for _ in 0..(MAX_BUFFER / 100) {
            emit("spam.event", &[("pad", Field::Str(&pad))]);
        }
        assert!(
            dropped.get() > before,
            "expected drops once the buffer hit MAX_BUFFER"
        );
        BUFFER.with(|cell| {
            let len = cell.borrow().buf.len();
            assert!(len <= MAX_BUFFER + 1024, "buffer grew past the cap: {len}");
        });

        release.store(true, Ordering::SeqCst);
        blocker.join().unwrap();
        uninstall();
        // Drain this thread's leftover buffer so later tests start clean.
        BUFFER.with(|cell| cell.borrow_mut().buf.clear());
    }
}
