//! Optional JSON-lines event sink.
//!
//! When no sink is installed (the default), [`emit`] is a no-op guarded
//! by one relaxed atomic load, so instrumented code pays nothing in
//! normal operation. Installing a sink (e.g. stdout for
//! `reproduce --json`) turns every [`emit`] — and every [`crate::span!`]
//! exit — into one JSON object per line:
//!
//! ```text
//! {"ts_us":123456,"event":"pir.scan.ns","ns":104857600}
//! ```
//!
//! Events are formatted into a per-thread buffer and flushed to the
//! shared writer when the buffer passes a size threshold, on [`flush`],
//! or when the thread exits — so concurrent emitters contend on the
//! writer lock only once per ~8 KiB, and lines are never interleaved
//! mid-record. `ts_us` is microseconds since sink installation.

use parking_lot::Mutex;
use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Flush a thread's buffer to the writer once it exceeds this size.
const FLUSH_THRESHOLD: usize = 8 * 1024;

struct Sink {
    writer: Mutex<Box<dyn Write + Send>>,
    epoch: Instant,
}

static SINK: OnceLock<Mutex<Option<Arc<Sink>>>> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static Mutex<Option<Arc<Sink>>> {
    SINK.get_or_init(|| Mutex::new(None))
}

fn current_sink() -> Option<Arc<Sink>> {
    if !enabled() {
        return None;
    }
    sink_slot().lock().clone()
}

/// Whether a sink is installed. One relaxed load — cheap enough to guard
/// hot paths.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `writer` as the process-wide event sink, replacing any
/// previous one (whose buffered events are flushed first).
pub fn install(writer: Box<dyn Write + Send>) {
    flush();
    *sink_slot().lock() = Some(Arc::new(Sink {
        writer: Mutex::new(writer),
        epoch: Instant::now(),
    }));
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove the sink (flushing buffered events). Subsequent [`emit`] calls
/// are no-ops again.
pub fn uninstall() {
    flush();
    ENABLED.store(false, Ordering::Relaxed);
    *sink_slot().lock() = None;
}

/// One typed event field value.
pub enum Field<'a> {
    /// Unsigned integer (rendered as a JSON number).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values render as null).
    F64(f64),
    /// String (JSON-escaped).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

thread_local! {
    static BUFFER: RefCell<ThreadBuffer> = const { RefCell::new(ThreadBuffer { buf: Vec::new() }) };
}

struct ThreadBuffer {
    buf: Vec<u8>,
}

impl Drop for ThreadBuffer {
    fn drop(&mut self) {
        if !self.buf.is_empty() {
            if let Some(sink) = current_sink() {
                let mut w = sink.writer.lock();
                let _ = w.write_all(&self.buf);
                let _ = w.flush();
            }
        }
    }
}

fn escape_into(out: &mut Vec<u8>, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.extend_from_slice(b"\\\""),
            '\\' => out.extend_from_slice(b"\\\\"),
            '\n' => out.extend_from_slice(b"\\n"),
            '\r' => out.extend_from_slice(b"\\r"),
            '\t' => out.extend_from_slice(b"\\t"),
            c if (c as u32) < 0x20 => {
                out.extend_from_slice(format!("\\u{:04x}", c as u32).as_bytes());
            }
            c => {
                let mut b = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut b).as_bytes());
            }
        }
    }
}

/// Emit one event with the given fields. No-op unless a sink is
/// installed. Field names must be plain identifiers (they are not
/// escaped).
pub fn emit(event: &str, fields: &[(&str, Field<'_>)]) {
    let Some(sink) = current_sink() else { return };
    let ts_us = sink.epoch.elapsed().as_micros() as u64;
    BUFFER.with(|cell| {
        let mut tb = cell.borrow_mut();
        let buf = &mut tb.buf;
        buf.extend_from_slice(b"{\"ts_us\":");
        buf.extend_from_slice(ts_us.to_string().as_bytes());
        buf.extend_from_slice(b",\"event\":\"");
        escape_into(buf, event);
        buf.push(b'"');
        for (k, v) in fields {
            buf.push(b',');
            buf.push(b'"');
            buf.extend_from_slice(k.as_bytes());
            buf.extend_from_slice(b"\":");
            match v {
                Field::U64(n) => buf.extend_from_slice(n.to_string().as_bytes()),
                Field::I64(n) => buf.extend_from_slice(n.to_string().as_bytes()),
                Field::F64(f) if f.is_finite() => buf.extend_from_slice(format!("{f}").as_bytes()),
                Field::F64(_) => buf.extend_from_slice(b"null"),
                Field::Str(s) => {
                    buf.push(b'"');
                    escape_into(buf, s);
                    buf.push(b'"');
                }
                Field::Bool(b) => buf.extend_from_slice(if *b { b"true" } else { b"false" }),
            }
        }
        buf.extend_from_slice(b"}\n");
        if buf.len() >= FLUSH_THRESHOLD {
            let mut w = sink.writer.lock();
            let _ = w.write_all(buf);
            buf.clear();
        }
    });
}

/// Flush this thread's buffered events to the writer.
pub fn flush() {
    let Some(sink) = current_sink() else { return };
    BUFFER.with(|cell| {
        let mut tb = cell.borrow_mut();
        if !tb.buf.is_empty() {
            let mut w = sink.writer.lock();
            let _ = w.write_all(&tb.buf);
            let _ = w.flush();
            tb.buf.clear();
        } else {
            let _ = sink.writer.lock().flush();
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared Vec<u8> writer for capturing output in tests.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emit_writes_json_lines_and_escapes() {
        let cap = Capture::default();
        install(Box::new(cap.clone()));
        emit(
            "test.event",
            &[
                ("n", Field::U64(7)),
                ("neg", Field::I64(-3)),
                ("f", Field::F64(1.5)),
                ("s", Field::Str("a\"b\\c\nd")),
                ("ok", Field::Bool(true)),
            ],
        );
        flush();
        let text = String::from_utf8(cap.0.lock().clone()).unwrap();
        uninstall();
        let line = text.lines().last().unwrap();
        assert!(line.starts_with("{\"ts_us\":"), "line = {line}");
        assert!(line.contains("\"event\":\"test.event\""));
        assert!(line.contains("\"n\":7"));
        assert!(line.contains("\"neg\":-3"));
        assert!(line.contains("\"f\":1.5"));
        assert!(line.contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(line.contains("\"ok\":true"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn emit_without_sink_is_noop() {
        // Must not panic or allocate a sink.
        emit("ignored", &[("x", Field::U64(1))]);
    }
}
