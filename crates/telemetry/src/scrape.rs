//! Live scrape endpoint: a tiny blocking HTTP/1.0 server exposing the
//! metric registry and recent traces of a running process.
//!
//! This is deliberately not a web framework: one accept thread, one
//! request per connection, `Connection: close`. It exists so that a
//! long-running `reproduce` or ZLTP server process can be observed from
//! the outside (`curl`, Prometheus) without stopping it:
//!
//! * `GET /metrics` — the [`crate::render_text`] exporter over the
//!   global registry snapshot.
//! * `GET /traces` — the collector's recent trace trees as JSON-lines
//!   ([`crate::trace::render_traces_jsonl`]).
//! * `GET /slow` — the slow-query log as indented text.
//! * `GET /profile` — recent traces folded into collapsed-stack lines
//!   ([`crate::profile::render_collapsed_recent`]), ready for
//!   `flamegraph.pl` / speedscope.
//! * `GET /healthz` — liveness: uptime, build info, served engine
//!   modes (see [`set_build_info`] / [`register_serving_mode`]), plus
//!   the live in-flight-request and open-connection gauges
//!   ([`HEALTHZ_INFLIGHT_GAUGE`], [`HEALTHZ_OPEN_CONNECTIONS_GAUGE`]).
//!
//! Responses always carry `Content-Length`; malformed request lines get
//! `400`, non-GET methods `405`, unknown paths `404`.

use crate::trace;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Health state: uptime epoch, build info, served modes.
// ---------------------------------------------------------------------

/// Process epoch for `/healthz` uptime: fixed the first time anything
/// touches health state, so call early (binding a [`ScrapeServer`] does).
fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn build_info_cell() -> &'static Mutex<String> {
    static INFO: OnceLock<Mutex<String>> = OnceLock::new();
    INFO.get_or_init(|| Mutex::new(format!("lightweb-telemetry {}", env!("CARGO_PKG_VERSION"))))
}

/// Override the build string reported by `GET /healthz`. Binaries with
/// richer identity (git describe baked in at build time) call this at
/// startup; the default is the telemetry crate's version.
pub fn set_build_info(info: &str) {
    *build_info_cell().lock() = info.to_string();
}

fn modes_cell() -> &'static Mutex<BTreeSet<String>> {
    static MODES: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    MODES.get_or_init(|| Mutex::new(BTreeSet::new()))
}

/// Record that this process serves the given engine mode (e.g.
/// `"two_server"`). Servers call this as they come up; `/healthz`
/// reports the union.
pub fn register_serving_mode(mode: &str) {
    modes_cell().lock().insert(mode.to_string());
}

/// Registry gauge surfaced as the `inflight_requests` line of
/// `/healthz`: requests currently being answered by this process's ZLTP
/// server(s). The server side maintains it; reading it here merely
/// get-or-creates a zero gauge in processes that serve nothing.
pub const HEALTHZ_INFLIGHT_GAUGE: &str = "zltp.server.inflight.requests";

/// Registry gauge surfaced as the `open_connections` line of
/// `/healthz`: currently open ZLTP sessions.
pub const HEALTHZ_OPEN_CONNECTIONS_GAUGE: &str = "zltp.server.connections.open";

fn render_healthz() -> String {
    let uptime = process_epoch().elapsed();
    let modes = modes_cell().lock();
    let modes_line = if modes.is_empty() {
        "(none)".to_string()
    } else {
        modes.iter().cloned().collect::<Vec<_>>().join(",")
    };
    let registry = crate::registry();
    format!(
        "status ok\nuptime_seconds {}\nbuild {}\nmodes {}\ninflight_requests {}\nopen_connections {}\n",
        uptime.as_secs(),
        build_info_cell().lock(),
        modes_line,
        registry.gauge(HEALTHZ_INFLIGHT_GAUGE).get(),
        registry.gauge(HEALTHZ_OPEN_CONNECTIONS_GAUGE).get(),
    )
}

/// Requests larger than this are answered without waiting for more
/// header bytes — scrape requests are a single short line.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running scrape endpoint. Shuts down (and joins its accept thread)
/// on drop.
pub struct ScrapeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// start serving scrapes on a background thread.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        // Pin the uptime epoch no later than endpoint start.
        process_epoch();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept so the thread can notice shutdown without
        // needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("lightweb-scrape".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            crate::counter!("telemetry.scrape.requests").inc();
                            if serve_one(stream).is_err() {
                                crate::counter!("telemetry.scrape.errors").inc();
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(ScrapeServer {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How a request line failed to parse. Each variant maps to one HTTP
/// error status in [`respond`].
#[derive(Debug, PartialEq, Eq)]
enum RequestLineError {
    /// Not `METHOD SP PATH SP VERSION`, path not absolute, or not UTF-8.
    Malformed,
    /// Well-formed, but the method is not `GET`.
    MethodNotAllowed,
}

/// Parse an HTTP request line into its path. Strict on shape (exactly
/// three whitespace-separated tokens, absolute path, `HTTP/` version)
/// so garbage hitting the port gets `400`, not a confusing `404`.
fn parse_request_line(line: &str) -> Result<&str, RequestLineError> {
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) => (m, p, v),
        _ => return Err(RequestLineError::Malformed),
    };
    if !path.starts_with('/') || !version.starts_with("HTTP/") {
        return Err(RequestLineError::Malformed);
    }
    if method != "GET" {
        return Err(RequestLineError::MethodNotAllowed);
    }
    Ok(path)
}

/// Route a request line to `(status, content-type, body)`. Pure of I/O,
/// so the HTTP edge cases are unit-testable without sockets.
fn respond(first_line: &str) -> (&'static str, &'static str, String) {
    let path = match parse_request_line(first_line) {
        Ok(p) => p,
        Err(RequestLineError::Malformed) => {
            return (
                "400 Bad Request",
                "text/plain",
                format!("malformed request line {first_line:?}\n"),
            )
        }
        Err(RequestLineError::MethodNotAllowed) => {
            return (
                "405 Method Not Allowed",
                "text/plain",
                "only GET is supported\n".to_string(),
            )
        }
    };
    match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            crate::render_text(&crate::registry().snapshot()),
        ),
        "/traces" => (
            "200 OK",
            "application/x-ndjson",
            trace::render_traces_jsonl(&trace::collector().recent()),
        ),
        "/slow" => (
            "200 OK",
            "text/plain",
            trace::collector().render_slow_text(),
        ),
        "/profile" => (
            "200 OK",
            "text/plain",
            crate::profile::render_collapsed_recent(),
        ),
        "/healthz" => ("200 OK", "text/plain", render_healthz()),
        _ => (
            "404 Not Found",
            "text/plain",
            format!("unknown path {path:?}; try /metrics, /traces, /slow, /profile, /healthz\n"),
        ),
    }
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut req = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&chunk[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let first_line = std::str::from_utf8(&req)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let (status, content_type, body) = respond(first_line);
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSpan;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_traces_slow_and_404() {
        crate::registry().counter("scrape.test.counter").add(3);
        {
            let root = TraceSpan::root("scrape.test.root");
            let _child = TraceSpan::child(&root.ctx(), "scrape.test.child");
        }
        let mut server = ScrapeServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(head.contains("Content-Length:"));
        assert!(body.contains("scrape.test.counter 3"), "body: {body}");
        // The exporter body parses back — the endpoint never corrupts it.
        crate::Snapshot::parse_text(&body).unwrap();

        let (head, body) = get(addr, "/traces");
        assert!(head.starts_with("HTTP/1.0 200"));
        assert!(
            body.lines()
                .any(|l| l.contains("\"name\":\"scrape.test.root\"")),
            "body: {body}"
        );

        let (head, _body) = get(addr, "/slow");
        assert!(head.starts_with("HTTP/1.0 200"));

        let (head, body) = get(addr, "/profile");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(
            body.lines().any(|l| l.starts_with("scrape.test.root ")
                || l.starts_with("scrape.test.root;scrape.test.child ")),
            "collapsed profile missing test spans: {body:?}"
        );

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(body.starts_with("status ok\n"), "body: {body}");
        assert!(body.contains("uptime_seconds "), "body: {body}");
        assert!(body.contains("build "), "body: {body}");
        assert!(body.contains("modes "), "body: {body}");

        let (head, body) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "head: {head}");
        assert!(body.contains("/metrics"));

        server.shutdown();
        // Idempotent.
        server.shutdown();
    }

    #[test]
    fn healthz_reports_registered_modes_and_build() {
        register_serving_mode("test_mode_b");
        register_serving_mode("test_mode_a");
        register_serving_mode("test_mode_b"); // dedup
        let body = render_healthz();
        let modes_line = body
            .lines()
            .find(|l| l.starts_with("modes "))
            .expect("modes line");
        assert!(
            modes_line.contains("test_mode_a") && modes_line.contains("test_mode_b"),
            "modes: {modes_line}"
        );
        // Sorted, deduplicated.
        let a = modes_line.find("test_mode_a").unwrap();
        let b = modes_line.find("test_mode_b").unwrap();
        assert!(a < b);
        assert_eq!(modes_line.matches("test_mode_b").count(), 1);

        set_build_info("lightweb test-build deadbeef");
        assert!(render_healthz().contains("build lightweb test-build deadbeef"));
    }

    #[test]
    fn healthz_reports_inflight_and_connection_gauges_over_http() {
        // The server side maintains these gauges; here we play the server
        // and assert the HTTP surface reflects the registry live.
        let inflight = crate::registry().gauge(HEALTHZ_INFLIGHT_GAUGE);
        let open = crate::registry().gauge(HEALTHZ_OPEN_CONNECTIONS_GAUGE);
        inflight.set(3);
        open.set(7);
        let mut server = ScrapeServer::bind("127.0.0.1:0").unwrap();
        let (head, body) = get(server.addr(), "/healthz");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(body.contains("inflight_requests 3"), "body: {body}");
        assert!(body.contains("open_connections 7"), "body: {body}");
        // The lines track the gauges, not a point-in-time copy.
        inflight.set(0);
        open.add(-7);
        let (_, body) = get(server.addr(), "/healthz");
        assert!(body.contains("inflight_requests 0"), "body: {body}");
        assert!(body.contains("open_connections 0"), "body: {body}");
        server.shutdown();
    }

    #[test]
    fn request_line_parsing_edge_cases() {
        // Well-formed GETs route.
        assert_eq!(parse_request_line("GET /metrics HTTP/1.0"), Ok("/metrics"));
        assert_eq!(parse_request_line("GET / HTTP/1.1"), Ok("/"));
        // Malformed shapes -> 400.
        for bad in [
            "",
            "GET",
            "GET /metrics",
            "GET /metrics HTTP/1.0 extra",
            "GET metrics HTTP/1.0",
            "GET /metrics FTP/1.0",
            "/metrics GET HTTP/1.0",
            "garbage\u{7f}",
        ] {
            assert_eq!(
                parse_request_line(bad),
                Err(RequestLineError::Malformed),
                "should be malformed: {bad:?}"
            );
            let (status, _, _) = respond(bad);
            assert_eq!(status, "400 Bad Request", "line: {bad:?}");
        }
        // Wrong method on a valid line -> 405.
        for line in ["POST /metrics HTTP/1.0", "HEAD / HTTP/1.1"] {
            assert_eq!(
                parse_request_line(line),
                Err(RequestLineError::MethodNotAllowed)
            );
            let (status, _, _) = respond(line);
            assert_eq!(status, "405 Method Not Allowed");
        }
        // Unknown path on a valid GET -> 404, not 400.
        let (status, _, _) = respond("GET /unknown HTTP/1.0");
        assert_eq!(status, "404 Not Found");
    }

    #[test]
    fn responses_carry_exact_content_length() {
        let mut server = ScrapeServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();
        for path in ["/healthz", "/metrics", "/does-not-exist"] {
            let (head, body) = get(addr, path);
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .expect("Content-Length header")
                .parse()
                .unwrap();
            assert_eq!(len, body.len(), "Content-Length mismatch for {path}");
        }
        // A malformed request still gets a well-formed 400 response.
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "NONSENSE\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.0 400"), "head: {head}");
        let len: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(len, body.len());
        server.shutdown();
    }
}
