//! Live scrape endpoint: a tiny blocking HTTP/1.0 server exposing the
//! metric registry and recent traces of a running process.
//!
//! This is deliberately not a web framework: one accept thread, one
//! request per connection, `Connection: close`. It exists so that a
//! long-running `reproduce` or ZLTP server process can be observed from
//! the outside (`curl`, Prometheus) without stopping it:
//!
//! * `GET /metrics` — the [`crate::render_text`] exporter over the
//!   global registry snapshot.
//! * `GET /traces` — the collector's recent trace trees as JSON-lines
//!   ([`crate::trace::render_traces_jsonl`]).
//! * `GET /slow` — the slow-query log as indented text.

use crate::trace;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Requests larger than this are answered without waiting for more
/// header bytes — scrape requests are a single short line.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running scrape endpoint. Shuts down (and joins its accept thread)
/// on drop.
pub struct ScrapeServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`, port 0 for ephemeral) and
    /// start serving scrapes on a background thread.
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Non-blocking accept so the thread can notice shutdown without
        // needing a wake-up connection.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let handle = std::thread::Builder::new()
            .name("lightweb-scrape".into())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            crate::counter!("telemetry.scrape.requests").inc();
                            if serve_one(stream).is_err() {
                                crate::counter!("telemetry.scrape.errors").inc();
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(10)),
                    }
                }
            })?;
        Ok(ScrapeServer {
            addr: local,
            shutdown,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut req = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&chunk[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let first_line = std::str::from_utf8(&req)
        .unwrap_or("")
        .lines()
        .next()
        .unwrap_or("");
    let path = first_line.split_whitespace().nth(1).unwrap_or("");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            crate::render_text(&crate::registry().snapshot()),
        ),
        "/traces" => (
            "200 OK",
            "application/x-ndjson",
            trace::render_traces_jsonl(&trace::collector().recent()),
        ),
        "/slow" => (
            "200 OK",
            "text/plain",
            trace::collector().render_slow_text(),
        ),
        _ => (
            "404 Not Found",
            "text/plain",
            format!("unknown path {path:?}; try /metrics, /traces, /slow\n"),
        ),
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSpan;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        let (head, body) = resp.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_traces_slow_and_404() {
        crate::registry().counter("scrape.test.counter").add(3);
        {
            let root = TraceSpan::root("scrape.test.root");
            let _child = TraceSpan::child(&root.ctx(), "scrape.test.child");
        }
        let mut server = ScrapeServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.0 200"), "head: {head}");
        assert!(head.contains("Content-Length:"));
        assert!(body.contains("scrape.test.counter 3"), "body: {body}");
        // The exporter body parses back — the endpoint never corrupts it.
        crate::Snapshot::parse_text(&body).unwrap();

        let (head, body) = get(addr, "/traces");
        assert!(head.starts_with("HTTP/1.0 200"));
        assert!(
            body.lines()
                .any(|l| l.contains("\"name\":\"scrape.test.root\"")),
            "body: {body}"
        );

        let (head, _body) = get(addr, "/slow");
        assert!(head.starts_with("HTTP/1.0 200"));

        let (head, body) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.0 404"), "head: {head}");
        assert!(body.contains("/metrics"));

        server.shutdown();
        // Idempotent.
        server.shutdown();
    }
}
