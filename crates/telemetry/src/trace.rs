//! Causal request tracing: contexts, spans, and the trace collector.
//!
//! Aggregate histograms (the [`crate::span!`] substrate) answer "how slow
//! is this phase on average"; once queries fan out across batchers, scan
//! pools, and §5.2 shards, operators also need "where did *this* request
//! spend its time". This module provides that: a [`TraceContext`] — a
//! 128-bit trace id plus 64-bit span/parent ids — created per ZLTP
//! request, propagated across the wire, and threaded through every hop;
//! [`TraceSpan`] RAII guards that record timed [`SpanRecord`]s; and a
//! process-global [`TraceCollector`] that assembles finished spans into
//! [`Trace`] trees, keeps a bounded ring of recent traces, and derives a
//! slow-query log (top-K by root duration, with per-phase breakdown).
//!
//! ## Lifecycle and ordering
//!
//! A trace is *finalized* when its **root** span (the one with
//! `parent_id == 0`) is recorded. Instrumented code must therefore make
//! sure every child span is recorded (dropped) before the root guard
//! drops — which falls out naturally from RAII scoping plus the ZLTP
//! request ordering: a server records its spans before writing the
//! response, and the client's root guard outlives the response read.
//! Spans arriving for an already-finalized (or evicted) trace are counted
//! as orphans, never lost silently.
//!
//! ## Lock-lightness
//!
//! Recording takes two short mutexes: one shard of the pending-span map
//! (selected by trace id, so unrelated requests rarely contend) and the
//! per-phase aggregate map. No lock is held while trees are assembled
//! for rendering.

use crate::{quantile_from_buckets, BUCKETS};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Traces retained in the recent ring served by `GET /traces`.
pub const RECENT_TRACES: usize = 128;
/// Traces retained in the slow-query log (top-K by root duration).
pub const SLOW_TRACES: usize = 16;
/// Pending (un-finalized) traces per collector shard before the oldest
/// is evicted and its spans counted as orphans.
const MAX_PENDING_TRACES: usize = 128;
/// Shards of the pending map; requests land on a shard by trace id.
const PENDING_SHARDS: usize = 8;

// ---------------------------------------------------------------------
// Context and id generation.
// ---------------------------------------------------------------------

/// The causal identity of one span: which trace it belongs to, its own
/// id, and its parent's id (`0` for the root). `Copy`, 32 bytes, and
/// encodable to exactly 32 wire bytes — cheap enough to ride on every
/// frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit id shared by every span of one request/page load.
    pub trace_id: u128,
    /// This span's id; unique within the process run.
    pub span_id: u64,
    /// The parent span's id, or 0 when this span is the trace root.
    pub parent_id: u64,
}

/// Encoded size of a [`TraceContext`]: trace id, span id, parent id,
/// all big-endian.
pub const TRACE_CONTEXT_LEN: usize = 32;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fresh non-zero 64-bit id: a splitmix64 walk over a global counter,
/// seeded from the clock and process id. Not cryptographic — trace ids
/// only need to be unique, never unpredictable.
fn next_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        splitmix64(nanos ^ ((std::process::id() as u64) << 32))
    });
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    splitmix64(seed.wrapping_add(n)).max(1)
}

impl TraceContext {
    /// Start a new trace: fresh trace id, fresh span id, no parent.
    pub fn root() -> Self {
        TraceContext {
            trace_id: ((next_id() as u128) << 64) | next_id() as u128,
            span_id: next_id(),
            parent_id: 0,
        }
    }

    /// A child context in the same trace, parented to this span.
    pub fn child(&self) -> Self {
        TraceContext {
            trace_id: self.trace_id,
            span_id: next_id(),
            parent_id: self.span_id,
        }
    }

    /// Encode as 32 big-endian bytes (the ZLTP wire extension body).
    pub fn to_bytes(&self) -> [u8; TRACE_CONTEXT_LEN] {
        let mut out = [0u8; TRACE_CONTEXT_LEN];
        out[..16].copy_from_slice(&self.trace_id.to_be_bytes());
        out[16..24].copy_from_slice(&self.span_id.to_be_bytes());
        out[24..32].copy_from_slice(&self.parent_id.to_be_bytes());
        out
    }

    /// Decode the 32-byte encoding produced by [`Self::to_bytes`].
    /// Returns `None` when `bytes` is not exactly 32 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != TRACE_CONTEXT_LEN {
            return None;
        }
        Some(TraceContext {
            trace_id: u128::from_be_bytes(bytes[..16].try_into().ok()?),
            span_id: u64::from_be_bytes(bytes[16..24].try_into().ok()?),
            parent_id: u64::from_be_bytes(bytes[24..32].try_into().ok()?),
        })
    }
}

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

/// One finished span as reported to the collector.
#[derive(Clone, Copy, Debug)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u128,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent_id: u64,
    /// Phase name, e.g. `"zltp.server.request"`.
    pub name: &'static str,
    /// Start time in microseconds since the collector's epoch.
    pub start_us: u64,
    /// Wall-clock duration in nanoseconds.
    pub duration_ns: u64,
}

/// RAII trace span: reports a [`SpanRecord`] to the global collector on
/// drop. Create the root with [`TraceSpan::root`], descendants with
/// [`TraceSpan::child`], and pass [`TraceSpan::ctx`] to whatever work
/// runs underneath.
pub struct TraceSpan {
    ctx: TraceContext,
    name: &'static str,
    start: Instant,
    /// CPU/allocation attribution for this phase (no-op unless
    /// profiling is enabled — see [`crate::profile`]).
    _prof: crate::profile::Scope,
}

impl TraceSpan {
    /// Open a root span, starting a new trace.
    pub fn root(name: &'static str) -> Self {
        Self::with_ctx(TraceContext::root(), name)
    }

    /// Open a span as a child of `parent`.
    pub fn child(parent: &TraceContext, name: &'static str) -> Self {
        Self::with_ctx(parent.child(), name)
    }

    /// Open a span whose identity was fixed elsewhere (e.g. received
    /// over the wire as a pre-assigned child context).
    pub fn with_ctx(ctx: TraceContext, name: &'static str) -> Self {
        TraceSpan {
            ctx,
            name,
            start: Instant::now(),
            _prof: crate::profile::Scope::enter(name),
        }
    }

    /// This span's context — pass to children.
    pub fn ctx(&self) -> TraceContext {
        self.ctx
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        let end = Instant::now();
        collector().record_timed(&self.ctx, self.name, self.start, end);
    }
}

/// Open a child span under `parent` when tracing is active on this
/// request, or no span at all: the idiom for code paths that take an
/// `Option<&TraceContext>`.
pub fn maybe_child(parent: Option<&TraceContext>, name: &'static str) -> Option<TraceSpan> {
    parent.map(|p| TraceSpan::child(p, name))
}

/// Record an externally-timed span as a **child** of `parent` (a fresh
/// span id is minted). Used when the timed interval is only known after
/// the fact, e.g. the batcher's queue wait.
pub fn record_span(parent: &TraceContext, name: &'static str, start: Instant, end: Instant) {
    collector().record_timed(&parent.child(), name, start, end);
}

/// Record an externally-timed span whose context was pre-minted (so
/// that children could already be parented to it): `ctx` **is** the
/// span being reported.
pub fn record_span_ctx(ctx: &TraceContext, name: &'static str, start: Instant, end: Instant) {
    collector().record_timed(ctx, name, start, end);
}

// ---------------------------------------------------------------------
// Assembled traces.
// ---------------------------------------------------------------------

/// One span within an assembled [`Trace`] tree. Children are ordered by
/// start time.
#[derive(Clone, Debug)]
pub struct TraceNode {
    /// Phase name.
    pub name: &'static str,
    /// Span id.
    pub span_id: u64,
    /// Parent span id (0 for the root).
    pub parent_id: u64,
    /// Start time, microseconds since the collector epoch.
    pub start_us: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Child spans, ordered by `start_us`.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// First direct child with the given name.
    pub fn child_named(&self, name: &str) -> Option<&TraceNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// All direct children with the given name.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a TraceNode> {
        self.children.iter().filter(move |c| c.name == name)
    }

    fn count(&self) -> usize {
        1 + self.children.iter().map(TraceNode::count).sum::<usize>()
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a TraceNode)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// A finalized trace: the span tree of one request (or page load).
#[derive(Clone, Debug)]
pub struct Trace {
    /// Trace id shared by every span.
    pub trace_id: u128,
    /// The root span with its attached descendants.
    pub root: TraceNode,
    /// Spans attached to the tree (root included).
    pub span_count: usize,
    /// Spans that arrived for this trace but whose parent was missing
    /// when the root finalized; 0 means the trace is complete.
    pub orphan_spans: usize,
}

impl Trace {
    /// Total duration: the root span's wall time.
    pub fn duration_ns(&self) -> u64 {
        self.root.duration_ns
    }

    /// Whether every reported span found its parent.
    pub fn is_complete(&self) -> bool {
        self.orphan_spans == 0
    }

    /// First node with the given name, depth-first.
    pub fn find(&self, name: &str) -> Option<&TraceNode> {
        let mut found = None;
        self.root.visit(&mut |n| {
            if found.is_none() && n.name == name {
                found = Some(n);
            }
        });
        found
    }

    /// Total time per phase name across the whole tree.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut totals = BTreeMap::new();
        self.root.visit(&mut |n| {
            *totals.entry(n.name).or_insert(0u64) += n.duration_ns;
        });
        totals
    }

    fn assemble(root_rec: SpanRecord, others: Vec<SpanRecord>) -> Trace {
        let total = 1 + others.len();
        let mut by_parent: HashMap<u64, Vec<SpanRecord>> = HashMap::new();
        for s in others {
            by_parent.entry(s.parent_id).or_default().push(s);
        }
        fn build(rec: SpanRecord, by_parent: &mut HashMap<u64, Vec<SpanRecord>>) -> TraceNode {
            let mut node = TraceNode {
                name: rec.name,
                span_id: rec.span_id,
                parent_id: rec.parent_id,
                start_us: rec.start_us,
                duration_ns: rec.duration_ns,
                children: Vec::new(),
            };
            if let Some(kids) = by_parent.remove(&node.span_id) {
                node.children = kids.into_iter().map(|k| build(k, by_parent)).collect();
                node.children.sort_by_key(|c| (c.start_us, c.span_id));
            }
            node
        }
        let trace_id = root_rec.trace_id;
        let root = build(root_rec, &mut by_parent);
        let span_count = root.count();
        Trace {
            trace_id,
            root,
            span_count,
            orphan_spans: total - span_count,
        }
    }
}

// ---------------------------------------------------------------------
// Collector.
// ---------------------------------------------------------------------

#[derive(Default)]
struct PendingShard {
    traces: HashMap<u128, Vec<SpanRecord>>,
    order: VecDeque<u128>,
}

impl PendingShard {
    /// Buffer a non-root span; returns how many spans were evicted to
    /// stay under the pending cap.
    fn push(&mut self, rec: SpanRecord) -> u64 {
        let mut evicted = 0u64;
        if !self.traces.contains_key(&rec.trace_id) {
            while self.order.len() >= MAX_PENDING_TRACES {
                if let Some(old) = self.order.pop_front() {
                    evicted += self.traces.remove(&old).map_or(0, |v| v.len() as u64);
                }
            }
            self.order.push_back(rec.trace_id);
        }
        self.traces.entry(rec.trace_id).or_default().push(rec);
        evicted
    }

    fn take(&mut self, trace_id: u128) -> Vec<SpanRecord> {
        match self.traces.remove(&trace_id) {
            Some(spans) => {
                self.order.retain(|t| *t != trace_id);
                spans
            }
            None => Vec::new(),
        }
    }
}

/// Per-phase duration aggregate (mean/p95/max) fed by every recorded
/// span, independent of whether its trace completes.
struct PhaseAgg {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl PhaseAgg {
    fn new() -> Self {
        PhaseAgg {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.buckets[crate::bucket_index(v)] += 1;
    }
}

/// Summary statistics for one phase name, as exposed by
/// [`TraceCollector::phase_stats`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase (span) name.
    pub name: &'static str,
    /// Spans recorded under this name.
    pub count: u64,
    /// Mean duration in nanoseconds.
    pub mean_ns: u64,
    /// Estimated median duration (log₂-bucket estimate).
    pub p50_ns: u64,
    /// Estimated 95th-percentile duration (log₂-bucket estimate).
    pub p95_ns: u64,
    /// Estimated 99th-percentile duration (log₂-bucket estimate).
    pub p99_ns: u64,
    /// Largest recorded duration.
    pub max_ns: u64,
}

#[derive(Default)]
struct Finished {
    recent: VecDeque<Arc<Trace>>,
    slow: Vec<Arc<Trace>>,
}

/// Assembles [`SpanRecord`]s into [`Trace`] trees. Use the process
/// global via [`collector()`]; independent instances exist for tests.
pub struct TraceCollector {
    epoch: Instant,
    pending: Vec<Mutex<PendingShard>>,
    finished: Mutex<Finished>,
    phases: Mutex<BTreeMap<&'static str, PhaseAgg>>,
    completed: AtomicU64,
    orphaned: AtomicU64,
}

impl Default for TraceCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceCollector {
    /// An empty collector with its epoch set to now.
    pub fn new() -> Self {
        TraceCollector {
            epoch: Instant::now(),
            pending: (0..PENDING_SHARDS)
                .map(|_| Mutex::new(PendingShard::default()))
                .collect(),
            finished: Mutex::new(Finished::default()),
            phases: Mutex::new(BTreeMap::new()),
            completed: AtomicU64::new(0),
            orphaned: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, trace_id: u128) -> &Mutex<PendingShard> {
        let h = (trace_id as u64) ^ ((trace_id >> 64) as u64);
        &self.pending[(h as usize) % PENDING_SHARDS]
    }

    fn record_timed(&self, ctx: &TraceContext, name: &'static str, start: Instant, end: Instant) {
        let start_us = start
            .checked_duration_since(self.epoch)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let duration_ns = end
            .checked_duration_since(start)
            .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        self.record(SpanRecord {
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            name,
            start_us,
            duration_ns,
        });
    }

    /// Report one finished span. A root span (parent id 0) finalizes
    /// its trace; any other span is buffered until its root arrives.
    pub fn record(&self, rec: SpanRecord) {
        self.phases
            .lock()
            .entry(rec.name)
            .or_insert_with(PhaseAgg::new)
            .observe(rec.duration_ns);
        if rec.parent_id == 0 {
            let buffered = self.shard_of(rec.trace_id).lock().take(rec.trace_id);
            let trace = Arc::new(Trace::assemble(rec, buffered));
            self.completed.fetch_add(1, Ordering::Relaxed);
            crate::counter!("telemetry.trace.completed").inc();
            if !trace.is_complete() {
                self.orphaned
                    .fetch_add(trace.orphan_spans as u64, Ordering::Relaxed);
                crate::counter!("telemetry.trace.orphan_spans").add(trace.orphan_spans as u64);
            }
            let mut fin = self.finished.lock();
            fin.recent.push_back(trace.clone());
            while fin.recent.len() > RECENT_TRACES {
                fin.recent.pop_front();
            }
            let pos = fin
                .slow
                .partition_point(|t| t.duration_ns() >= trace.duration_ns());
            if pos < SLOW_TRACES {
                fin.slow.insert(pos, trace);
                fin.slow.truncate(SLOW_TRACES);
            }
        } else {
            let evicted = self.shard_of(rec.trace_id).lock().push(rec);
            if evicted > 0 {
                self.orphaned.fetch_add(evicted, Ordering::Relaxed);
                crate::counter!("telemetry.trace.orphan_spans").add(evicted);
            }
        }
    }

    /// The most recent finalized traces, oldest first (bounded by
    /// [`RECENT_TRACES`]).
    pub fn recent(&self) -> Vec<Arc<Trace>> {
        self.finished.lock().recent.iter().cloned().collect()
    }

    /// The slow-query log: the slowest finalized traces, slowest first
    /// (bounded by [`SLOW_TRACES`]).
    pub fn slowest(&self) -> Vec<Arc<Trace>> {
        self.finished.lock().slow.clone()
    }

    /// Traces finalized since creation/reset.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Spans that never joined a finalized trace: evicted while pending,
    /// or present at finalization with a missing parent.
    pub fn orphaned_spans(&self) -> u64 {
        self.orphaned.load(Ordering::Relaxed)
    }

    /// Spans currently buffered for traces whose root has not arrived.
    pub fn pending_spans(&self) -> usize {
        self.pending
            .iter()
            .map(|s| s.lock().traces.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Per-phase duration statistics, sorted by phase name.
    pub fn phase_stats(&self) -> Vec<PhaseStat> {
        self.phases
            .lock()
            .iter()
            .map(|(name, agg)| {
                let q = |p: f64| quantile_from_buckets(&agg.buckets, agg.count, agg.max, p);
                PhaseStat {
                    name,
                    count: agg.count,
                    mean_ns: agg.sum.checked_div(agg.count).unwrap_or(0),
                    p50_ns: q(0.50),
                    p95_ns: q(0.95),
                    p99_ns: q(0.99),
                    max_ns: agg.max,
                }
            })
            .collect()
    }

    /// Drop all state: pending spans, finished traces, phase aggregates,
    /// and counters. Handles stay valid; intended for per-experiment
    /// isolation alongside [`crate::Registry::reset`].
    pub fn reset(&self) {
        for shard in &self.pending {
            let mut s = shard.lock();
            s.traces.clear();
            s.order.clear();
        }
        let mut fin = self.finished.lock();
        fin.recent.clear();
        fin.slow.clear();
        drop(fin);
        self.phases.lock().clear();
        self.completed.store(0, Ordering::Relaxed);
        self.orphaned.store(0, Ordering::Relaxed);
    }

    /// Render the slow-query log as an indented text table: one block
    /// per trace, slowest first, each span line showing name and
    /// duration.
    pub fn render_slow_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for trace in self.slowest() {
            let _ = writeln!(
                out,
                "trace {:032x} total {:.3} ms, {} spans{}",
                trace.trace_id,
                trace.duration_ns() as f64 / 1e6,
                trace.span_count,
                if trace.is_complete() {
                    String::new()
                } else {
                    format!(", {} orphaned", trace.orphan_spans)
                }
            );
            fn render_node(out: &mut String, node: &TraceNode, depth: usize) {
                use std::fmt::Write;
                let _ = writeln!(
                    out,
                    "{:indent$}{} {:.3} ms",
                    "",
                    node.name,
                    node.duration_ns as f64 / 1e6,
                    indent = 2 + depth * 2
                );
                for c in &node.children {
                    render_node(out, c, depth + 1);
                }
            }
            render_node(&mut out, &trace.root, 0);
        }
        out
    }
}

/// The process-wide trace collector every [`TraceSpan`] records into.
pub fn collector() -> &'static TraceCollector {
    static GLOBAL: OnceLock<TraceCollector> = OnceLock::new();
    GLOBAL.get_or_init(TraceCollector::new)
}

/// Render traces as JSON-lines: one JSON object per trace (the
/// `GET /traces` body). Ids are hex strings (64-bit span ids do not fit
/// JSON numbers losslessly); span names are trusted `'static` literals
/// and are emitted unescaped.
pub fn render_traces_jsonl(traces: &[Arc<Trace>]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for trace in traces {
        let _ = write!(
            out,
            "{{\"trace_id\":\"{:032x}\",\"duration_ns\":{},\"spans\":{},\"orphans\":{},\"root\":",
            trace.trace_id,
            trace.duration_ns(),
            trace.span_count,
            trace.orphan_spans
        );
        fn write_node(out: &mut String, node: &TraceNode) {
            use std::fmt::Write;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"span_id\":\"{:016x}\",\"parent_id\":\"{:016x}\",\"start_us\":{},\"duration_ns\":{},\"children\":[",
                node.name, node.span_id, node.parent_id, node.start_us, node.duration_ns
            );
            for (i, c) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_node(out, c);
            }
            out.push_str("]}");
        }
        write_node(&mut out, &trace.root);
        out.push_str("}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn rec(
        trace_id: u128,
        span_id: u64,
        parent_id: u64,
        name: &'static str,
        start_us: u64,
        duration_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            trace_id,
            span_id,
            parent_id,
            name,
            start_us,
            duration_ns,
        }
    }

    #[test]
    fn context_ids_are_fresh_and_linked() {
        let root = TraceContext::root();
        assert_eq!(root.parent_id, 0);
        assert_ne!(root.span_id, 0);
        assert_ne!(root.trace_id, 0);
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
        let other = TraceContext::root();
        assert_ne!(other.trace_id, root.trace_id);
    }

    #[test]
    fn context_roundtrips_through_bytes() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89AB_CDEF_1122_3344_5566_7788,
            span_id: 0xDEAD_BEEF_CAFE_F00D,
            parent_id: 0x0102_0304_0506_0708,
        };
        let bytes = ctx.to_bytes();
        assert_eq!(bytes.len(), TRACE_CONTEXT_LEN);
        assert_eq!(TraceContext::from_bytes(&bytes), Some(ctx));
        assert_eq!(TraceContext::from_bytes(&bytes[..31]), None);
        assert_eq!(TraceContext::from_bytes(&[]), None);
    }

    #[test]
    fn collector_assembles_tree_on_root_completion() {
        let c = TraceCollector::new();
        let t = 77u128;
        // Children first (wire order), root last.
        c.record(rec(t, 3, 2, "leaf.a", 10, 100));
        c.record(rec(t, 4, 2, "leaf.b", 20, 200));
        c.record(rec(t, 2, 1, "middle", 5, 400));
        assert_eq!(c.completed(), 0);
        assert_eq!(c.pending_spans(), 3);
        c.record(rec(t, 1, 0, "root", 0, 1000));
        assert_eq!(c.completed(), 1);
        assert_eq!(c.pending_spans(), 0);
        let traces = c.recent();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert!(trace.is_complete(), "orphans: {}", trace.orphan_spans);
        assert_eq!(trace.span_count, 4);
        assert_eq!(trace.root.name, "root");
        let middle = trace.root.child_named("middle").unwrap();
        assert_eq!(middle.children.len(), 2);
        // Ordered by start time.
        assert_eq!(middle.children[0].name, "leaf.a");
        assert_eq!(middle.children[1].name, "leaf.b");
        assert_eq!(trace.find("leaf.b").unwrap().duration_ns, 200);
        let totals = trace.phase_totals();
        assert_eq!(totals["root"], 1000);
        assert_eq!(totals["leaf.a"], 100);
    }

    #[test]
    fn missing_parent_counts_as_orphan() {
        let c = TraceCollector::new();
        let t = 5u128;
        c.record(rec(t, 9, 42, "dangling", 0, 10));
        c.record(rec(t, 1, 0, "root", 0, 100));
        let trace = &c.recent()[0];
        assert_eq!(trace.span_count, 1);
        assert_eq!(trace.orphan_spans, 1);
        assert!(!trace.is_complete());
        assert_eq!(c.orphaned_spans(), 1);
    }

    #[test]
    fn pending_eviction_counts_orphans() {
        let c = TraceCollector::new();
        // Fill one shard past its cap with rootless traces. Trace ids
        // that are multiples of PENDING_SHARDS all land on shard 0.
        let n = (MAX_PENDING_TRACES + 10) as u128;
        for i in 0..n {
            c.record(rec(i * PENDING_SHARDS as u128, 2, 1, "never.roots", 0, 1));
        }
        assert!(c.orphaned_spans() >= 10, "orphaned {}", c.orphaned_spans());
        assert!(c.pending_spans() <= MAX_PENDING_TRACES);
    }

    #[test]
    fn recent_ring_and_slow_log_are_bounded_and_sorted() {
        let c = TraceCollector::new();
        for i in 0..(RECENT_TRACES + 40) as u64 {
            // Durations cycle so the slow log has a clear top end.
            c.record(rec(i as u128 + 1, 1, 0, "root", i, (i % 97) * 1000));
        }
        let recent = c.recent();
        assert_eq!(recent.len(), RECENT_TRACES);
        let slow = c.slowest();
        assert_eq!(slow.len(), SLOW_TRACES);
        for pair in slow.windows(2) {
            assert!(pair[0].duration_ns() >= pair[1].duration_ns());
        }
        assert_eq!(slow[0].duration_ns(), 96_000);
    }

    #[test]
    fn phase_stats_aggregate_all_spans() {
        let c = TraceCollector::new();
        for i in 1..=100u64 {
            c.record(rec(i as u128, 2, 1, "phase.x", 0, i * 1000));
        }
        let stats = c.phase_stats();
        let x = stats.iter().find(|s| s.name == "phase.x").unwrap();
        assert_eq!(x.count, 100);
        assert_eq!(x.mean_ns, 50_500);
        assert_eq!(x.max_ns, 100_000);
        assert!(x.p95_ns > x.mean_ns, "p95 {} mean {}", x.p95_ns, x.mean_ns);
        assert!(x.p95_ns <= x.max_ns);
        // The full quantile ladder is ordered and bounded.
        assert!(x.p50_ns > 0);
        assert!(
            x.p50_ns <= x.p95_ns && x.p95_ns <= x.p99_ns && x.p99_ns <= x.max_ns,
            "quantiles out of order: p50 {} p95 {} p99 {} max {}",
            x.p50_ns,
            x.p95_ns,
            x.p99_ns,
            x.max_ns
        );
    }

    #[test]
    fn span_guards_report_real_timings() {
        let c = collector();
        let before = c.completed();
        let root_ctx;
        {
            let root = TraceSpan::root("test.root");
            root_ctx = root.ctx();
            {
                let _child = TraceSpan::child(&root.ctx(), "test.child");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        assert!(c.completed() > before);
        let trace = c
            .recent()
            .into_iter()
            .find(|t| t.trace_id == root_ctx.trace_id)
            .expect("trace finalized");
        assert!(trace.is_complete());
        let child = trace.root.child_named("test.child").unwrap();
        assert!(child.duration_ns >= 2_000_000);
        assert!(trace.root.duration_ns >= child.duration_ns);
    }

    #[test]
    fn record_span_helpers_attach_children() {
        let c = collector();
        let ctx;
        let t0 = Instant::now();
        {
            let root = TraceSpan::root("helper.root");
            ctx = root.ctx();
            record_span(&ctx, "helper.wait", t0, Instant::now());
            let pre = ctx.child();
            record_span_ctx(&pre, "helper.scan", t0, Instant::now());
        }
        let trace = c
            .recent()
            .into_iter()
            .find(|t| t.trace_id == ctx.trace_id)
            .unwrap();
        assert!(trace.is_complete());
        assert!(trace.root.child_named("helper.wait").is_some());
        assert!(trace.root.child_named("helper.scan").is_some());
    }

    #[test]
    fn jsonl_and_slow_text_render() {
        let c = TraceCollector::new();
        c.record(rec(0xABC, 2, 1, "child.phase", 1, 500));
        c.record(rec(0xABC, 1, 0, "root.phase", 0, 2000));
        let jsonl = render_traces_jsonl(&c.recent());
        let line = jsonl.lines().next().unwrap();
        assert!(line.starts_with("{\"trace_id\":\"00000000000000000000000000000abc\""));
        assert!(line.contains("\"name\":\"root.phase\""));
        assert!(line.contains("\"name\":\"child.phase\""));
        assert!(line.contains("\"orphans\":0"));
        assert!(line.ends_with('}'));
        let text = c.render_slow_text();
        assert!(text.contains("root.phase"));
        assert!(text.contains("  child.phase"), "text:\n{text}");
    }

    #[test]
    fn reset_clears_everything() {
        let c = TraceCollector::new();
        c.record(rec(9, 2, 1, "r.child", 0, 5));
        c.record(rec(9, 1, 0, "r.root", 0, 10));
        c.record(rec(10, 7, 3, "r.pending", 0, 5));
        c.reset();
        assert_eq!(c.completed(), 0);
        assert_eq!(c.orphaned_spans(), 0);
        assert_eq!(c.pending_spans(), 0);
        assert!(c.recent().is_empty());
        assert!(c.slowest().is_empty());
        assert!(c.phase_stats().is_empty());
    }
}
