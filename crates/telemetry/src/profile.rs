//! Continuous profiling: CPU-time and heap attribution per span phase,
//! plus a collapsed-stack ("folded flamegraph") renderer.
//!
//! The metric registry answers *how often / how slow* and the trace
//! collector answers *where did this request go* — this module answers
//! *what did it cost*: which phase burned the CPU, which phase allocated
//! the bytes, and what the process's peak heap was while it ran. It is
//! the substrate for `reproduce bench`'s CPU-seconds/request and
//! allocations/request columns and for the `GET /profile` scrape route.
//!
//! ## Pieces
//!
//! * **Thread/process CPU clocks** ([`thread_cpu_ns`],
//!   [`process_cpu_ns`]): a `std`-only shim over
//!   `clock_gettime(CLOCK_THREAD_CPUTIME_ID)` — no libc crate, just the
//!   symbol the platform's libc already exports. Non-Linux targets
//!   return `None` and profiling degrades to allocation-only.
//! * **Phase attribution** ([`Scope`]): every [`crate::span!`] guard and
//!   every [`crate::trace::TraceSpan`] opens a profile scope named after
//!   its phase. Scopes keep a per-thread stack and attribute **self**
//!   CPU time — the time between scope transitions goes to the scope on
//!   top of the stack — so nested phases never double-count a
//!   nanosecond: summing every phase's `cpu_ns` bounds the thread's
//!   total CPU time from below, never from above.
//! * **Counting allocator** ([`CountingAlloc`]): a `#[global_allocator]`
//!   wrapper over [`std::alloc::System`] that counts allocation
//!   count/bytes and tracks live/peak heap globally, and attributes
//!   count/bytes to the innermost active profile scope on the
//!   allocating thread. Installed by bench/test binaries (`reproduce`,
//!   `tests/profiling_integration.rs`), never by the library.
//! * **Collapsed stacks** ([`render_collapsed`]): folds the trace
//!   collector's span trees into `root;child;leaf <self-µs>` lines —
//!   the format `flamegraph.pl`/speedscope ingest directly — served as
//!   `GET /profile`.
//!
//! ## Enabling
//!
//! Attribution is off by default; the only always-on cost is the
//! allocator's global counters (a few relaxed atomics per allocation,
//! and only in binaries that install it). Enable per process with
//! [`set_enabled`]`(true)` or by exporting `LIGHTWEB_PROFILE=1`. When
//! disabled, [`Scope::enter`] is one relaxed atomic load.

use crate::trace::{Trace, TraceNode};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------
// CPU clocks (std-only clock_gettime shim).
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys {
    //! Minimal `clock_gettime` binding. The symbols come from the libc
    //! `std` already links; no external crate involved.

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    const CLOCK_PROCESS_CPUTIME_ID: i32 = 2;
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    fn read(clockid: i32) -> Option<u64> {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        // SAFETY: `ts` is a valid, writable Timespec matching the C ABI;
        // clock_gettime only writes through the pointer.
        let rc = unsafe { clock_gettime(clockid, &mut ts) };
        if rc != 0 || ts.tv_sec < 0 {
            return None;
        }
        Some((ts.tv_sec as u64).saturating_mul(1_000_000_000) + ts.tv_nsec as u64)
    }

    pub fn thread_cpu_ns() -> Option<u64> {
        read(CLOCK_THREAD_CPUTIME_ID)
    }

    pub fn process_cpu_ns() -> Option<u64> {
        read(CLOCK_PROCESS_CPUTIME_ID)
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    pub fn thread_cpu_ns() -> Option<u64> {
        None
    }

    pub fn process_cpu_ns() -> Option<u64> {
        None
    }
}

/// CPU time consumed by the calling thread, in nanoseconds
/// (`CLOCK_THREAD_CPUTIME_ID`). `None` where the clock is unavailable.
pub fn thread_cpu_ns() -> Option<u64> {
    sys::thread_cpu_ns()
}

/// CPU time consumed by the whole process across all threads, in
/// nanoseconds (`CLOCK_PROCESS_CPUTIME_ID`). `None` where unavailable.
pub fn process_cpu_ns() -> Option<u64> {
    sys::process_cpu_ns()
}

// ---------------------------------------------------------------------
// Enable flag.
// ---------------------------------------------------------------------

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether phase attribution is active. First call resolves the
/// `LIGHTWEB_PROFILE` environment variable; afterwards this is one
/// relaxed load.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => {
            let on = std::env::var("LIGHTWEB_PROFILE").is_ok_and(|v| v == "1");
            ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Turn phase attribution on or off for the whole process, overriding
/// `LIGHTWEB_PROFILE`.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Per-phase cells and the thread-local scope stack.
// ---------------------------------------------------------------------

/// Per-phase accumulators. Leaked (`&'static`) so the allocator can hold
/// a raw pointer to the current one without lifetime bookkeeping.
struct PhaseCell {
    enters: AtomicU64,
    cpu_ns: AtomicU64,
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
}

fn phase_table() -> &'static Mutex<BTreeMap<&'static str, &'static PhaseCell>> {
    static TABLE: OnceLock<Mutex<BTreeMap<&'static str, &'static PhaseCell>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn phase_cell(name: &'static str) -> &'static PhaseCell {
    if let Some(cell) = phase_table().lock().get(name) {
        return cell;
    }
    let cell: &'static PhaseCell = Box::leak(Box::new(PhaseCell {
        enters: AtomicU64::new(0),
        cpu_ns: AtomicU64::new(0),
        allocs: AtomicU64::new(0),
        alloc_bytes: AtomicU64::new(0),
    }));
    // Double-checked under the lock: a racing creator wins and our leaked
    // cell (a few dozen bytes, once per phase name per race) is dropped
    // from the table's point of view.
    phase_table().lock().entry(name).or_insert(cell)
}

thread_local! {
    /// Innermost active phase on this thread, read by the allocator.
    /// Const-initialized `Cell` of a raw pointer: accessing it never
    /// allocates, so the allocator can read it re-entrantly.
    static CURRENT_PHASE: Cell<*const PhaseCell> = const { Cell::new(std::ptr::null()) };
    /// The scope stack and the last CPU-clock reading. Only touched by
    /// scope enter/exit (never by the allocator), so its interior
    /// allocations cannot recurse into it.
    static SCOPE_STACK: std::cell::RefCell<ThreadScopes> =
        const { std::cell::RefCell::new(ThreadScopes { stack: Vec::new(), last_cpu: 0 }) };
}

struct ThreadScopes {
    stack: Vec<&'static PhaseCell>,
    last_cpu: u64,
}

/// Attribute the CPU time since the last transition to the scope on top
/// of the stack, then advance the clock mark. Called on every scope
/// enter and exit, which is exactly what makes the accounting
/// *self*-time: a phase only accumulates while it is innermost.
fn settle_cpu(scopes: &mut ThreadScopes) {
    let now = thread_cpu_ns().unwrap_or(scopes.last_cpu);
    if let Some(top) = scopes.stack.last() {
        top.cpu_ns
            .fetch_add(now.saturating_sub(scopes.last_cpu), Ordering::Relaxed);
    }
    scopes.last_cpu = now;
}

/// RAII profile scope: between `enter` and drop, the calling thread's
/// CPU time and allocations are attributed to `name` (excluding any
/// nested scope's share). A no-op single atomic load when profiling is
/// disabled. Opened automatically by [`crate::span!`] guards and
/// [`crate::trace::TraceSpan`]s; open one explicitly around work that
/// has no span of its own.
pub struct Scope {
    /// Stack depth to restore on drop; `None` when profiling was
    /// disabled at entry.
    depth: Option<usize>,
}

impl Scope {
    /// Open a scope for phase `name`.
    pub fn enter(name: &'static str) -> Scope {
        if !enabled() {
            return Scope { depth: None };
        }
        let cell = phase_cell(name);
        cell.enters.fetch_add(1, Ordering::Relaxed);
        let depth = SCOPE_STACK.with(|s| {
            let mut scopes = s.borrow_mut();
            settle_cpu(&mut scopes);
            scopes.stack.push(cell);
            scopes.stack.len() - 1
        });
        CURRENT_PHASE.with(|c| c.set(cell as *const PhaseCell));
        Scope { depth: Some(depth) }
    }
}

impl Drop for Scope {
    fn drop(&mut self) {
        let Some(depth) = self.depth else { return };
        let top = SCOPE_STACK.with(|s| {
            let mut scopes = s.borrow_mut();
            settle_cpu(&mut scopes);
            // Truncate rather than pop: if an enclosed scope leaked (its
            // guard was forgotten or dropped out of order), its frames go
            // with ours instead of corrupting the stack.
            scopes.stack.truncate(depth);
            scopes
                .stack
                .last()
                .map_or(std::ptr::null(), |c| *c as *const PhaseCell)
        });
        CURRENT_PHASE.with(|c| c.set(top));
    }
}

// ---------------------------------------------------------------------
// Counting allocator.
// ---------------------------------------------------------------------

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREES: AtomicU64 = AtomicU64::new(0);
static TOTAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn note_alloc(bytes: usize) {
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_ALLOC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    let live = CURRENT_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    if enabled() {
        // `try_with` so allocations during thread teardown (after TLS
        // destructors ran) degrade to unattributed instead of aborting.
        let phase = CURRENT_PHASE
            .try_with(|c| c.get())
            .unwrap_or(std::ptr::null());
        if !phase.is_null() {
            // SAFETY: non-null CURRENT_PHASE pointers always come from
            // `phase_cell`, which returns leaked `&'static` cells.
            let cell = unsafe { &*phase };
            cell.allocs.fetch_add(1, Ordering::Relaxed);
            cell.alloc_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        }
    }
}

#[inline]
fn note_free(bytes: usize) {
    TOTAL_FREES.fetch_add(1, Ordering::Relaxed);
    CURRENT_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

/// A counting `#[global_allocator]`: delegates to
/// [`std::alloc::System`] and maintains the process-wide heap counters
/// behind [`heap_stats`] plus per-phase attribution for [`Scope`]s.
/// Install it in a *binary* (never a library):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: lightweb_telemetry::profile::CountingAlloc =
///     lightweb_telemetry::profile::CountingAlloc;
/// ```
pub struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counters
// are side effects that never touch the returned memory.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout);
        note_free(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = std::alloc::System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            note_free(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

/// Point-in-time heap accounting, maintained by [`CountingAlloc`]. All
/// zeros when the counting allocator is not installed in this binary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Allocations since process start.
    pub allocs: u64,
    /// Deallocations since process start.
    pub frees: u64,
    /// Total bytes ever allocated.
    pub allocated_bytes: u64,
    /// Bytes currently live.
    pub current_bytes: u64,
    /// High-water mark of live bytes (since start or [`reset_peak`]).
    pub peak_bytes: u64,
}

/// Snapshot the global heap counters.
pub fn heap_stats() -> HeapStats {
    HeapStats {
        allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
        frees: TOTAL_FREES.load(Ordering::Relaxed),
        allocated_bytes: TOTAL_ALLOC_BYTES.load(Ordering::Relaxed),
        current_bytes: CURRENT_BYTES.load(Ordering::Relaxed) as u64,
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed) as u64,
    }
}

/// Reset the peak-heap high-water mark to the current live size, so the
/// next [`heap_stats`] reports the peak *of the interval* — what
/// `reproduce bench` does before each experiment.
pub fn reset_peak() {
    PEAK_BYTES.store(CURRENT_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Phase snapshots.
// ---------------------------------------------------------------------

/// Accumulated cost of one phase, as reported by [`phase_profiles`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Phase (span/scope) name.
    pub name: &'static str,
    /// Times a scope for this phase was entered.
    pub enters: u64,
    /// Self CPU time: nanoseconds this phase was the innermost scope on
    /// some thread. Summing across phases never double-counts.
    pub cpu_ns: u64,
    /// Heap allocations made while this phase was innermost (requires
    /// [`CountingAlloc`]).
    pub allocs: u64,
    /// Bytes those allocations requested.
    pub alloc_bytes: u64,
}

/// Snapshot every phase's accumulated cost, sorted by name. Phases with
/// zero recorded cost are included (they were entered).
pub fn phase_profiles() -> Vec<PhaseProfile> {
    phase_table()
        .lock()
        .iter()
        .map(|(name, cell)| PhaseProfile {
            name,
            enters: cell.enters.load(Ordering::Relaxed),
            cpu_ns: cell.cpu_ns.load(Ordering::Relaxed),
            allocs: cell.allocs.load(Ordering::Relaxed),
            alloc_bytes: cell.alloc_bytes.load(Ordering::Relaxed),
        })
        .collect()
}

/// Zero every phase's accumulators (cells stay valid — in-flight scopes
/// keep attributing). For per-experiment isolation alongside
/// [`crate::Registry::reset`].
pub fn reset_phases() {
    for cell in phase_table().lock().values() {
        cell.enters.store(0, Ordering::Relaxed);
        cell.cpu_ns.store(0, Ordering::Relaxed);
        cell.allocs.store(0, Ordering::Relaxed);
        cell.alloc_bytes.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Collapsed-stack renderer.
// ---------------------------------------------------------------------

/// Fold trace trees into collapsed-stack lines:
///
/// ```text
/// zltp.client.request;zltp.client.transport;zltp.server.request 1234
/// ```
///
/// One line per distinct root-to-node path, value = **self** wall time
/// in microseconds summed across all given traces (a node's duration
/// minus its children's) — exactly the `flamegraph.pl` /
/// speedscope-ingestible folded format, with `--countname=us`.
pub fn render_collapsed(traces: &[Arc<Trace>]) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    fn fold(node: &TraceNode, prefix: &str, folded: &mut BTreeMap<String, u64>) {
        let path = if prefix.is_empty() {
            node.name.to_string()
        } else {
            format!("{prefix};{}", node.name)
        };
        let child_ns: u64 = node.children.iter().map(|c| c.duration_ns).sum();
        let self_us = node.duration_ns.saturating_sub(child_ns) / 1_000;
        *folded.entry(path.clone()).or_insert(0) += self_us;
        for child in &node.children {
            fold(child, &path, folded);
        }
    }
    for trace in traces {
        fold(&trace.root, "", &mut folded);
    }
    let mut out = String::new();
    for (path, us) in folded {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// [`render_collapsed`] over the global collector's recent traces — the
/// `GET /profile` body.
pub fn render_collapsed_recent() -> String {
    render_collapsed(&crate::trace::collector().recent())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanRecord, TraceCollector};

    /// Profiling state is process-global; tests that toggle it must not
    /// interleave.
    static PROFILE_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn spin_ms(ms: u64) {
        let start = std::time::Instant::now();
        while start.elapsed() < std::time::Duration::from_millis(ms) {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn cpu_clocks_advance_under_load() {
        let Some(t0) = thread_cpu_ns() else {
            return; // platform without the clock: nothing to assert
        };
        let p0 = process_cpu_ns().expect("process clock where thread clock exists");
        spin_ms(10);
        let t1 = thread_cpu_ns().unwrap();
        let p1 = process_cpu_ns().unwrap();
        assert!(t1 > t0, "thread CPU clock did not advance: {t0} -> {t1}");
        assert!(
            t1 - t0 >= 2_000_000,
            "10 ms spin consumed only {} ns of CPU",
            t1 - t0
        );
        assert!(p1 >= p0 + (t1 - t0) / 2, "process clock lags thread clock");
    }

    #[test]
    fn scopes_attribute_self_cpu_without_double_counting() {
        let _serial = PROFILE_TEST_LOCK.lock();
        if thread_cpu_ns().is_none() {
            return;
        }
        set_enabled(true);
        reset_phases();
        let before = thread_cpu_ns().unwrap();
        {
            let _outer = Scope::enter("prof.test.outer");
            spin_ms(8);
            {
                let _inner = Scope::enter("prof.test.inner");
                spin_ms(8);
            }
        }
        let spent = thread_cpu_ns().unwrap() - before;
        set_enabled(false);
        let phases = phase_profiles();
        let get = |n: &str| phases.iter().find(|p| p.name == n).unwrap().clone();
        let outer = get("prof.test.outer");
        let inner = get("prof.test.inner");
        assert_eq!(outer.enters, 1);
        assert_eq!(inner.enters, 1);
        assert!(outer.cpu_ns >= 2_000_000, "outer {}", outer.cpu_ns);
        assert!(inner.cpu_ns >= 2_000_000, "inner {}", inner.cpu_ns);
        // Self-time accounting: the two phases partition the interval,
        // so their sum cannot exceed what the thread actually burned.
        assert!(
            outer.cpu_ns + inner.cpu_ns <= spent,
            "attributed {} + {} > thread total {} (double-counting)",
            outer.cpu_ns,
            inner.cpu_ns,
            spent
        );
        // And the outer phase must NOT include the inner spin.
        assert!(
            outer.cpu_ns < spent.saturating_sub(inner.cpu_ns) + spent / 4,
            "outer self time {} looks inclusive of inner {}",
            outer.cpu_ns,
            inner.cpu_ns
        );
    }

    #[test]
    fn disabled_scopes_cost_nothing_and_record_nothing() {
        let _serial = PROFILE_TEST_LOCK.lock();
        set_enabled(false);
        reset_phases();
        {
            let _s = Scope::enter("prof.test.disabled");
            spin_ms(2);
        }
        assert!(
            !phase_profiles()
                .iter()
                .any(|p| p.name == "prof.test.disabled" && p.enters > 0),
            "disabled scope still recorded"
        );
    }

    #[test]
    fn collapsed_stacks_fold_self_time() {
        let c = TraceCollector::new();
        let rec = |span_id, parent_id, name: &'static str, start_us, duration_ns| SpanRecord {
            trace_id: 42,
            span_id,
            parent_id,
            name,
            start_us,
            duration_ns,
        };
        c.record(rec(3, 2, "leaf", 10, 1_000_000));
        c.record(rec(2, 1, "mid", 5, 3_000_000));
        c.record(rec(1, 0, "root", 0, 10_000_000));
        let folded = render_collapsed(&c.recent());
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort_unstable();
        assert_eq!(
            lines,
            vec![
                "root 7000",          // 10 ms - 3 ms child
                "root;mid 2000",      // 3 ms - 1 ms child
                "root;mid;leaf 1000", // leaf keeps its full duration
            ]
        );
    }

    #[test]
    fn collapsed_stacks_merge_repeated_paths_across_traces() {
        let c = TraceCollector::new();
        for trace_id in 1..=3u128 {
            c.record(SpanRecord {
                trace_id,
                span_id: 1,
                parent_id: 0,
                name: "repeat.root",
                start_us: 0,
                duration_ns: 2_000_000,
            });
        }
        let folded = render_collapsed(&c.recent());
        assert_eq!(folded, "repeat.root 6000\n");
    }

    #[test]
    fn heap_stats_are_monotonic_in_totals() {
        // Works with or without CountingAlloc installed (unit tests run
        // under the default allocator; totals just stay 0 there).
        let a = heap_stats();
        let _v: Vec<u8> = Vec::with_capacity(1 << 16);
        let b = heap_stats();
        assert!(b.allocs >= a.allocs);
        assert!(b.allocated_bytes >= a.allocated_bytes);
        assert!(b.peak_bytes >= b.current_bytes.min(b.peak_bytes));
        reset_peak();
        let c = heap_stats();
        assert!(c.peak_bytes <= b.peak_bytes.max(c.current_bytes));
    }
}
