#![warn(missing_docs)]

//! # lightweb-telemetry
//!
//! Observability substrate for the lightweb stack: a global [`Registry`]
//! of named **counters**, **gauges**, and **log₂-bucketed latency
//! histograms**, RAII **spans** that record wall time ([`span!`]), an
//! optional JSON-lines **event sink** ([`events`]), a Prometheus-style
//! **text exporter** with a parse-back [`Snapshot`] API for tests,
//! per-request **causal tracing** ([`trace`]), and a live **scrape
//! endpoint** ([`scrape`]) serving `/metrics` and `/traces` over HTTP.
//!
//! ## Design constraints
//!
//! * **Hot path is lock-free and allocation-free.** `Counter::inc`,
//!   `Gauge::set`, and `Histogram::record` are single relaxed atomic
//!   operations on pre-registered handles; the registry lock is touched
//!   only at handle-creation time. The [`span!`] macro caches its
//!   histogram handle in a `static OnceLock`, so steady-state span entry
//!   and exit are a clock read plus one histogram record.
//! * **Relaxed ordering caveat.** All metric atomics use
//!   `Ordering::Relaxed`: values are individually exact (increments are
//!   never lost) but a [`Snapshot`] taken while writers run is not a
//!   consistent cut across metrics — e.g. `requests` may momentarily
//!   exceed the sum of `batch.size` observations. Quiesce writers before
//!   snapshotting when cross-metric equalities must hold exactly.
//! * **Naming convention.** `<crate>.<subsystem>.<metric>`, e.g.
//!   `zltp.server.requests`, `pir.scan.ns`, `transport.bytes.sent`.
//!   Durations are recorded in nanoseconds and suffixed `.ns`.
//!
//! ## Example
//!
//! ```
//! use lightweb_telemetry::{registry, span};
//!
//! let reqs = registry().counter("doc.server.requests");
//! reqs.inc();
//! {
//!     let _guard = span!("doc.scan.ns");
//!     // ... timed work ...
//! }
//! let snap = registry().snapshot();
//! assert_eq!(snap.counters["doc.server.requests"], 1);
//! assert_eq!(snap.histograms["doc.scan.ns"].count, 1);
//! let text = lightweb_telemetry::render_text(&snap);
//! let back = lightweb_telemetry::Snapshot::parse_text(&text).unwrap();
//! assert_eq!(snap, back);
//! ```

pub mod events;
pub mod profile;
pub mod scrape;
pub mod trace;

use parking_lot::RwLock;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Metric primitives.
// ---------------------------------------------------------------------

/// A monotonically increasing counter. Cloning shares the same cell.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value gauge with a high-water mark. Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<GaugeCell>,
}

struct GaugeCell {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// Set the current value (also advances the high-water mark).
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.value.store(v, Ordering::Relaxed);
        self.cell.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjust the current value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        let v = self.cell.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.cell.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.cell.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set.
    #[inline]
    pub fn max(&self) -> i64 {
        self.cell.max.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds value 0, bucket `i` holds
/// values with `i-1` = floor(log₂ v), i.e. `v` in `[2^(i-1), 2^i)`.
pub(crate) const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations (typically
/// nanoseconds). Recording is one relaxed `fetch_add` per cell — no
/// locks, no allocation. Cloning shares the cells.
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Estimate quantile `p` from log₂ bucket populations: find the bucket
/// holding the rank-`⌈p·count⌉` observation and return its geometric
/// midpoint, clamped to the observed `max`. Shared by histogram
/// snapshots and the trace collector's per-phase aggregates.
pub(crate) fn quantile_from_buckets(buckets: &[u64], count: u64, max: u64, p: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    // Rank of the observation at quantile p (1-based).
    let rank = ((p * count as f64).ceil() as u64).clamp(1, count);
    let mut seen = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            // Midpoint-ish of bucket i's value range [2^(i-1), 2^i),
            // clamped to the observed max.
            let est = match i {
                0 => 0,
                1 => 1,
                _ => (1u64 << (i - 1)) + (1u64 << (i - 2)),
            };
            return est.min(max);
        }
    }
    max
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &*self.cells;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a [`std::time::Duration`] in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let c = &*self.cells;
        let buckets: Vec<u64> = c
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let sum = c.sum.load(Ordering::Relaxed);
        let max = c.max.load(Ordering::Relaxed);
        let q = |p: f64| quantile_from_buckets(&buckets, count, max, p);
        HistogramSnapshot {
            count,
            sum,
            max,
            p50: q(0.50),
            p90: q(0.90),
            p95: q(0.95),
            p99: q(0.99),
        }
    }
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

/// Whether `name` is a well-formed metric name: non-empty, no
/// whitespace (which would corrupt the space-delimited exporter
/// format), and no empty `.`-separated segments.
fn is_valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && !name.contains(char::is_whitespace)
        && name.split('.').all(|seg| !seg.is_empty())
}

/// Repair an invalid metric name: whitespace becomes `_`, empty
/// segments are dropped, and a name with nothing left becomes
/// `"invalid.metric.name"`. Pure — the debug-mode panic lives in
/// [`checked_metric_name`].
fn sanitize_metric_name(name: &str) -> Cow<'_, str> {
    if is_valid_metric_name(name) {
        return Cow::Borrowed(name);
    }
    let mut cleaned = String::with_capacity(name.len());
    for seg in name.split('.').filter(|s| !s.is_empty()) {
        if !cleaned.is_empty() {
            cleaned.push('.');
        }
        for ch in seg.chars() {
            cleaned.push(if ch.is_whitespace() { '_' } else { ch });
        }
    }
    if cleaned.is_empty() {
        Cow::Owned("invalid.metric.name".to_string())
    } else {
        Cow::Owned(cleaned)
    }
}

/// Handle-creation gate: panic on malformed names in debug builds (the
/// bug should not survive development), sanitize in release builds (a
/// production exporter must never emit corrupt lines).
fn checked_metric_name(name: &str) -> Cow<'_, str> {
    debug_assert!(
        is_valid_metric_name(name),
        "invalid metric name {name:?}: metric names must be non-empty, \
         whitespace-free, with no empty '.' segments"
    );
    sanitize_metric_name(name)
}

/// A namespace of metrics. Most code uses the global [`registry()`];
/// independent registries exist for tests.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter `name`. Takes the registry lock — call
    /// once and keep the (cheaply cloneable) handle on hot paths.
    /// Malformed names (whitespace, empty segments) panic in debug
    /// builds and are sanitized in release builds.
    pub fn counter(&self, name: &str) -> Counter {
        let name = checked_metric_name(name);
        if let Some(c) = self.counters.read().get(name.as_ref()) {
            return c.clone();
        }
        self.counters
            .write()
            .entry(name.into_owned())
            .or_insert_with(|| Counter {
                cell: Arc::new(AtomicU64::new(0)),
            })
            .clone()
    }

    /// Get or create the gauge `name`. Same name rules as
    /// [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        let name = checked_metric_name(name);
        if let Some(g) = self.gauges.read().get(name.as_ref()) {
            return g.clone();
        }
        self.gauges
            .write()
            .entry(name.into_owned())
            .or_insert_with(|| Gauge {
                cell: Arc::new(GaugeCell {
                    value: AtomicI64::new(0),
                    max: AtomicI64::new(0),
                }),
            })
            .clone()
    }

    /// Get or create the histogram `name`. Same name rules as
    /// [`Registry::counter`].
    pub fn histogram(&self, name: &str) -> Histogram {
        let name = checked_metric_name(name);
        if let Some(h) = self.histograms.read().get(name.as_ref()) {
            return h.clone();
        }
        self.histograms
            .write()
            .entry(name.into_owned())
            .or_insert_with(|| Histogram {
                cells: Arc::new(HistogramCells {
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                    count: AtomicU64::new(0),
                    sum: AtomicU64::new(0),
                    max: AtomicU64::new(0),
                }),
            })
            .clone()
    }

    /// Capture every metric's current value. See the module docs for the
    /// relaxed-ordering caveat: per-metric values are exact, cross-metric
    /// consistency requires quiescent writers.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        GaugeSnapshot {
                            value: v.get(),
                            max: v.max(),
                        },
                    )
                })
                .collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zero every registered metric (handles stay valid). Intended for
    /// per-experiment isolation in benches; racing writers may land
    /// increments on either side of the reset.
    pub fn reset(&self) {
        for c in self.counters.read().values() {
            c.cell.store(0, Ordering::Relaxed);
        }
        for g in self.gauges.read().values() {
            g.cell.value.store(0, Ordering::Relaxed);
            g.cell.max.store(0, Ordering::Relaxed);
        }
        for h in self.histograms.read().values() {
            for b in &h.cells.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.cells.count.store(0, Ordering::Relaxed);
            h.cells.sum.store(0, Ordering::Relaxed);
            h.cells.max.store(0, Ordering::Relaxed);
        }
    }
}

/// The process-wide registry all lightweb crates record into.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------

/// RAII guard created by [`span!`]: records wall time into a histogram
/// (and an event, if a sink is installed) when dropped.
pub struct SpanGuard {
    name: &'static str,
    histogram: Histogram,
    start: Instant,
    /// CPU/allocation attribution for the span's phase (no-op unless
    /// profiling is enabled — see [`profile`]).
    _prof: profile::Scope,
}

impl SpanGuard {
    /// Start a span now. Prefer the [`span!`] macro, which caches the
    /// histogram handle.
    pub fn new(name: &'static str, histogram: Histogram) -> Self {
        SpanGuard {
            name,
            histogram,
            start: Instant::now(),
            _prof: profile::Scope::enter(name),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.histogram.record(ns);
        if events::enabled() {
            events::emit(self.name, &[("ns", events::Field::U64(ns))]);
        }
    }
}

/// Open a timed span recording into the named global histogram:
/// `let _g = span!("pir.scan.ns");`. The histogram handle is resolved
/// once per call site and cached in a `static`, so steady-state cost is
/// two clock reads and one atomic record — no registry lock.
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        let h = HANDLE.get_or_init(|| $crate::registry().histogram($name));
        $crate::SpanGuard::new($name, h.clone())
    }};
}

/// Fetch a cached counter handle for a call site:
/// `counter!("zltp.session.errors").inc()`. Same caching scheme as
/// [`span!`] — the registry lock is taken only on first use.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static HANDLE: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::registry().counter($name))
    }};
}

// ---------------------------------------------------------------------
// Snapshot + exporter.
// ---------------------------------------------------------------------

/// Point-in-time gauge value and high-water mark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Last value set.
    pub value: i64,
    /// Highest value ever set.
    pub max: i64,
}

/// Point-in-time histogram summary. Quantiles are log₂-bucket estimates
/// (geometric bucket midpoints, clamped to `max`); `count`, `sum`, and
/// `max` are exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Estimated 50th percentile.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// All metric values at one instant. Round-trips through the text
/// exporter: `Snapshot::parse_text(&render_text(&s)) == Ok(s)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Counter delta against an earlier snapshot (missing-then = 0).
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
            - earlier.counters.get(name).copied().unwrap_or(0)
    }

    /// Parse exporter text back into a snapshot. Accepts exactly the
    /// format produced by [`render_text`].
    pub fn parse_text(text: &str) -> Result<Snapshot, String> {
        let mut snap = Snapshot::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| format!("line {}: no value: {line:?}", lineno + 1))?;
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|e| format!("line {}: bad value {v:?}: {e}", lineno + 1))
            };
            let parse_i64 = |v: &str| {
                v.parse::<i64>()
                    .map_err(|e| format!("line {}: bad value {v:?}: {e}", lineno + 1))
            };
            if let Some((name, label)) = key.split_once('{') {
                // Histogram quantile line: name{q="0.5"} value
                let q = label
                    .strip_suffix("\"}")
                    .and_then(|l| l.strip_prefix("q=\""))
                    .ok_or_else(|| format!("line {}: bad label {label:?}", lineno + 1))?;
                let h = snap
                    .histograms
                    .entry(name.to_string())
                    .or_insert(EMPTY_HIST);
                let v = parse_u64(value)?;
                match q {
                    "0.5" => h.p50 = v,
                    "0.9" => h.p90 = v,
                    "0.95" => h.p95 = v,
                    "0.99" => h.p99 = v,
                    other => {
                        return Err(format!("line {}: unknown quantile {other:?}", lineno + 1))
                    }
                }
            } else if let Some(name) = key.strip_suffix("_count") {
                snap.histograms
                    .entry(name.to_string())
                    .or_insert(EMPTY_HIST)
                    .count = parse_u64(value)?;
            } else if let Some(name) = key.strip_suffix("_sum") {
                snap.histograms
                    .entry(name.to_string())
                    .or_insert(EMPTY_HIST)
                    .sum = parse_u64(value)?;
            } else if let Some(name) = key.strip_suffix("_max") {
                if let Some(g) = key.strip_suffix("_gauge_max") {
                    snap.gauges.entry(g.to_string()).or_insert(EMPTY_GAUGE).max = parse_i64(value)?;
                } else {
                    snap.histograms
                        .entry(name.to_string())
                        .or_insert(EMPTY_HIST)
                        .max = parse_u64(value)?;
                }
            } else if let Some(name) = key.strip_suffix("_gauge") {
                snap.gauges
                    .entry(name.to_string())
                    .or_insert(EMPTY_GAUGE)
                    .value = parse_i64(value)?;
            } else {
                snap.counters.insert(key.to_string(), parse_u64(value)?);
            }
        }
        Ok(snap)
    }
}

const EMPTY_HIST: HistogramSnapshot = HistogramSnapshot {
    count: 0,
    sum: 0,
    max: 0,
    p50: 0,
    p90: 0,
    p95: 0,
    p99: 0,
};
const EMPTY_GAUGE: GaugeSnapshot = GaugeSnapshot { value: 0, max: 0 };

/// Render a snapshot in the Prometheus-style text format:
///
/// ```text
/// # counters
/// zltp.server.requests 128
/// # gauges (value, then high-water mark)
/// oram.stash.depth_gauge 3
/// oram.stash.depth_gauge_max 11
/// # histograms (quantiles, then count/sum/max)
/// pir.scan.ns{q="0.5"} 104857600
/// pir.scan.ns_count 128
/// ```
pub fn render_text(snap: &Snapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    if !snap.counters.is_empty() {
        out.push_str("# counters\n");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "{name} {v}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("# gauges\n");
        for (name, g) in &snap.gauges {
            let _ = writeln!(out, "{name}_gauge {}", g.value);
            let _ = writeln!(out, "{name}_gauge_max {}", g.max);
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("# histograms\n");
        for (name, h) in &snap.histograms {
            let _ = writeln!(out, "{name}{{q=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{name}{{q=\"0.9\"}} {}", h.p90);
            let _ = writeln!(out, "{name}{{q=\"0.95\"}} {}", h.p95);
            let _ = writeln!(out, "{name}{{q=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{name}_count {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_max {}", h.max);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_basics() {
        let r = Registry::new();
        let c = r.counter("t.c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name -> same cell.
        r.counter("t.c").inc();
        assert_eq!(c.get(), 6);

        let g = r.gauge("t.g");
        g.set(10);
        g.add(-3);
        g.set(2);
        assert_eq!(g.get(), 2);
        assert_eq!(g.max(), 10);

        let h = r.histogram("t.h");
        for v in [0u64, 1, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 101_106);
        assert_eq!(s.max, 100_000);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn quantiles_are_order_of_magnitude_right() {
        let r = Registry::new();
        let h = r.histogram("t.q");
        // 90 fast observations ~1µs, 10 slow ~1ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert!(s.p50 >= 512 && s.p50 <= 2048, "p50 = {}", s.p50);
        assert!(s.p99 >= 512 * 1024 && s.p99 <= 1_000_000, "p99 = {}", s.p99);
        assert_eq!(s.max, 1_000_000);
        // p95 falls in the slow mode and the quantiles are ordered.
        assert!(s.p95 >= 512 * 1024 && s.p95 <= 1_000_000, "p95 = {}", s.p95);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99);
    }

    #[test]
    fn p95_renders_and_parses_back() {
        let r = Registry::new();
        let h = r.histogram("t.p95");
        for v in [10u64, 20, 30, 40, 50_000] {
            h.record(v);
        }
        let snap = r.snapshot();
        let text = render_text(&snap);
        assert!(text.contains("t.p95{q=\"0.95\"}"), "text:\n{text}");
        let back = Snapshot::parse_text(&text).unwrap();
        assert_eq!(back.histograms["t.p95"].p95, snap.histograms["t.p95"].p95);
        assert_eq!(back, snap);
    }

    #[test]
    fn p50_p95_p99_render_and_parse_back() {
        let r = Registry::new();
        let h = r.histogram("t.quantiles");
        // Bimodal so the quantiles separate: 94 fast, 6 slow.
        for _ in 0..94 {
            h.record(1_000);
        }
        for _ in 0..6 {
            h.record(8_000_000);
        }
        let snap = r.snapshot();
        let text = render_text(&snap);
        for q in ["0.5", "0.95", "0.99"] {
            assert!(
                text.contains(&format!("t.quantiles{{q=\"{q}\"}}")),
                "missing q={q} line in:\n{text}"
            );
        }
        let back = Snapshot::parse_text(&text).unwrap();
        let (b, s) = (
            back.histograms["t.quantiles"],
            snap.histograms["t.quantiles"],
        );
        assert_eq!(b.p50, s.p50);
        assert_eq!(b.p95, s.p95);
        assert_eq!(b.p99, s.p99);
        assert!(s.p50 < s.p95, "p50 {} p95 {}", s.p50, s.p95);
        assert_eq!(back, snap);
    }

    #[test]
    fn metric_name_validation_and_sanitization() {
        for good in ["a", "a.b.c", "zltp.server.request.ns", "x-y_z.0"] {
            assert!(is_valid_metric_name(good), "{good:?} should be valid");
            assert!(matches!(sanitize_metric_name(good), Cow::Borrowed(_)));
        }
        for bad in ["", " ", "a b", "a..b", ".a", "a.", "a\tb", "a\nb"] {
            assert!(!is_valid_metric_name(bad), "{bad:?} should be invalid");
        }
        assert_eq!(sanitize_metric_name("a b.c"), "a_b.c");
        assert_eq!(sanitize_metric_name("a..b"), "a.b");
        assert_eq!(sanitize_metric_name(".a."), "a");
        assert_eq!(sanitize_metric_name("a\t.b\n"), "a_.b_");
        assert_eq!(sanitize_metric_name(""), "invalid.metric.name");
        // Sanitized output is always valid, so the exporter stays clean.
        for bad in ["", " x ", "..", "a b.c d", "\t"] {
            assert!(
                is_valid_metric_name(&sanitize_metric_name(bad)),
                "sanitize({bad:?}) = {:?} still invalid",
                sanitize_metric_name(bad)
            );
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid metric name")]
    fn malformed_name_panics_in_debug() {
        Registry::new().counter("bad name");
    }

    #[test]
    fn sanitized_names_round_trip_through_exporter() {
        // What release builds would register under a repaired name must
        // render to parseable exporter text.
        let r = Registry::new();
        r.counters
            .write()
            .entry(sanitize_metric_name("bad name.here").into_owned())
            .or_insert_with(|| Counter {
                cell: Arc::new(AtomicU64::new(7)),
            });
        let snap = r.snapshot();
        let text = render_text(&snap);
        assert!(text.contains("bad_name.here 7"));
        assert_eq!(Snapshot::parse_text(&text).unwrap(), snap);
    }

    #[test]
    fn exporter_round_trips() {
        let r = Registry::new();
        r.counter("a.b.c").add(42);
        r.counter("transport.bytes.sent").add(13_926);
        let g = r.gauge("oram.stash.depth");
        g.set(7);
        g.set(3);
        let h = r.histogram("pir.scan.ns");
        for v in [5u64, 900, 1_048_576, 3_000_000] {
            h.record(v);
        }
        let snap = r.snapshot();
        let text = render_text(&snap);
        let back = Snapshot::parse_text(&text).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Registry::new().snapshot();
        assert_eq!(Snapshot::parse_text(&render_text(&snap)).unwrap(), snap);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Snapshot::parse_text("no-value-line\n").is_err());
        assert!(Snapshot::parse_text("x{bad=\"l\"} 1\n").is_err());
        assert!(Snapshot::parse_text("c notanumber\n").is_err());
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("t.r");
        let h = r.histogram("t.rh");
        c.add(5);
        h.record(99);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(r.snapshot().counters["t.r"], 1);
    }

    #[test]
    fn span_macro_records_into_global() {
        let before = registry().snapshot();
        {
            let _g = span!("telemetry.test.span.ns");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let after = registry().snapshot();
        let h = after.histograms["telemetry.test.span.ns"];
        let before_count = before
            .histograms
            .get("telemetry.test.span.ns")
            .map(|h| h.count)
            .unwrap_or(0);
        assert_eq!(h.count, before_count + 1);
        assert!(h.max >= 2_000_000, "span recorded {} ns", h.max);
    }

    #[test]
    fn concurrent_recording_from_many_threads_loses_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 50_000;
        let r = Registry::new();
        // Handles created up front: the hot loop below must touch no lock.
        let c = r.counter("t.mt.count");
        let h = r.histogram("t.mt.hist");
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        c.inc();
                        h.record((t as u64) << 32 | i);
                    }
                });
            }
        });
        let total = THREADS as u64 * PER_THREAD;
        assert_eq!(c.get(), total);
        let s = h.snapshot();
        assert_eq!(s.count, total);
    }
}
