//! Recursive position map: making the enclave-private state
//! polylogarithmic, as the paper's §2.2 cost claim strictly requires.
//!
//! Plain Path ORAM keeps an `N`-entry position map in trusted memory —
//! linear enclave state, fine for small stores but at odds with "both
//! polylogarithmic in the number of key-value pairs". The standard fix
//! (from the original Path ORAM paper, and used by the enclave ORAMs the
//! lightweb paper cites) is *recursion*: pack the position map into
//! blocks of `ENTRIES_PER_BLOCK` leaves and store those blocks in a
//! second, `ENTRIES_PER_BLOCK`-times smaller Path ORAM, recursing until
//! the remaining map fits in enclave memory.
//!
//! [`RecursivePathOram`] implements one recursion level (map ORAM +
//! data ORAM), which already shrinks trusted state by ~64× and exhibits
//! the full access-pattern structure: every logical access performs
//! exactly one map-ORAM path access followed by one data-ORAM path
//! access, both on uniformly random paths. Deeper recursion repeats the
//! same step and is configured by chaining; see `DESIGN.md`.

use crate::path_oram::{OramError, PathOram};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Position-map entries packed per map block (64 × 8-byte leaves = 512 B
/// blocks, a typical choice).
pub const ENTRIES_PER_BLOCK: u64 = 64;

/// A Path ORAM whose position map lives in a second, smaller Path ORAM.
pub struct RecursivePathOram {
    data: PathOram,
    map: PathOram,
    rng: StdRng,
}

impl RecursivePathOram {
    /// Create an ORAM for `capacity` blocks of `block_len` bytes.
    pub fn new(capacity: u64, block_len: usize) -> Result<Self, OramError> {
        let mut seed = [0u8; 32];
        lightweb_crypto::fill_random(&mut seed);
        Self::with_seed(capacity, block_len, seed)
    }

    /// Deterministic construction for tests.
    pub fn with_seed(capacity: u64, block_len: usize, seed: [u8; 32]) -> Result<Self, OramError> {
        let data = PathOram::with_seed(capacity, block_len, seed)?;
        let map_blocks = capacity.div_ceil(ENTRIES_PER_BLOCK).max(1);
        let mut map_seed = seed;
        map_seed[0] ^= 0xA5;
        let map = PathOram::with_seed(map_blocks, (ENTRIES_PER_BLOCK * 8) as usize, map_seed)?;
        let mut rng_seed = seed;
        rng_seed[1] ^= 0x5A;
        Ok(Self {
            data,
            map,
            rng: StdRng::from_seed(rng_seed),
        })
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.data.capacity()
    }

    /// Data block length in bytes.
    pub fn block_len(&self) -> usize {
        self.data.block_len()
    }

    /// Fetch the position-map block covering `addr`, returning the stored
    /// leaf for `addr` (or `None` if never written) and writing back the
    /// block with `new_leaf` in place. One map-ORAM access, always.
    fn swap_position(&mut self, addr: u64, new_leaf: u64) -> Result<Option<u64>, OramError> {
        let block_idx = addr / ENTRIES_PER_BLOCK;
        let offset = ((addr % ENTRIES_PER_BLOCK) * 8) as usize;
        // Read the current block (or an empty one). `read` is itself one
        // path access; the subsequent `write` is the second. To keep the
        // map access count fixed at 2 per logical op, both always run.
        let mut block = self
            .map
            .read(block_idx)?
            .unwrap_or_else(|| vec![0u8; (ENTRIES_PER_BLOCK * 8) as usize]);
        let raw = u64::from_le_bytes(block[offset..offset + 8].try_into().unwrap());
        // Entries are stored as leaf+1 so 0 means "never written".
        let old = raw.checked_sub(1);
        block[offset..offset + 8].copy_from_slice(&(new_leaf + 1).to_le_bytes());
        self.map.write(block_idx, &block)?;
        Ok(old)
    }

    /// Read a block; `None` if never written. Fixed cost: two map-ORAM
    /// path accesses plus one data-ORAM path access.
    pub fn read(&mut self, addr: u64) -> Result<Option<Vec<u8>>, OramError> {
        self.access(addr, None)
    }

    /// Write a block.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), OramError> {
        self.access(addr, Some(data)).map(|_| ())
    }

    fn access(&mut self, addr: u64, write: Option<&[u8]>) -> Result<Option<Vec<u8>>, OramError> {
        if addr >= self.data.capacity() {
            return Err(OramError::AddrOutOfRange {
                addr,
                capacity: self.data.capacity(),
            });
        }
        if let Some(d) = write {
            if d.len() != self.data.block_len() {
                return Err(OramError::BlockLen {
                    expected: self.data.block_len(),
                    got: d.len(),
                });
            }
        }
        let new_leaf = self.rng.gen_range(0..self.data.num_leaves());
        let stored = self.swap_position(addr, new_leaf)?;
        // A never-written address still performs a full (dummy-path) data
        // access at a uniform leaf.
        let read_leaf = stored.unwrap_or_else(|| self.rng.gen_range(0..self.data.num_leaves()));
        let result = self
            .data
            .access_with_position(addr, read_leaf, new_leaf, write)?;
        // Note: if this was a read miss, the map now records a leaf for an
        // address holding no block. That is harmless: the next access
        // reads that (empty) path — indistinguishable from a dummy.
        Ok(result)
    }

    /// Enclave-private bytes: both stashes plus the *map ORAM's* internal
    /// position map — `capacity / ENTRIES_PER_BLOCK` entries instead of
    /// `capacity`, the recursion win.
    pub fn private_bytes(&self) -> usize {
        self.data.private_bytes_stash_only() + self.map.private_bytes()
    }

    /// Untrusted bytes across both trees.
    pub fn untrusted_bytes(&self) -> usize {
        self.data.untrusted_bytes() + self.map.untrusted_bytes()
    }

    /// Trace control over both trees (audited separately: tree heights
    /// differ).
    pub fn enable_traces(&mut self) {
        self.data.enable_trace();
        self.map.enable_trace();
    }

    /// Take `(map_trace, data_trace)`.
    pub fn take_traces(
        &mut self,
    ) -> (
        Option<Vec<crate::enclave::TraceEvent>>,
        Option<Vec<crate::enclave::TraceEvent>>,
    ) {
        (self.map.take_trace(), self.data.take_trace())
    }

    /// Mark an op boundary on both traces.
    pub fn mark_op_start(&mut self) {
        self.data.mark_op_start();
        self.map.mark_op_start();
    }

    /// The data tree height (for auditing the data trace).
    pub fn data_height(&self) -> u32 {
        self.data.height()
    }

    /// The map tree height (for auditing the map trace).
    pub fn map_height(&self) -> u32 {
        self.map.height()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auditor::audit_trace;
    use std::collections::HashMap;

    #[test]
    fn read_write_roundtrip() {
        let mut oram = RecursivePathOram::with_seed(256, 16, [1; 32]).unwrap();
        assert_eq!(oram.read(7).unwrap(), None);
        oram.write(7, &[7u8; 16]).unwrap();
        assert_eq!(oram.read(7).unwrap(), Some(vec![7u8; 16]));
        oram.write(7, &[8u8; 16]).unwrap();
        assert_eq!(oram.read(7).unwrap(), Some(vec![8u8; 16]));
    }

    #[test]
    fn matches_model_under_mixed_workload() {
        let mut oram = RecursivePathOram::with_seed(128, 8, [2; 32]).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut x = 12345u64;
        for i in 0..600u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = x % 128;
            if i % 3 == 0 {
                let data = vec![(x >> 32) as u8; 8];
                oram.write(addr, &data).unwrap();
                model.insert(addr, data);
            } else {
                assert_eq!(
                    oram.read(addr).unwrap().as_ref(),
                    model.get(&addr),
                    "step {i}"
                );
            }
        }
    }

    #[test]
    fn private_state_shrinks_by_recursion() {
        // Fill both a flat and a recursive ORAM and compare trusted bytes.
        let n = 4096u64;
        let mut flat = PathOram::with_seed(n, 32, [3; 32]).unwrap();
        let mut rec = RecursivePathOram::with_seed(n, 32, [3; 32]).unwrap();
        for a in 0..n {
            flat.write(a, &[a as u8; 32]).unwrap();
            rec.write(a, &[a as u8; 32]).unwrap();
        }
        let flat_private = flat.private_bytes();
        let rec_private = rec.private_bytes();
        assert!(
            rec_private * 4 < flat_private,
            "recursion should shrink trusted state: flat {flat_private} vs recursive {rec_private}"
        );
    }

    #[test]
    fn both_trees_stay_oblivious() {
        let mut oram = RecursivePathOram::with_seed(512, 8, [4; 32]).unwrap();
        for a in 0..512u64 {
            oram.write(a, &[a as u8; 8]).unwrap();
        }
        oram.enable_traces();
        for _ in 0..128 {
            oram.mark_op_start();
            oram.read(3).unwrap(); // adversarially hot address
        }
        let (map_trace, data_trace) = oram.take_traces();
        let map_report = audit_trace(&map_trace.unwrap(), oram.map_height());
        let data_report = audit_trace(&data_trace.unwrap(), oram.data_height());
        assert!(map_report.passed(), "map trace: {:?}", map_report.notes);
        assert!(data_report.passed(), "data trace: {:?}", data_report.notes);
    }

    #[test]
    fn fixed_access_count_per_operation() {
        let mut oram = RecursivePathOram::with_seed(256, 8, [5; 32]).unwrap();
        oram.write(1, &[1; 8]).unwrap();
        oram.enable_traces();
        oram.mark_op_start();
        oram.read(1).unwrap(); // hit
        oram.mark_op_start();
        oram.read(200).unwrap(); // miss
        let (map_trace, data_trace) = oram.take_traces();
        let count_events = |t: &[crate::enclave::TraceEvent]| {
            let mut per_op = vec![];
            let mut current = 0usize;
            for e in t {
                if e.kind == crate::enclave::AccessKind::OpStart {
                    per_op.push(current);
                    current = 0;
                } else {
                    current += 1;
                }
            }
            per_op.push(current);
            per_op.retain(|&c| c > 0);
            per_op
        };
        let map_ops = count_events(&map_trace.unwrap());
        let data_ops = count_events(&data_trace.unwrap());
        assert_eq!(
            map_ops[0], map_ops[1],
            "map access count differs hit vs miss"
        );
        assert_eq!(
            data_ops[0], data_ops[1],
            "data access count differs hit vs miss"
        );
    }

    #[test]
    fn rejects_bad_arguments() {
        let mut oram = RecursivePathOram::with_seed(8, 4, [6; 32]).unwrap();
        assert!(matches!(
            oram.read(8),
            Err(OramError::AddrOutOfRange { .. })
        ));
        assert!(matches!(
            oram.write(0, &[0; 5]),
            Err(OramError::BlockLen { .. })
        ));
    }
}
