//! The simulated hardware enclave and its untrusted-memory trace.
//!
//! The paper's enclave mode trusts SGX-style hardware to keep secrets while
//! running on an adversarial server. We do not have an enclave (and the
//! paper itself catalogs a slew of attacks on real ones — [13, 47, 50, 53,
//! 54, 56]); what the *reproduction* needs is the security-relevant
//! observable: the sequence of untrusted-memory accesses the enclave makes.
//! [`UntrustedStorage`] makes that observable explicit — every read and
//! write of untrusted memory is recorded — and [`crate::auditor`] can then
//! verify the obliviousness property that a real deployment would get from
//! ORAM + hardware.

use crate::kv::ObliviousKvStore;
use crate::path_oram::OramError;

/// What kind of untrusted-memory access an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Marks the start of one logical operation (one GET served).
    OpStart,
    /// A bucket read.
    Read,
    /// A bucket write.
    Write,
}

/// One recorded untrusted-memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Read, write, or operation boundary.
    pub kind: AccessKind,
    /// Bucket (cell) index accessed; 0 for `OpStart`.
    pub location: u64,
}

/// Untrusted server memory as seen from inside the enclave.
///
/// A flat array of cells with optional access tracing. The honest server
/// stores the cells; a malicious server additionally watches the access
/// sequence — which is exactly what the trace captures.
#[derive(Clone, Debug)]
pub struct UntrustedStorage<T> {
    cells: Vec<T>,
    trace: Option<Vec<TraceEvent>>,
}

impl<T: Clone> UntrustedStorage<T> {
    /// Allocate `n` cells initialized to `init`.
    pub fn new(n: usize, init: T) -> Self {
        Self {
            cells: vec![init; n],
            trace: None,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the storage is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Start recording accesses (clears any previous trace).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Stop recording and return the trace, if tracing was on.
    pub fn take_trace(&mut self) -> Option<Vec<TraceEvent>> {
        self.trace.take()
    }

    /// Record an operation boundary (no memory touched).
    pub fn mark_op_start(&mut self) {
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent {
                kind: AccessKind::OpStart,
                location: 0,
            });
        }
    }

    /// Read cell `i`.
    pub fn read(&mut self, i: u64) -> T {
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent {
                kind: AccessKind::Read,
                location: i,
            });
        }
        self.cells[i as usize].clone()
    }

    /// Write cell `i`.
    pub fn write(&mut self, i: u64, value: T) {
        if let Some(t) = &mut self.trace {
            t.push(TraceEvent {
                kind: AccessKind::Write,
                location: i,
            });
        }
        self.cells[i as usize] = value;
    }
}

/// A software stand-in for a ZLTP enclave-mode server.
///
/// Pairs the enclave-private state (key table, position map, stash — all
/// inside [`ObliviousKvStore`]) with the traced untrusted bucket store, and
/// exposes the single operation the enclave performs: serving a private
/// GET. Every GET — hit or miss — performs exactly one ORAM access, so the
/// untrusted trace is independent of both the key requested and whether it
/// exists.
pub struct SimulatedEnclave {
    store: ObliviousKvStore,
}

impl SimulatedEnclave {
    /// Create an enclave able to hold `capacity` values of `value_len`
    /// bytes each.
    pub fn new(capacity: u64, value_len: usize) -> Result<Self, OramError> {
        Ok(Self {
            store: ObliviousKvStore::new(capacity, value_len)?,
        })
    }

    /// Bulk-load key-value pairs (the publisher-upload phase; not private).
    pub fn load<'a>(
        &mut self,
        entries: impl IntoIterator<Item = (&'a [u8], &'a [u8])>,
    ) -> Result<(), OramError> {
        for (k, v) in entries {
            self.store.put(k, v)?;
        }
        Ok(())
    }

    /// Serve one private GET.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, OramError> {
        self.store.oram_mut().storage_mut().mark_op_start();
        self.store.get(key)
    }

    /// Insert or update one pair (publisher push path).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), OramError> {
        self.store.oram_mut().storage_mut().mark_op_start();
        self.store.put(key, value)
    }

    /// Begin recording the untrusted-memory trace.
    pub fn enable_trace(&mut self) {
        self.store.oram_mut().storage_mut().enable_trace();
    }

    /// Stop recording and return the trace.
    pub fn take_trace(&mut self) -> Option<Vec<TraceEvent>> {
        self.store.oram_mut().storage_mut().take_trace()
    }

    /// ORAM tree height (needed by the auditor).
    pub fn tree_height(&self) -> u32 {
        self.store.oram().height()
    }

    /// Number of stored pairs.
    pub fn len(&self) -> u64 {
        self.store.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.len() == 0
    }

    /// Approximate bytes of enclave-private memory in use (key table +
    /// position map + stash). The paper's enclave mode is attractive
    /// precisely because this is small compared to the dataset.
    pub fn private_bytes(&self) -> usize {
        self.store.private_bytes()
    }

    /// Bytes of untrusted memory (the bucket tree).
    pub fn untrusted_bytes(&self) -> usize {
        self.store.oram().untrusted_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_reads_back_writes() {
        let mut st = UntrustedStorage::new(4, 0u32);
        st.write(2, 7);
        assert_eq!(st.read(2), 7);
        assert_eq!(st.read(0), 0);
        assert_eq!(st.len(), 4);
        assert!(!st.is_empty());
    }

    #[test]
    fn trace_records_accesses_in_order() {
        let mut st = UntrustedStorage::new(4, 0u32);
        st.enable_trace();
        st.mark_op_start();
        st.read(1);
        st.write(3, 9);
        let trace = st.take_trace().unwrap();
        assert_eq!(
            trace,
            vec![
                TraceEvent {
                    kind: AccessKind::OpStart,
                    location: 0
                },
                TraceEvent {
                    kind: AccessKind::Read,
                    location: 1
                },
                TraceEvent {
                    kind: AccessKind::Write,
                    location: 3
                },
            ]
        );
        // Tracing stopped.
        st.read(0);
        assert!(st.take_trace().is_none());
    }

    #[test]
    fn enclave_serves_gets() {
        let mut enc = SimulatedEnclave::new(64, 8).unwrap();
        enc.load([(b"a".as_slice(), [1u8; 8].as_slice()), (b"b", &[2u8; 8])])
            .unwrap();
        assert_eq!(enc.get(b"a").unwrap().unwrap(), vec![1u8; 8]);
        assert_eq!(enc.get(b"b").unwrap().unwrap(), vec![2u8; 8]);
        assert_eq!(enc.get(b"missing").unwrap(), None);
        assert_eq!(enc.len(), 2);
    }

    #[test]
    fn private_memory_much_smaller_than_untrusted() {
        let mut enc = SimulatedEnclave::new(1024, 64).unwrap();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..512u32)
            .map(|i| (format!("k{i}").into_bytes(), vec![i as u8; 64]))
            .collect();
        enc.load(entries.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))
            .unwrap();
        assert!(
            enc.private_bytes() * 4 < enc.untrusted_bytes(),
            "private {} vs untrusted {}",
            enc.private_bytes(),
            enc.untrusted_bytes()
        );
    }

    #[test]
    fn miss_and_hit_have_identical_trace_shape() {
        let mut enc = SimulatedEnclave::new(64, 8).unwrap();
        enc.load([(b"present".as_slice(), [1u8; 8].as_slice())])
            .unwrap();

        enc.enable_trace();
        enc.get(b"present").unwrap();
        let hit = enc.take_trace().unwrap();

        enc.enable_trace();
        enc.get(b"absent").unwrap();
        let miss = enc.take_trace().unwrap();

        let shape = |t: &[TraceEvent]| t.iter().map(|e| e.kind).collect::<Vec<_>>();
        assert_eq!(shape(&hit), shape(&miss), "hit/miss trace shapes differ");
    }
}
