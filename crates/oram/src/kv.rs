//! An oblivious key-value store over Path ORAM: the data structure a ZLTP
//! enclave-mode server actually runs.
//!
//! ZLTP keys are strings; Path ORAM addresses are dense integers. The
//! enclave keeps a private key table mapping each key to its ORAM address
//! (alongside the position map, this is the enclave-private state whose
//! smallness makes the mode attractive — see the paper's citation of
//! ORAM schemes "tailored to hardware enclaves"). Lookups of absent keys
//! perform a dummy ORAM access so that presence is not observable.

use crate::path_oram::{OramError, PathOram};
use std::collections::HashMap;

/// Oblivious key-value store: string keys, fixed-length values.
pub struct ObliviousKvStore {
    oram: PathOram,
    /// key -> ORAM address. Enclave-private.
    key_table: HashMap<Vec<u8>, u64>,
    next_addr: u64,
    value_len: usize,
}

impl ObliviousKvStore {
    /// Create a store for up to `capacity` pairs of `value_len`-byte values.
    pub fn new(capacity: u64, value_len: usize) -> Result<Self, OramError> {
        Ok(Self {
            oram: PathOram::new(capacity, value_len)?,
            key_table: HashMap::new(),
            next_addr: 0,
            value_len,
        })
    }

    /// Deterministic variant for tests and audits.
    pub fn with_seed(capacity: u64, value_len: usize, seed: [u8; 32]) -> Result<Self, OramError> {
        Ok(Self {
            oram: PathOram::with_seed(capacity, value_len, seed)?,
            key_table: HashMap::new(),
            next_addr: 0,
            value_len,
        })
    }

    /// Fixed value length.
    pub fn value_len(&self) -> usize {
        self.value_len
    }

    /// Number of stored pairs.
    pub fn len(&self) -> u64 {
        self.key_table.len() as u64
    }

    /// Whether the store holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.key_table.is_empty()
    }

    /// Look up `key`. Absent keys cost exactly one dummy ORAM access, so
    /// hit and miss are indistinguishable in the untrusted trace.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, OramError> {
        match self.key_table.get(key) {
            Some(&addr) => self.oram.read(addr),
            None => {
                self.oram.dummy_access()?;
                Ok(None)
            }
        }
    }

    /// Insert or update `key`. Values must have the fixed length.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), OramError> {
        if value.len() != self.value_len {
            return Err(OramError::BlockLen {
                expected: self.value_len,
                got: value.len(),
            });
        }
        let addr = match self.key_table.get(key) {
            Some(&a) => a,
            None => {
                if self.next_addr >= self.oram.capacity() {
                    return Err(OramError::CapacityExceeded {
                        capacity: self.oram.capacity(),
                    });
                }
                let a = self.next_addr;
                self.next_addr += 1;
                self.key_table.insert(key.to_vec(), a);
                a
            }
        };
        self.oram.write(addr, value)
    }

    /// Approximate enclave-private bytes: key table + ORAM private state.
    pub fn private_bytes(&self) -> usize {
        let table: usize = self.key_table.keys().map(|k| k.len() + 8).sum();
        table + self.oram.private_bytes()
    }

    /// Borrow the underlying ORAM (metrics).
    pub fn oram(&self) -> &PathOram {
        &self.oram
    }

    /// Mutable access to the underlying ORAM (trace control).
    pub fn oram_mut(&mut self) -> &mut PathOram {
        &mut self.oram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut kv = ObliviousKvStore::with_seed(16, 4, [1; 32]).unwrap();
        kv.put(b"alpha", &[1; 4]).unwrap();
        kv.put(b"beta", &[2; 4]).unwrap();
        assert_eq!(kv.get(b"alpha").unwrap(), Some(vec![1; 4]));
        assert_eq!(kv.get(b"beta").unwrap(), Some(vec![2; 4]));
        assert_eq!(kv.get(b"gamma").unwrap(), None);
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn update_in_place_does_not_consume_capacity() {
        let mut kv = ObliviousKvStore::with_seed(2, 4, [2; 32]).unwrap();
        kv.put(b"a", &[1; 4]).unwrap();
        for i in 0..10u8 {
            kv.put(b"a", &[i; 4]).unwrap();
        }
        kv.put(b"b", &[9; 4]).unwrap();
        assert_eq!(kv.get(b"a").unwrap(), Some(vec![9; 4]));
        assert_eq!(kv.len(), 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut kv = ObliviousKvStore::with_seed(2, 4, [3; 32]).unwrap();
        kv.put(b"a", &[0; 4]).unwrap();
        kv.put(b"b", &[0; 4]).unwrap();
        assert!(matches!(
            kv.put(b"c", &[0; 4]),
            Err(OramError::CapacityExceeded { capacity: 2 })
        ));
    }

    #[test]
    fn value_length_enforced() {
        let mut kv = ObliviousKvStore::with_seed(4, 4, [4; 32]).unwrap();
        assert!(matches!(
            kv.put(b"a", &[0; 5]),
            Err(OramError::BlockLen {
                expected: 4,
                got: 5
            })
        ));
    }

    #[test]
    fn miss_performs_an_access() {
        // The miss path must still touch the ORAM (dummy access), keeping
        // the per-request access count fixed.
        let mut kv = ObliviousKvStore::with_seed(16, 4, [5; 32]).unwrap();
        kv.put(b"x", &[0; 4]).unwrap();
        let before = kv.oram().access_count();
        kv.get(b"nope").unwrap();
        assert_eq!(kv.oram().access_count(), before + 1);
    }

    #[test]
    fn many_keys_roundtrip() {
        let mut kv = ObliviousKvStore::with_seed(256, 8, [6; 32]).unwrap();
        for i in 0..200u32 {
            kv.put(format!("key-{i}").as_bytes(), &i.to_le_bytes().repeat(2))
                .unwrap();
        }
        for i in (0..200u32).rev() {
            assert_eq!(
                kv.get(format!("key-{i}").as_bytes()).unwrap(),
                Some(i.to_le_bytes().repeat(2)),
                "key-{i}"
            );
        }
    }
}
