//! The access-pattern auditor: empirical verification that the enclave's
//! untrusted-memory trace is oblivious.
//!
//! A real lightweb deployment relies on hardware for enclave integrity;
//! this reproduction instead makes the trace observable and checks the
//! property the hardware+ORAM combination is supposed to deliver:
//!
//! 1. **Fixed shape** — every logical operation performs the same number
//!    of bucket reads followed by the same number of bucket writes.
//! 2. **Path structure** — each operation's reads walk exactly one
//!    root-to-leaf path (each index is the parent of the next).
//! 3. **Leaf uniformity** — the leaves visited across operations are
//!    statistically uniform (chi-squared test), so the sequence carries no
//!    information about which logical keys were requested.

use crate::enclave::{AccessKind, TraceEvent};

/// Outcome of auditing a trace.
#[derive(Clone, Debug)]
pub struct AuditReport {
    /// Number of logical operations found.
    pub ops: usize,
    /// Whether every op had the identical read/write shape.
    pub uniform_shape: bool,
    /// Whether every op's reads form one root-to-leaf path, written back in
    /// reverse.
    pub paths_well_formed: bool,
    /// Chi-squared statistic of the visited-leaf histogram (8 bins).
    pub leaf_chi2: f64,
    /// Whether the chi-squared statistic is below the 99.9% quantile for
    /// 7 degrees of freedom (24.32) — i.e. leaves look uniform.
    pub leaves_uniform: bool,
    /// Human-readable notes on any failure.
    pub notes: Vec<String>,
}

impl AuditReport {
    /// Overall verdict.
    pub fn passed(&self) -> bool {
        self.uniform_shape && self.paths_well_formed && (self.leaves_uniform || self.ops < 64)
    }
}

/// Chi-squared 99.9% critical value for 7 degrees of freedom.
const CHI2_CRIT_7DF: f64 = 24.32;

/// Audit a trace produced by a [`crate::SimulatedEnclave`] (or raw
/// [`crate::PathOram`] with op markers). `height` is the ORAM tree height.
pub fn audit_trace(trace: &[TraceEvent], height: u32) -> AuditReport {
    let mut notes = Vec::new();

    // Split into operations at OpStart markers.
    let mut ops: Vec<&[TraceEvent]> = Vec::new();
    let mut start = None;
    for (i, e) in trace.iter().enumerate() {
        if e.kind == AccessKind::OpStart {
            if let Some(s) = start {
                ops.push(&trace[s..i]);
            }
            start = Some(i + 1);
        }
    }
    if let Some(s) = start {
        ops.push(&trace[s..]);
    } else if !trace.is_empty() {
        // No markers: treat the whole trace as one op.
        ops.push(trace);
    }

    let path_len = (height + 1) as usize;
    let mut uniform_shape = true;
    let mut paths_well_formed = true;
    let mut leaves: Vec<u64> = Vec::new();

    for (op_idx, op) in ops.iter().enumerate() {
        // An op may contain several ORAM accesses (e.g. a batched page
        // fetch); each access is path_len reads + path_len writes.
        if op.len() % (2 * path_len) != 0 || op.is_empty() {
            uniform_shape = false;
            notes.push(format!(
                "op {op_idx}: {} events is not a multiple of one path access ({})",
                op.len(),
                2 * path_len
            ));
            continue;
        }
        for access in op.chunks(2 * path_len) {
            let (reads, writes) = access.split_at(path_len);
            if !reads.iter().all(|e| e.kind == AccessKind::Read)
                || !writes.iter().all(|e| e.kind == AccessKind::Write)
            {
                uniform_shape = false;
                notes.push(format!(
                    "op {op_idx}: reads and writes interleave unexpectedly"
                ));
                continue;
            }
            // Reads must walk root -> leaf: each index is the parent of the
            // next in heap numbering.
            let mut ok = reads[0].location == 1;
            for w in reads.windows(2) {
                if w[1].location >> 1 != w[0].location {
                    ok = false;
                }
            }
            // Write-back must cover the same path (leaf -> root here).
            let mut wlocs: Vec<u64> = writes.iter().map(|e| e.location).collect();
            wlocs.reverse();
            let rlocs: Vec<u64> = reads.iter().map(|e| e.location).collect();
            if wlocs != rlocs {
                ok = false;
            }
            if !ok {
                paths_well_formed = false;
                notes.push(format!(
                    "op {op_idx}: access does not walk a root-to-leaf path"
                ));
            }
            // The leaf is the last read location, minus the leaf offset.
            leaves.push(reads[path_len - 1].location - (1 << height));
        }
    }

    // Chi-squared over 8 bins of the leaf space.
    let bins = 8usize;
    let mut counts = vec![0f64; bins];
    let num_leaves = 1u64 << height;
    for &l in &leaves {
        let bin = if num_leaves >= bins as u64 {
            (l / (num_leaves / bins as u64)) as usize
        } else {
            (l as usize) % bins
        };
        counts[bin.min(bins - 1)] += 1.0;
    }
    let expected = leaves.len() as f64 / bins as f64;
    let leaf_chi2 = if expected > 0.0 {
        counts
            .iter()
            .map(|c| (c - expected).powi(2) / expected)
            .sum()
    } else {
        0.0
    };
    let leaves_uniform = leaf_chi2 < CHI2_CRIT_7DF;
    if !leaves_uniform {
        notes.push(format!(
            "leaf histogram chi2 = {leaf_chi2:.2} exceeds {CHI2_CRIT_7DF}"
        ));
    }

    AuditReport {
        ops: ops.len(),
        uniform_shape,
        paths_well_formed,
        leaf_chi2,
        leaves_uniform,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::SimulatedEnclave;

    fn loaded_enclave(n: u32) -> SimulatedEnclave {
        let mut enc = SimulatedEnclave::new(1024, 8).unwrap();
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| (format!("k{i}").into_bytes(), vec![i as u8; 8]))
            .collect();
        enc.load(entries.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))
            .unwrap();
        enc
    }

    #[test]
    fn honest_trace_passes_audit() {
        let mut enc = loaded_enclave(512);
        enc.enable_trace();
        // A worst-case-for-uniformity workload: hammer one key.
        for _ in 0..256 {
            enc.get(b"k7").unwrap();
        }
        let trace = enc.take_trace().unwrap();
        let report = audit_trace(&trace, enc.tree_height());
        assert_eq!(report.ops, 256);
        assert!(report.uniform_shape, "{:?}", report.notes);
        assert!(report.paths_well_formed, "{:?}", report.notes);
        assert!(report.leaves_uniform, "chi2 = {}", report.leaf_chi2);
        assert!(report.passed());
    }

    #[test]
    fn mixed_hit_miss_trace_passes() {
        let mut enc = loaded_enclave(128);
        enc.enable_trace();
        for i in 0..128u32 {
            // Alternate between present and absent keys.
            if i % 2 == 0 {
                enc.get(format!("k{}", i % 64).as_bytes()).unwrap();
            } else {
                enc.get(format!("missing-{i}").as_bytes()).unwrap();
            }
        }
        let trace = enc.take_trace().unwrap();
        let report = audit_trace(&trace, enc.tree_height());
        assert!(report.passed(), "{:?}", report.notes);
    }

    #[test]
    fn non_oblivious_trace_fails_shape_check() {
        // A fabricated "direct lookup" trace: one read, no path.
        let trace = vec![
            TraceEvent {
                kind: AccessKind::OpStart,
                location: 0,
            },
            TraceEvent {
                kind: AccessKind::Read,
                location: 42,
            },
        ];
        let report = audit_trace(&trace, 7);
        assert!(!report.uniform_shape);
        assert!(!report.passed());
    }

    #[test]
    fn skewed_leaf_trace_fails_uniformity() {
        // Fabricate 256 accesses that always walk the path to leaf 0 —
        // structurally valid but statistically broken.
        let height = 4u32;
        let path_len = (height + 1) as usize;
        let mut trace = Vec::new();
        for _ in 0..256 {
            trace.push(TraceEvent {
                kind: AccessKind::OpStart,
                location: 0,
            });
            let mut locs = Vec::new();
            for level in 0..=height {
                locs.push((1u64 << height) >> (height - level));
            }
            for &l in &locs {
                trace.push(TraceEvent {
                    kind: AccessKind::Read,
                    location: l,
                });
            }
            for &l in locs.iter().rev() {
                trace.push(TraceEvent {
                    kind: AccessKind::Write,
                    location: l,
                });
            }
            assert_eq!(locs.len(), path_len);
        }
        let report = audit_trace(&trace, height);
        assert!(report.uniform_shape);
        assert!(report.paths_well_formed);
        assert!(!report.leaves_uniform, "chi2 = {}", report.leaf_chi2);
        assert!(!report.passed());
    }

    #[test]
    fn wrong_writeback_path_fails() {
        // Reads walk a path but writes go somewhere else.
        let height = 2u32;
        let mut trace = vec![TraceEvent {
            kind: AccessKind::OpStart,
            location: 0,
        }];
        for l in [1u64, 2, 4] {
            trace.push(TraceEvent {
                kind: AccessKind::Read,
                location: l,
            });
        }
        for l in [5u64, 2, 1] {
            trace.push(TraceEvent {
                kind: AccessKind::Write,
                location: l,
            });
        }
        let report = audit_trace(&trace, height);
        assert!(!report.paths_well_formed);
    }

    #[test]
    fn empty_trace_is_trivially_ok() {
        let report = audit_trace(&[], 5);
        assert_eq!(report.ops, 0);
        assert!(report.passed());
    }
}
