//! Path ORAM (Stefanov et al., CCS 2013), the oblivious-RAM scheme behind
//! the enclave mode's untrusted data store.
//!
//! Blocks live in a complete binary tree of buckets held in untrusted
//! memory; each block is assigned to a uniformly random leaf and the
//! invariant is that a block resides somewhere on the path from the root to
//! its leaf (or in the enclave-private *stash*). Every access — read or
//! write, hit or miss — reads one full root-to-leaf path, reassigns the
//! target block to a fresh random leaf, and writes the same path back. The
//! observable access pattern is therefore a sequence of uniformly random
//! paths, independent of the logical addresses accessed.
//!
//! Per-access cost is `Z·(log N + 1)` bucket transfers — the
//! polylogarithmic cost the paper contrasts with the PIR mode's linear
//! scan in §2.2.

use crate::enclave::UntrustedStorage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Blocks per bucket (Z). Z = 4 is the standard choice for which Path
/// ORAM's stash bound is proven to hold with negligible overflow.
pub const BUCKET_SIZE: usize = 4;

/// Stash capacity before we declare overflow. Path ORAM's stash is
/// O(log N)·ω(1) w.h.p.; 256 is far beyond any realistic excursion and
/// exists so a logic bug fails loudly instead of consuming memory.
const STASH_LIMIT: usize = 256;

/// Errors from the ORAM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OramError {
    /// Address is outside the ORAM's capacity.
    AddrOutOfRange {
        /// The offending address.
        addr: u64,
        /// The ORAM's declared capacity.
        capacity: u64,
    },
    /// Block data had the wrong length.
    BlockLen {
        /// The ORAM's fixed block length.
        expected: usize,
        /// The offending data length.
        got: usize,
    },
    /// The stash exceeded its bound — indicates a broken eviction.
    StashOverflow {
        /// Stash occupancy at overflow.
        size: usize,
    },
    /// Capacity would be exceeded (KV store: too many distinct keys).
    CapacityExceeded {
        /// The declared capacity.
        capacity: u64,
    },
    /// Invalid construction parameters.
    BadParams(&'static str),
}

impl std::fmt::Display for OramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OramError::AddrOutOfRange { addr, capacity } => {
                write!(f, "address {addr} outside capacity {capacity}")
            }
            OramError::BlockLen { expected, got } => {
                write!(f, "block length {got} != {expected}")
            }
            OramError::StashOverflow { size } => write!(f, "stash overflow at {size} blocks"),
            OramError::CapacityExceeded { capacity } => {
                write!(f, "ORAM capacity {capacity} exceeded")
            }
            OramError::BadParams(m) => write!(f, "bad ORAM parameters: {m}"),
        }
    }
}

impl std::error::Error for OramError {}

/// A data block with its logical address and currently assigned leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct Block {
    addr: u64,
    leaf: u64,
    data: Vec<u8>,
}

/// One tree bucket: up to [`BUCKET_SIZE`] blocks.
pub(crate) type Bucket = Vec<Block>;

/// The Path ORAM controller. Tree buckets live in [`UntrustedStorage`];
/// the position map and stash are enclave-private.
pub struct PathOram {
    capacity: u64,
    block_len: usize,
    /// Tree height: leaves are at depth `height`, `2^height` of them.
    height: u32,
    storage: UntrustedStorage<Bucket>,
    /// addr -> assigned leaf. Enclave-private.
    position: HashMap<u64, u64>,
    /// Overflow blocks awaiting eviction. Enclave-private.
    stash: Vec<Block>,
    rng: StdRng,
    max_stash_seen: usize,
    accesses: u64,
}

impl PathOram {
    /// Create an ORAM holding up to `capacity` blocks of `block_len` bytes,
    /// seeded from the OS RNG.
    pub fn new(capacity: u64, block_len: usize) -> Result<Self, OramError> {
        let mut seed = [0u8; 32];
        lightweb_crypto::fill_random(&mut seed);
        Self::with_seed(capacity, block_len, seed)
    }

    /// Deterministic construction for tests and audits.
    pub fn with_seed(capacity: u64, block_len: usize, seed: [u8; 32]) -> Result<Self, OramError> {
        if capacity == 0 || capacity > 1 << 32 {
            return Err(OramError::BadParams("capacity must be in 1..=2^32"));
        }
        if block_len == 0 {
            return Err(OramError::BadParams("block_len must be positive"));
        }
        // Enough leaves that each block can get its own: 2^height >= capacity.
        let height = 64 - (capacity.max(2) - 1).leading_zeros();
        let num_buckets = 1u64 << (height + 1); // heap-indexed from 1
        Ok(Self {
            capacity,
            block_len,
            height,
            storage: UntrustedStorage::new(num_buckets as usize, Bucket::new()),
            position: HashMap::new(),
            stash: Vec::new(),
            rng: StdRng::from_seed(seed),
            max_stash_seen: 0,
            accesses: 0,
        })
    }

    /// Tree height (leaves at depth `height`).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> u64 {
        1 << self.height
    }

    /// Declared capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Block size in bytes.
    pub fn block_len(&self) -> usize {
        self.block_len
    }

    /// Largest stash occupancy observed so far (a health metric; Path ORAM
    /// theory says this stays O(log N)).
    pub fn max_stash_seen(&self) -> usize {
        self.max_stash_seen
    }

    /// Total accesses performed.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Bytes of untrusted memory if every bucket were full (the quantity a
    /// server must provision).
    pub fn untrusted_bytes(&self) -> usize {
        self.storage.len() * BUCKET_SIZE * (self.block_len + 16)
    }

    /// Approximate enclave-private bytes (position map + stash).
    pub fn private_bytes(&self) -> usize {
        self.position.len() * 16 + self.stash.len() * (self.block_len + 16)
    }

    /// Enclave-private bytes excluding the internal position map. Used by
    /// [`crate::recursive::RecursivePathOram`], whose real position map
    /// lives in the map ORAM (this instance's internal copy only exists
    /// because `access_with_position` keeps it coherent for eviction; a
    /// from-scratch implementation would drop it).
    pub fn private_bytes_stash_only(&self) -> usize {
        self.stash.len() * (self.block_len + 16)
    }

    /// Mutable handle to the untrusted storage (trace control, in-crate).
    pub(crate) fn storage_mut(&mut self) -> &mut UntrustedStorage<Bucket> {
        &mut self.storage
    }

    /// Begin recording the untrusted-memory access trace.
    pub fn enable_trace(&mut self) {
        self.storage.enable_trace();
    }

    /// Stop recording and return the trace, if tracing was on.
    pub fn take_trace(&mut self) -> Option<Vec<crate::enclave::TraceEvent>> {
        self.storage.take_trace()
    }

    /// Record a logical-operation boundary in the trace.
    pub fn mark_op_start(&mut self) {
        self.storage.mark_op_start();
    }

    /// Heap index of the bucket at `level` on the path to `leaf`.
    #[inline]
    fn path_bucket(&self, leaf: u64, level: u32) -> u64 {
        (leaf + self.num_leaves()) >> (self.height - level)
    }

    /// Read a block. Returns `None` if the address has never been written.
    /// Misses still perform a full (dummy) path access.
    pub fn read(&mut self, addr: u64) -> Result<Option<Vec<u8>>, OramError> {
        self.access(addr, None)
    }

    /// Write a block (insert or overwrite).
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), OramError> {
        if data.len() != self.block_len {
            return Err(OramError::BlockLen {
                expected: self.block_len,
                got: data.len(),
            });
        }
        self.access(addr, Some(data)).map(|_| ())
    }

    /// Perform a dummy access (uniform path read + write-back) that changes
    /// nothing. Used to pad fixed per-request access counts.
    pub fn dummy_access(&mut self) -> Result<(), OramError> {
        let leaf = self.rng.gen_range(0..self.num_leaves());
        self.read_path_to_stash(leaf);
        self.evict_along_path(leaf)?;
        self.accesses += 1;
        Ok(())
    }

    /// The core access: one path read, optional block update, one path
    /// write-back. Identical untrusted-memory footprint for reads, writes,
    /// hits, and misses.
    fn access(
        &mut self,
        addr: u64,
        write_data: Option<&[u8]>,
    ) -> Result<Option<Vec<u8>>, OramError> {
        if addr >= self.capacity {
            return Err(OramError::AddrOutOfRange {
                addr,
                capacity: self.capacity,
            });
        }
        // Leaf to read: the block's current assignment, or a uniform dummy
        // for never-written addresses.
        let read_leaf = match self.position.get(&addr) {
            Some(&l) => l,
            None => self.rng.gen_range(0..self.num_leaves()),
        };
        let new_leaf = self.rng.gen_range(0..self.num_leaves());
        self.access_with_position(addr, read_leaf, new_leaf, write_data)
    }

    /// The position-map-externalized access used by
    /// [`crate::recursive::RecursivePathOram`]: the caller supplies the
    /// leaf to read and the fresh leaf to assign, and is responsible for
    /// recording `new_leaf` wherever its position map lives. The internal
    /// map is still updated (it remains authoritative for eviction), but
    /// an external caller may keep its own copy in another ORAM.
    pub fn access_with_position(
        &mut self,
        addr: u64,
        read_leaf: u64,
        new_leaf: u64,
        write_data: Option<&[u8]>,
    ) -> Result<Option<Vec<u8>>, OramError> {
        if addr >= self.capacity {
            return Err(OramError::AddrOutOfRange {
                addr,
                capacity: self.capacity,
            });
        }
        if read_leaf >= self.num_leaves() || new_leaf >= self.num_leaves() {
            return Err(OramError::BadParams("leaf outside the tree"));
        }
        if let Some(data) = write_data {
            if data.len() != self.block_len {
                return Err(OramError::BlockLen {
                    expected: self.block_len,
                    got: data.len(),
                });
            }
        }

        self.read_path_to_stash(read_leaf);

        // Find (or create) the target block in the stash and reassign it to
        // the fresh leaf.
        let mut result = None;
        let mut found = false;
        for block in &mut self.stash {
            if block.addr == addr {
                result = Some(block.data.clone());
                if let Some(data) = write_data {
                    block.data.clear();
                    block.data.extend_from_slice(data);
                }
                block.leaf = new_leaf;
                found = true;
                break;
            }
        }
        if found {
            self.position.insert(addr, new_leaf);
        } else if let Some(data) = write_data {
            self.stash.push(Block {
                addr,
                leaf: new_leaf,
                data: data.to_vec(),
            });
            self.position.insert(addr, new_leaf);
        }
        // A read miss leaves no trace in the position map — the dummy path
        // access already happened, so the miss is externally invisible.

        self.evict_along_path(read_leaf)?;
        self.accesses += 1;
        Ok(result)
    }

    /// Read every bucket on the path to `leaf` into the stash.
    fn read_path_to_stash(&mut self, leaf: u64) {
        let _read = lightweb_telemetry::span!("oram.path.read.ns");
        for level in 0..=self.height {
            let idx = self.path_bucket(leaf, level);
            let bucket = self.storage.read(idx);
            self.stash.extend(bucket);
        }
    }

    /// Greedy write-back: from leaf to root, move every stash block that is
    /// allowed to live in the bucket (its own path passes through it) back
    /// into the tree, up to Z per bucket.
    fn evict_along_path(&mut self, leaf: u64) -> Result<(), OramError> {
        let _write = lightweb_telemetry::span!("oram.path.write.ns");
        for level in (0..=self.height).rev() {
            let idx = self.path_bucket(leaf, level);
            let mut bucket = Bucket::new();
            let mut i = 0;
            while i < self.stash.len() && bucket.len() < BUCKET_SIZE {
                if self.path_bucket(self.stash[i].leaf, level) == idx {
                    bucket.push(self.stash.swap_remove(i));
                } else {
                    i += 1;
                }
            }
            self.storage.write(idx, bucket);
        }
        self.max_stash_seen = self.max_stash_seen.max(self.stash.len());
        // Gauge tracks the current occupancy; its max mirrors
        // `max_stash_seen` but aggregated across every ORAM instance in
        // the process.
        lightweb_telemetry::registry()
            .gauge("oram.stash.depth")
            .set(self.stash.len() as i64);
        if self.stash.len() > STASH_LIMIT {
            return Err(OramError::StashOverflow {
                size: self.stash.len(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrips() {
        let mut oram = PathOram::with_seed(16, 4, [1; 32]).unwrap();
        oram.write(3, &[1, 2, 3, 4]).unwrap();
        assert_eq!(oram.read(3).unwrap(), Some(vec![1, 2, 3, 4]));
    }

    #[test]
    fn unwritten_address_reads_none() {
        let mut oram = PathOram::with_seed(16, 4, [2; 32]).unwrap();
        assert_eq!(oram.read(5).unwrap(), None);
        // And stays none after other writes.
        oram.write(6, &[9; 4]).unwrap();
        assert_eq!(oram.read(5).unwrap(), None);
    }

    #[test]
    fn overwrite_replaces_value() {
        let mut oram = PathOram::with_seed(16, 4, [3; 32]).unwrap();
        oram.write(0, &[1; 4]).unwrap();
        oram.write(0, &[2; 4]).unwrap();
        assert_eq!(oram.read(0).unwrap(), Some(vec![2; 4]));
    }

    #[test]
    fn full_capacity_storm() {
        // Fill every address, then read everything back twice (the second
        // round exercises re-assigned leaves), interleaved with rewrites.
        let cap = 128u64;
        let mut oram = PathOram::with_seed(cap, 8, [4; 32]).unwrap();
        for a in 0..cap {
            oram.write(a, &[a as u8; 8]).unwrap();
        }
        for round in 0..2 {
            for a in 0..cap {
                assert_eq!(
                    oram.read(a).unwrap(),
                    Some(vec![a as u8; 8]),
                    "round {round} addr {a}"
                );
            }
        }
        for a in (0..cap).rev() {
            oram.write(a, &[(a as u8).wrapping_add(1); 8]).unwrap();
        }
        for a in 0..cap {
            assert_eq!(
                oram.read(a).unwrap(),
                Some(vec![(a as u8).wrapping_add(1); 8])
            );
        }
        assert!(
            oram.max_stash_seen() < 64,
            "stash grew to {}",
            oram.max_stash_seen()
        );
    }

    #[test]
    fn stash_stays_bounded_under_skewed_access() {
        // Hammering a single hot address must not grow the stash.
        let mut oram = PathOram::with_seed(256, 16, [5; 32]).unwrap();
        for a in 0..256u64 {
            oram.write(a, &[a as u8; 16]).unwrap();
        }
        for _ in 0..2000 {
            oram.read(42).unwrap();
        }
        assert!(
            oram.max_stash_seen() < 64,
            "stash grew to {}",
            oram.max_stash_seen()
        );
    }

    #[test]
    fn parameter_validation() {
        assert!(PathOram::new(0, 8).is_err());
        assert!(PathOram::new(8, 0).is_err());
        let mut oram = PathOram::with_seed(8, 4, [0; 32]).unwrap();
        assert!(matches!(
            oram.read(8),
            Err(OramError::AddrOutOfRange {
                addr: 8,
                capacity: 8
            })
        ));
        assert!(matches!(
            oram.write(0, &[0; 3]),
            Err(OramError::BlockLen {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn tree_geometry() {
        let oram = PathOram::with_seed(100, 4, [0; 32]).unwrap();
        // 2^height >= capacity
        assert!(oram.num_leaves() >= 100);
        assert_eq!(oram.num_leaves(), 128);
        assert_eq!(oram.height(), 7);
    }

    #[test]
    fn capacity_one_works() {
        let mut oram = PathOram::with_seed(1, 4, [0; 32]).unwrap();
        oram.write(0, &[7; 4]).unwrap();
        assert_eq!(oram.read(0).unwrap(), Some(vec![7; 4]));
    }

    #[test]
    fn dummy_access_changes_nothing() {
        let mut oram = PathOram::with_seed(32, 4, [6; 32]).unwrap();
        for a in 0..32u64 {
            oram.write(a, &[a as u8; 4]).unwrap();
        }
        for _ in 0..100 {
            oram.dummy_access().unwrap();
        }
        for a in 0..32u64 {
            assert_eq!(oram.read(a).unwrap(), Some(vec![a as u8; 4]));
        }
    }

    #[test]
    fn access_count_tracks_operations() {
        let mut oram = PathOram::with_seed(8, 4, [7; 32]).unwrap();
        oram.write(0, &[0; 4]).unwrap();
        oram.read(0).unwrap();
        oram.dummy_access().unwrap();
        assert_eq!(oram.access_count(), 3);
    }

    #[test]
    fn per_access_bucket_touches_are_polylog() {
        // The enclave-mode selling point: 2·(height+1) bucket transfers per
        // access, not a linear scan.
        let mut oram = PathOram::with_seed(1024, 8, [8; 32]).unwrap();
        oram.enable_trace();
        oram.write(17, &[1; 8]).unwrap();
        let trace = oram.take_trace().unwrap();
        let h = oram.height() as usize;
        assert_eq!(trace.len(), 2 * (h + 1));
    }
}
