#![warn(missing_docs)]

//! # lightweb-oram
//!
//! Oblivious RAM and a simulated hardware enclave — the substrate for
//! ZLTP's *enclave mode of operation* (paper §2.2).
//!
//! In that mode the client makes private key-value lookups by talking to a
//! server-side hardware enclave (e.g. Intel SGX). The enclave's own memory
//! is tiny, so the data lives in *untrusted* server memory — and the
//! enclave must access it through an oblivious-RAM protocol, otherwise the
//! operator learns which key-value pairs clients request simply by watching
//! memory traffic. The payoff the paper cites: communication and server
//! computation both polylogarithmic in the number of key-value pairs,
//! versus the linear scan of the PIR mode.
//!
//! This crate provides:
//!
//! * [`path_oram`] — a from-scratch Path ORAM (Stefanov et al.) with
//!   bucket size 4, an in-enclave position map (the "ORAM tailored to
//!   hardware enclaves" the paper references, à la ZeroTrace/Snoopy), and
//!   an explicit stash.
//! * [`enclave`] — a `SimulatedEnclave`: a software stand-in for SGX that
//!   partitions state into *private* (in-enclave) and *untrusted* memory
//!   and records every untrusted access in a trace. The trace is this
//!   reproduction's substitute for real enclave hardware: the
//!   security-relevant observable of an enclave is exactly its untrusted
//!   memory-access pattern, and here it is first-class and auditable.
//! * [`auditor`] — checks that recorded traces are *oblivious*: every
//!   logical operation touches one full root-to-leaf path, path leaves are
//!   uniform, and the trace shape is independent of the request sequence.
//! * [`kv`] — an oblivious key-value store over Path ORAM: the actual
//!   structure a ZLTP enclave-mode server runs, including dummy accesses
//!   for missing keys so existence is not leaked.

pub mod auditor;
pub mod enclave;
pub mod kv;
pub mod path_oram;
pub mod recursive;

pub use auditor::{audit_trace, AuditReport};
pub use enclave::{AccessKind, SimulatedEnclave, TraceEvent};
pub use kv::ObliviousKvStore;
pub use path_oram::{OramError, PathOram};
pub use recursive::RecursivePathOram;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Path ORAM behaves exactly like a plain map under any sequence of
        /// reads and writes (linearizability against a model).
        #[test]
        fn oram_matches_hashmap_model(
            ops in prop::collection::vec((0u64..32, 0u8..=255, any::<bool>()), 1..200),
        ) {
            let mut oram = PathOram::new(32, 8).unwrap();
            let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
            for (addr, val, is_write) in ops {
                if is_write {
                    let data = vec![val; 8];
                    oram.write(addr, &data).unwrap();
                    model.insert(addr, data);
                } else {
                    let got = oram.read(addr).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&addr));
                }
            }
        }

        /// The KV store matches a model map, including absent keys.
        #[test]
        fn kv_store_matches_model(
            ops in prop::collection::vec((0u8..16, 0u8..=255, any::<bool>()), 1..120),
        ) {
            let mut store = ObliviousKvStore::new(64, 16).unwrap();
            let mut model: HashMap<String, Vec<u8>> = HashMap::new();
            for (k, val, is_write) in ops {
                let key = format!("key-{k}");
                if is_write {
                    let data = vec![val; 16];
                    store.put(key.as_bytes(), &data).unwrap();
                    model.insert(key, data);
                } else {
                    let got = store.get(key.as_bytes()).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(&key));
                }
            }
        }
    }
}
