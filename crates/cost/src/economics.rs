//! User-facing economics (paper §4 and §5.2's comparisons).
//!
//! Three headline numbers from the paper are reproduced here:
//!
//! * the **$15/month** per-user estimate ("comparable to the cost of a
//!   Netflix membership") for 50 pages/day × 5 GETs/page at ~$0.002 per
//!   4 KiB private-GET on the 360M-page C4 universe;
//! * the **Google Fi comparison**: at $10/GiB, loading the 22.4 MiB New
//!   York Times homepage costs $0.218 — the paper's willingness-to-pay
//!   anchor — while 4 KiB over Fi costs $0.000038, making ZLTP "roughly
//!   two orders of magnitude more expensive" per byte;
//! * the resulting **ZLTP/Fi cost ratio** for a 4 KiB value.

/// Google Fi's metered data price the paper cites: $10/GiB.
pub const FI_DOLLARS_PER_GIB: f64 = 10.0;

/// The NYT homepage weight the paper cites, in MiB.
pub const NYT_HOMEPAGE_MIB: f64 = 22.4;

/// Inputs for the monthly per-user cost estimate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct UserCostInputs {
    /// Page views per day (paper: 50).
    pub pages_per_day: f64,
    /// Data GETs per page view (paper: 5).
    pub gets_per_page: f64,
    /// System-wide dollars per private-GET (paper: ~$0.002).
    pub dollars_per_get: f64,
}

impl UserCostInputs {
    /// The paper's §4 operating point.
    pub fn paper() -> Self {
        Self {
            pages_per_day: 50.0,
            gets_per_page: 5.0,
            dollars_per_get: 0.002,
        }
    }
}

/// Monthly (30-day) per-user cost in dollars.
pub fn monthly_user_cost(inputs: &UserCostInputs) -> f64 {
    inputs.pages_per_day * 30.0 * inputs.gets_per_page * inputs.dollars_per_get
}

/// What `bytes` of transfer cost over Google Fi.
pub fn google_fi_cost(bytes: f64) -> f64 {
    bytes / (1024.0 * 1024.0 * 1024.0) * FI_DOLLARS_PER_GIB
}

/// The ZLTP-vs-metered-data cost ratio for one `value_bytes` fetch at
/// `dollars_per_get`.
pub fn zltp_overhead_factor(value_bytes: f64, dollars_per_get: f64) -> f64 {
    dollars_per_get / google_fi_cost(value_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_cost_is_about_fifteen_dollars() {
        // §4: "roughly $15 (comparable to the cost of a Netflix membership)"
        let cost = monthly_user_cost(&UserCostInputs::paper());
        assert!((cost - 15.0).abs() < 0.01, "${cost}");
    }

    #[test]
    fn nyt_homepage_over_fi_costs_21_8_cents() {
        // §5.2: "the cost to load the 22.4 MiB New York Times homepage is
        // $0.218".
        let cost = google_fi_cost(NYT_HOMEPAGE_MIB * 1024.0 * 1024.0);
        assert!((cost - 0.218).abs() < 0.002, "${cost}");
    }

    #[test]
    fn four_kib_over_fi_costs_38_microdollars() {
        // §5.2: "loading 4 KiB ... costs ... $0.000038 with Google Fi".
        let cost = google_fi_cost(4096.0);
        assert!((cost - 0.000038).abs() < 0.000002, "${cost}");
    }

    #[test]
    fn zltp_is_about_two_orders_of_magnitude_dearer() {
        // §5.2: "roughly two orders of magnitude more expensive".
        let factor = zltp_overhead_factor(4096.0, 0.002);
        assert!((30.0..300.0).contains(&factor), "factor {factor}");
        // And close to the paper's implied 0.002/0.000038 ≈ 52×.
        assert!((factor - 52.4).abs() < 2.0, "factor {factor}");
    }

    #[test]
    fn cost_scales_with_usage() {
        let mut heavy = UserCostInputs::paper();
        heavy.pages_per_day = 100.0;
        assert!((monthly_user_cost(&heavy) - 30.0).abs() < 0.01);
    }
}
