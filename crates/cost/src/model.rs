//! The §5.2 scale-up estimator: shard microbenchmark → deployment costs.
//!
//! Inputs: one shard's measured per-request compute time, the shard size,
//! the instance pricing, and the dataset to serve. Output: the Table 2
//! row — vCPU-seconds, dollars, and communication per request.
//!
//! Worked example with the paper's numbers (which
//! [`paper_measurements`] encodes): a c5.large (2 vCPU, $0.085/h) serves a
//! 1 GiB shard at 167 ms/request. C4 is 305 GiB → 305 shards; each request
//! touches every shard for 167 ms, so one *server side* costs
//! 305 × 0.167 s × 2 vCPU ≈ 102 vCPU-s ≈ 1.7 vCPU-min, and two-server PIR
//! doubles it to ≈ 204 vCPU-s and ≈ $0.002 — the numbers printed in
//! Table 2.

/// An instance type with its pricing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InstanceType {
    /// Name for reports.
    pub name: &'static str,
    /// vCPUs per instance.
    pub vcpus: u32,
    /// Dollars per instance-hour.
    pub dollars_per_hour: f64,
    /// Memory per instance in GiB (shard size ceiling).
    pub memory_gib: f64,
}

impl InstanceType {
    /// The paper's c5.large: 2 vCPU, 4 GiB, $0.085/h.
    pub fn c5_large() -> Self {
        Self {
            name: "c5.large",
            vcpus: 2,
            dollars_per_hour: 0.085,
            memory_gib: 4.0,
        }
    }
}

/// One shard's measured per-request costs (the §5.1 microbenchmark).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ShardMeasurement {
    /// Shard size in GiB.
    pub shard_gib: f64,
    /// Wall-clock seconds of per-request compute on the shard's instance
    /// (amortized, i.e. with batching if enabled).
    pub seconds_per_request: f64,
    /// Of which: DPF evaluation.
    pub dpf_seconds: f64,
    /// Of which: data scan.
    pub scan_seconds: f64,
    /// DPF slot-domain bits at this shard size.
    pub domain_bits: u32,
    /// Response bucket size in bytes.
    pub bucket_bytes: usize,
}

/// The paper's §5.1 measurements: 167 ms/request on a 1 GiB shard
/// (64 ms DPF + 103 ms scan), domain 2^22, 4 KiB buckets.
pub fn paper_measurements() -> ShardMeasurement {
    ShardMeasurement {
        shard_gib: 1.0,
        seconds_per_request: 0.167,
        dpf_seconds: 0.064,
        scan_seconds: 0.103,
        domain_bits: 22,
        bucket_bytes: 4096,
    }
}

/// A dataset to serve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetSpec {
    /// Name for reports.
    pub name: &'static str,
    /// Total compressed size in GiB.
    pub total_gib: f64,
    /// Number of pages.
    pub pages: u64,
    /// Average compressed page size in KiB.
    pub avg_page_kib: f64,
}

impl DatasetSpec {
    /// Table 2's C4 row inputs.
    pub fn c4() -> Self {
        Self {
            name: "C4",
            total_gib: 305.0,
            pages: 360_000_000,
            avg_page_kib: 0.9,
        }
    }

    /// Table 2's Wikipedia row inputs.
    pub fn wikipedia() -> Self {
        Self {
            name: "Wikipedia",
            total_gib: 21.0,
            pages: 60_000_000,
            avg_page_kib: 0.4,
        }
    }
}

/// A complete per-request deployment estimate — one Table 2 row.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeploymentEstimate {
    /// Data-server shards per logical server.
    pub shards: u32,
    /// vCPU-seconds per request, system-wide (×2 for two-server).
    pub vcpu_seconds: f64,
    /// Dollars per request, system-wide.
    pub dollars_per_request: f64,
    /// Client↔server communication per request in KiB (both directions,
    /// both servers).
    pub communication_kib: f64,
    /// Lower bound on request latency (one shard's batched latency).
    pub latency_floor_s: f64,
}

/// Estimate a two-server deployment for `dataset`, scaling the shard
/// measurement across `instance`s exactly as §5.2 does.
///
/// `batched_latency_s` is the per-shard end-to-end latency (2.6 s in the
/// paper with batch size 16).
pub fn estimate_deployment(
    dataset: &DatasetSpec,
    shard: &ShardMeasurement,
    instance: &InstanceType,
    batched_latency_s: f64,
) -> DeploymentEstimate {
    let shards = (dataset.total_gib / shard.shard_gib).ceil() as u32;
    // One server side: every shard computes for seconds_per_request.
    let one_side_vcpu_seconds = shards as f64 * shard.seconds_per_request * instance.vcpus as f64;
    let one_side_dollars =
        shards as f64 * shard.seconds_per_request / 3600.0 * instance.dollars_per_hour;

    DeploymentEstimate {
        shards,
        vcpu_seconds: 2.0 * one_side_vcpu_seconds,
        dollars_per_request: 2.0 * one_side_dollars,
        communication_kib: communication_kib(dataset, shard),
        latency_floor_s: batched_latency_s,
    }
}

/// The paper's communication accounting for the sharded deployment: each
/// shard owns its own `2^domain_bits` output domain, so the effective key
/// domain is `shards × 2^domain_bits`, priced at the §5.1 key-size formula
/// of (λ+2)·d per level with λ = 128 **bytes** (the paper's arithmetic:
/// 13.6 KiB at d = 22 with a 4 KiB bucket only works out at 130 bytes per
/// level; see EXPERIMENTS.md).
fn communication_kib(dataset: &DatasetSpec, shard: &ShardMeasurement) -> f64 {
    let shards = (dataset.total_gib / shard.shard_gib).ceil();
    let effective_domain_bits = shard.domain_bits as f64 + shards.log2();
    let upload_per_server_bytes = 130.0 * effective_domain_bits;
    let download_per_server_bytes = shard.bucket_bytes as f64;
    2.0 * (upload_per_server_bytes + download_per_server_bytes) / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c4_row_matches_table_2() {
        let est = estimate_deployment(
            &DatasetSpec::c4(),
            &paper_measurements(),
            &InstanceType::c5_large(),
            2.6,
        );
        assert_eq!(est.shards, 305);
        // Table 2: 204 vCPU-sec.
        assert!(
            (est.vcpu_seconds - 204.0).abs() < 4.0,
            "vCPU-s {}",
            est.vcpu_seconds
        );
        // Table 2: $0.002.
        assert!(
            (est.dollars_per_request - 0.002).abs() < 0.0005,
            "$ {}",
            est.dollars_per_request
        );
        // Table 2: 15.9 KiB.
        assert!(
            (est.communication_kib - 15.9).abs() < 0.5,
            "comm {} KiB",
            est.communication_kib
        );
        assert_eq!(est.latency_floor_s, 2.6);
    }

    #[test]
    fn wikipedia_row_matches_table_2() {
        let est = estimate_deployment(
            &DatasetSpec::wikipedia(),
            &paper_measurements(),
            &InstanceType::c5_large(),
            2.6,
        );
        assert_eq!(est.shards, 21);
        // Table 2 prints 10 vCPU-sec and $0.0001; a strict application of
        // the paper's own §5.2 method (21 shards × 167 ms × 2 vCPU × 2
        // servers) gives 14 vCPU-sec and $0.00017. We reproduce the method
        // and record the table's rounding gap in EXPERIMENTS.md.
        assert!(
            (10.0..=15.0).contains(&est.vcpu_seconds),
            "vCPU-s {}",
            est.vcpu_seconds
        );
        assert!(
            (0.0001..=0.0002).contains(&est.dollars_per_request),
            "$ {}",
            est.dollars_per_request
        );
        // Table 2: 14.9 KiB.
        assert!(
            (est.communication_kib - 14.9).abs() < 0.5,
            "comm {} KiB",
            est.communication_kib
        );
    }

    #[test]
    fn costs_scale_linearly_with_dataset_size() {
        let shard = paper_measurements();
        let inst = InstanceType::c5_large();
        let small = DatasetSpec {
            name: "x",
            total_gib: 10.0,
            pages: 1,
            avg_page_kib: 1.0,
        };
        let large = DatasetSpec {
            name: "y",
            total_gib: 100.0,
            pages: 1,
            avg_page_kib: 1.0,
        };
        let a = estimate_deployment(&small, &shard, &inst, 2.6);
        let b = estimate_deployment(&large, &shard, &inst, 2.6);
        let ratio = b.vcpu_seconds / a.vcpu_seconds;
        assert!((ratio - 10.0).abs() < 0.01, "ratio {ratio}");
        // Communication grows only logarithmically.
        assert!(b.communication_kib < a.communication_kib * 1.2);
    }

    #[test]
    fn faster_shards_cut_cost_proportionally() {
        let inst = InstanceType::c5_large();
        let base = paper_measurements();
        let mut fast = base;
        fast.seconds_per_request = base.seconds_per_request / 2.0;
        let a = estimate_deployment(&DatasetSpec::c4(), &base, &inst, 2.6);
        let b = estimate_deployment(&DatasetSpec::c4(), &fast, &inst, 2.6);
        assert!((a.dollars_per_request / b.dollars_per_request - 2.0).abs() < 0.01);
    }

    #[test]
    fn paper_measurement_split_adds_up() {
        let m = paper_measurements();
        assert!((m.dpf_seconds + m.scan_seconds - m.seconds_per_request).abs() < 1e-9);
        assert!(
            m.scan_seconds > m.dpf_seconds,
            "scan dominates in the paper"
        );
    }
}
