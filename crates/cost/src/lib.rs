#![warn(missing_docs)]

//! # lightweb-cost
//!
//! Deployment cost modelling: the machinery behind the paper's §4
//! economics and §5.2 scale-up estimates, culminating in Table 2.
//!
//! The paper's method is: measure one small shard (§5.1), then *estimate*
//! a full C4-scale deployment by linear extrapolation over shards, priced
//! at AWS c5.large rates. This crate implements exactly that estimation
//! pipeline so it can be fed either the paper's published measurements
//! (reproducing Table 2's numbers to the cent) or this repository's own
//! measured microbenchmarks (producing *our* Table 2, compared in
//! EXPERIMENTS.md).

pub mod economics;
pub mod model;
pub mod trend;

pub use economics::{google_fi_cost, monthly_user_cost, UserCostInputs, FI_DOLLARS_PER_GIB};
pub use model::{
    paper_measurements, DatasetSpec, DeploymentEstimate, InstanceType, ShardMeasurement,
};
pub use trend::{cost_after_years, years_to_factor};
