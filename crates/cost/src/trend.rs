//! The "looking forward" compute-cost trend (paper §5.2).
//!
//! "In 2003, $1 bought 8 CPU hours, and in 2008, $1 bought 128 CPU hours
//! (adjusted for inflation), a 16× increase. This change suggests that in
//! 5 years, we could potentially see the dollar cost of a ZLTP request
//! drop by an order of magnitude."

/// The historical improvement factor per period the paper cites.
pub const FACTOR_PER_PERIOD: f64 = 16.0;

/// The period length in years.
pub const PERIOD_YEARS: f64 = 5.0;

/// Projected cost after `years`, starting from `cost_now`.
pub fn cost_after_years(cost_now: f64, years: f64) -> f64 {
    cost_now / FACTOR_PER_PERIOD.powf(years / PERIOD_YEARS)
}

/// Years until cost falls by `factor` under the trend.
pub fn years_to_factor(factor: f64) -> f64 {
    assert!(factor >= 1.0, "factor must be >= 1");
    PERIOD_YEARS * factor.ln() / FACTOR_PER_PERIOD.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_years_beats_an_order_of_magnitude() {
        // The paper's claim: 5 years → ≥10× cheaper (16× under the trend).
        let now = 0.002;
        let later = cost_after_years(now, 5.0);
        assert!(now / later >= 10.0, "only {}x", now / later);
        assert!((now / later - 16.0).abs() < 1e-9);
    }

    #[test]
    fn order_of_magnitude_takes_about_four_years() {
        let y = years_to_factor(10.0);
        assert!((4.0..4.5).contains(&y), "{y}");
    }

    #[test]
    fn trend_composes() {
        let a = cost_after_years(1.0, 5.0);
        let b = cost_after_years(a, 5.0);
        assert!((b - cost_after_years(1.0, 10.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_years_is_identity() {
        assert_eq!(cost_after_years(0.5, 0.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "factor must be")]
    fn sub_unity_factor_rejected() {
        years_to_factor(0.5);
    }
}
