#![warn(missing_docs)]

//! # lightweb-reactor — event-driven ZLTP serving
//!
//! The core server's historical TCP front-end spawns one blocking OS
//! thread per connection. That is simple and fine for hundreds of active
//! sessions, but Lightweb's target — millions of users — means each
//! server process holds *tens of thousands of mostly-idle* ZLTP sessions,
//! and ten thousand stacks plus ten thousand scheduler entries is exactly
//! the baggage this system exists to shed.
//!
//! This crate adds the second io model: a std-only nonblocking **reactor**.
//! One thread owns every accepted socket through an epoll instance
//! (reached via a thin syscall shim, [`sys`] — the same pattern as the
//! telemetry crate's `clock_gettime` shim; no `libc` dependency), runs a
//! per-connection state machine over the incremental frame decoder
//! (partial frames, trace-context frame extensions, write backpressure
//! via `EPOLLOUT` re-arming), and hands complete requests to the existing
//! §5.1 batcher and `QueryEngine` pool via
//! [`ZltpServer::submit_get`](lightweb_core::ZltpServer::submit_get).
//! Finished answers return on a completion channel paired with a wakeup
//! pipe that pulls the reactor out of `epoll_wait`.
//!
//! [`serve`] is the front door: it dispatches on
//! [`ServerConfig::io_model`](lightweb_core::ServerConfig) (env
//! `LIGHTWEB_IO_MODEL`), so the blocking path and the in-memory transport
//! keep working untouched and tests run against both models.
//!
//! ## Telemetry
//!
//! The reactor exports through the existing scrape endpoint:
//! `reactor.epoll.wait.ns` / `reactor.dispatch.ns` histograms (and a
//! `reactor.dispatch` profile scope), a `reactor.ready.batch` histogram
//! (events per wakeup — the multiplexing factor), gauges
//! `reactor.sessions.open` / `reactor.sessions.idle`, and counters for
//! accepts, reaps, and backpressure engagements. Transport byte/frame
//! counters use the same names as `FramedConn`, so `/metrics` aggregates
//! identically across io models.
//!
//! ## Idle reaping
//!
//! Sessions with no in-flight work and no wire activity for
//! [`ReactorConfig::idle_timeout`] are reaped (counted in
//! `reactor.sessions.reaped`) — the defense against slow-loris peers and
//! abandoned connections that a thread-per-connection server pays a
//! whole parked thread to tolerate.

use lightweb_core::config::IoModel;
use lightweb_core::ZltpServer;
use std::net::TcpListener;
use std::time::Duration;

#[cfg(target_os = "linux")]
pub mod sys;

#[cfg(target_os = "linux")]
mod reactor;

/// Tuning for the event loop. [`ReactorConfig::from_env`] is what
/// [`serve`] uses.
#[derive(Clone, Copy, Debug)]
pub struct ReactorConfig {
    /// Reap sessions with no in-flight work and no wire activity for
    /// this long. Env: `LIGHTWEB_REACTOR_IDLE_TIMEOUT_MS`.
    pub idle_timeout: Duration,
    /// A session quiet for this long counts in `reactor.sessions.idle`
    /// (shorter than `idle_timeout`: "idle" is a state, "reaped" is a
    /// consequence).
    pub idle_mark: Duration,
    /// How often the reaping sweep runs (and the upper bound on how
    /// stale the idle gauge can be).
    pub sweep_interval: Duration,
    /// Per-connection write-queue cap in bytes; beyond it the reactor
    /// stops reading from the peer until the queue drains.
    pub max_write_queue: usize,
    /// Worker threads answering unbatched engine work. 0 runs such work
    /// inline on the reactor thread (tests only). Env:
    /// `LIGHTWEB_REACTOR_WORKERS`.
    pub workers: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            idle_timeout: Duration::from_secs(60),
            idle_mark: Duration::from_secs(1),
            sweep_interval: Duration::from_secs(1),
            max_write_queue: 1 << 20,
            workers: 2,
        }
    }
}

impl ReactorConfig {
    /// Defaults with `LIGHTWEB_REACTOR_IDLE_TIMEOUT_MS` and
    /// `LIGHTWEB_REACTOR_WORKERS` applied. The sweep interval follows
    /// the idle timeout (a quarter of it, clamped to 10 ms..=1 s) so
    /// short timeouts — e.g. in the churn experiment — are enforced
    /// promptly.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(ms) = env_u64("LIGHTWEB_REACTOR_IDLE_TIMEOUT_MS") {
            cfg.idle_timeout = Duration::from_millis(ms.max(1));
        }
        if let Some(w) = env_u64("LIGHTWEB_REACTOR_WORKERS") {
            cfg.workers = w as usize;
        }
        cfg.sweep_interval =
            (cfg.idle_timeout / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        cfg.idle_mark = cfg
            .idle_mark
            .min(cfg.idle_timeout / 2)
            .max(Duration::from_millis(1));
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Serve TCP connections for `server` until it shuts down, using the io
/// model its config selects: `Threads` delegates to the blocking
/// [`ZltpServer::serve_tcp`]; `Reactor` runs the epoll event loop.
/// Returns the accept/event thread's handle.
///
/// On non-Linux targets the reactor is unavailable; the threads path is
/// used instead and the substitution is counted
/// (`reactor.fallback.threads`) so a deployment can't silently believe
/// it is event-driven.
pub fn serve(
    server: &ZltpServer,
    listener: TcpListener,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    serve_with(server, listener, ReactorConfig::from_env())
}

/// [`serve`] with explicit reactor tuning (ignored under `Threads`).
pub fn serve_with(
    server: &ZltpServer,
    listener: TcpListener,
    cfg: ReactorConfig,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    match server.config().io_model {
        IoModel::Threads => server.serve_tcp(listener),
        IoModel::Reactor => {
            #[cfg(target_os = "linux")]
            {
                reactor::spawn(server.clone(), listener, cfg)
            }
            #[cfg(not(target_os = "linux"))]
            {
                let _ = cfg;
                lightweb_telemetry::counter!("reactor.fallback.threads").inc();
                server.serve_tcp(listener)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_from_env_clamps_sweep_to_idle_timeout() {
        let cfg = ReactorConfig::default();
        assert!(cfg.sweep_interval <= cfg.idle_timeout);
        assert!(cfg.idle_mark <= cfg.idle_timeout);
        assert!(cfg.workers > 0);
    }
}
