//! Thin syscall shim for epoll and the wakeup pipe.
//!
//! Same pattern as the `clock_gettime` shim in `lightweb-telemetry`'s
//! profile module: the workspace builds fully offline with no `libc`
//! crate, so the handful of syscalls the reactor needs are declared
//! directly against the C library and wrapped in minimal safe types.
//! Everything here is Linux-only; the crate root falls back to the
//! thread-per-connection path on other targets.

use std::io;

/// Readable (or a peer hang-up is pending on some kernels).
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;
const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it
/// (12 bytes); elsewhere the natural C layout applies — mirroring what
/// libc does.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Ready/interest bit set (`EPOLL*`).
    pub events: u32,
    /// Caller-chosen cookie; the reactor stores the connection token.
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    fn close(fd: i32) -> i32;
}

/// An epoll instance. Closed on drop.
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// `epoll_create1(EPOLL_CLOEXEC)`.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: no pointers involved; a plain fd-returning syscall.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: i32, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; DEL ignores the event pointer.
        let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Start watching `fd` with `interest`, delivering `token` on
    /// readiness.
    pub fn add(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest set for an already-watched `fd`.
    pub fn modify(&self, fd: i32, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Stop watching `fd`.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait up to `timeout_ms` for readiness; fills `events` from the
    /// front and returns how many are valid. A signal interruption
    /// surfaces as `Ok(0)` — the caller's loop re-enters anyway.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: the kernel writes at most `events.len()` entries into
        // the buffer we hand it.
        let n = unsafe {
            epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: we own the fd.
        unsafe { close(self.fd) };
    }
}

/// A nonblocking self-pipe: completion threads write a byte to pull the
/// reactor out of `epoll_wait`; the reactor drains it and polls its
/// completion channel. Both ends closed on drop.
pub struct WakePipe {
    rfd: i32,
    wfd: i32,
}

// The fds are plain integers used through thread-safe syscalls.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

impl WakePipe {
    /// `pipe2(O_NONBLOCK | O_CLOEXEC)`.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a valid 2-element buffer.
        let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakePipe {
            rfd: fds[0],
            wfd: fds[1],
        })
    }

    /// The read end, for epoll registration.
    pub fn read_fd(&self) -> i32 {
        self.rfd
    }

    /// Nudge the reactor. A full pipe means a wakeup is already pending,
    /// so every failure mode is ignorable.
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one-byte write from a live stack buffer.
        unsafe { write(self.wfd, &byte, 1) };
    }

    /// Swallow all pending wakeup bytes.
    pub fn drain(&self) {
        let mut buf = [0u8; 256];
        loop {
            // SAFETY: reads into a live stack buffer of the stated size.
            let n = unsafe { read(self.rfd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: we own both fds.
        unsafe {
            close(self.rfd);
            close(self.wfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_roundtrip() {
        let pipe = WakePipe::new().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(pipe.read_fd(), 7, EPOLLIN).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        // Nothing pending: times out empty.
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        pipe.wake();
        pipe.wake();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);
        pipe.drain();
        // Drained: empty again (level-triggered would refire otherwise).
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_watches_a_tcp_socket() {
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = std::net::TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let epoll = Epoll::new().unwrap();
        use std::os::unix::io::AsRawFd;
        epoll
            .add(server_side.as_raw_fd(), 42, EPOLLIN | EPOLLRDHUP)
            .unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
        client.write_all(b"x").unwrap();
        let n = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (ev, data) = (events[0].events, events[0].data);
        assert_eq!(data, 42);
        assert_ne!(ev & EPOLLIN, 0);
        epoll.delete(server_side.as_raw_fd()).unwrap();
    }
}
